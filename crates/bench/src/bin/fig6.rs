//! Regenerate Figure 6: Grid-in-a-Box Performance Comparison.

use ogsa_core::comparison::Stack;
use ogsa_core::grid::{self, GridConfig};
use ogsa_core::report;

fn main() {
    let rows = grid::run(GridConfig::default());
    println!(
        "{}",
        report::render_grid("Figure 6: Grid-in-a-Box Performance Comparison (ms)", &rows)
    );

    let wsrf_job = grid::cell(&rows, "Instantiate Job", Stack::Wsrf).unwrap();
    let wxf_job = grid::cell(&rows, "Instantiate Job", Stack::Transfer).unwrap();
    println!(
        "Instantiate Job: WSRF {:.0} ms vs WS-Transfer {:.0} ms ({:.2}x) — \"due to the design of its\n\
         services the WSRF implementation requires several more outcalls\"",
        wsrf_job,
        wxf_job,
        wsrf_job / wxf_job
    );
    println!(
        "Unreserve: WSRF {:.0} ms (automatic via ResourceLifetime), WS-Transfer {:.0} ms (manual Put)",
        grid::cell(&rows, "Unreserve Resource", Stack::Wsrf).unwrap(),
        grid::cell(&rows, "Unreserve Resource", Stack::Transfer).unwrap()
    );
}
