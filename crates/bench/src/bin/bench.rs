//! The telemetry bench: counter + Grid-in-a-Box on both stacks under full
//! causal tracing, written out as machine-readable artifacts:
//!
//! * `BENCH_counter.json` — the five counter operations, unsecured and
//!   X.509-signed, each decomposed into db / security / wire / soap self
//!   time plus wire-message counts, and the §3.1 demand-lifecycle message
//!   amplification.
//! * `BENCH_gridbox.json` — the six Grid-in-a-Box operations, decomposed
//!   the same way.
//! * `BENCH_trace.json` — a Chrome-trace (Perfetto / `chrome://tracing`)
//!   dump of the signed counter run's span forest.
//!
//! Exits nonzero if any of the paper's ordinal claims regressed, so CI can
//! gate on it. Pass an output directory as the first argument (default:
//! current directory).

use std::process::ExitCode;

use ogsa_core::ablation;
use ogsa_core::breakdown::{self, check_paper_invariants};
use ogsa_core::grid::GridConfig;
use ogsa_core::hello::HelloConfig;
use ogsa_core::report;
use ogsa_core::security::SecurityPolicy;
use ogsa_core::telemetry::export::{json_escape, spans_to_chrome_trace};

const COUNTER_ITERATIONS: usize = 8;
const GRID_ITERATIONS: usize = 3;
const LIFECYCLE_EVENTS: usize = 4;

fn main() -> ExitCode {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());

    let plain = breakdown::counter_breakdown(HelloConfig {
        policy: SecurityPolicy::None,
        iterations: COUNTER_ITERATIONS,
    });
    let signed = breakdown::counter_breakdown(HelloConfig {
        policy: SecurityPolicy::X509Sign,
        iterations: COUNTER_ITERATIONS,
    });
    let grid = breakdown::grid_breakdown(GridConfig {
        iterations: GRID_ITERATIONS,
        ..GridConfig::default()
    });
    let lifecycle = ablation::demand_lifecycle(LIFECYCLE_EVENTS);
    let violations = check_paper_invariants(&plain, &signed, &lifecycle);

    println!(
        "{}",
        report::render_breakdown("Counter, no security (distributed)", &plain.rows)
    );
    println!(
        "{}",
        report::render_breakdown("Counter, X.509 signing (distributed)", &signed.rows)
    );
    println!(
        "{}",
        report::render_breakdown("Grid-in-a-Box, X.509 signing", &grid.rows)
    );
    println!(
        "demand lifecycle: {} brokered vs {} direct messages over {} events ({:.1}x)\n",
        lifecycle.brokered_messages,
        lifecycle.direct_messages,
        lifecycle.events,
        lifecycle.factor()
    );

    let violations_json: Vec<String> = violations
        .iter()
        .map(|v| format!("\"{}\"", json_escape(v)))
        .collect();
    let counter_json = format!(
        "{{\"benchmark\":\"counter\",\"iterations\":{},\"sections\":{{\"none\":{},\"x509\":{}}},\"demand_lifecycle\":{},\"invariant_violations\":[{}]}}\n",
        COUNTER_ITERATIONS,
        report::breakdown_rows_json(&plain.rows),
        report::breakdown_rows_json(&signed.rows),
        report::demand_lifecycle_json(&lifecycle),
        violations_json.join(",")
    );
    let grid_json = format!(
        "{{\"benchmark\":\"gridbox\",\"policy\":\"x509\",\"iterations\":{},\"rows\":{}}}\n",
        GRID_ITERATIONS,
        report::breakdown_rows_json(&grid.rows)
    );

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("mkdir {out_dir}: {e}"));
    let write = |name: &str, contents: &str| {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    };
    write("BENCH_counter.json", &counter_json);
    write("BENCH_gridbox.json", &grid_json);
    write("BENCH_trace.json", &spans_to_chrome_trace(&signed.spans));

    if violations.is_empty() {
        println!("paper invariants: all hold");
        ExitCode::SUCCESS
    } else {
        eprintln!("paper invariants REGRESSED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}
