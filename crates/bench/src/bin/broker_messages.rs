//! Reproduce the §3.1 estimate: "More messages are generated in response to
//! a demand based publisher scenario then in any other spec, by what we
//! estimate to be an order of magnitude at a minimum."

use ogsa_core::ablation::broker_amplification;
use ogsa_core::report::render_broker;

fn main() {
    println!("Demand-based brokered publishing vs direct subscription");
    println!("(messages on the wire for registration + subscribe + 1 event + teardown)\n");
    for consumers in [1, 2, 4, 8] {
        let b = broker_amplification(consumers);
        println!("{}", render_broker(&b));
    }
    println!(
        "\nThe demand-based path touches up to six services (publisher, its\n\
         subscription manager, broker, broker's subscription manager, the\n\
         registration manager, and each consumer) — the §3.1 complexity claim."
    );
}
