//! Socket-level load harness for the serving tier, written out as
//! `BENCH_serve.json`.
//!
//! Binds the real keep-alive TCP listener (`ogsa_serve::Server`) over a
//! span-quiet testbed, deploys the signed WS-Transfer counter, and drives
//! it with the built-in load generator in three shapes:
//!
//! 1. **Sustain** — `SUSTAIN_CONNECTIONS` concurrent keep-alive
//!    connections, closed loop. Gate: every connection establishes and no
//!    request errors.
//! 2. **Closed 32** — the acceptance comparison point. Gate: sustained rps
//!    within [`MAX_RPS_RATIO`]x of the in-process multi-client harness at
//!    the same client count, p99 under [`P99_MAX_US`].
//! 3. **Open loop** — arrivals at a fixed fraction of the measured closed
//!    capacity, so the tail figures include queueing delay rather than
//!    just service time.
//!
//! Every request on the wire is a replay of one pre-signed envelope; the
//! server still verifies and re-signs per request, so the per-op crypto
//! cost matches the in-process harness's server side. Virtual-time
//! figures are untouched: the serving tier charges no simulated cost.
//!
//! Pass an output directory as the first argument (default: current
//! directory).

use std::process::ExitCode;
use std::time::{Duration, Instant};

use ogsa_core::container::Testbed;
use ogsa_core::counter::{CounterApi, TransferCounter};
use ogsa_core::security::SecurityPolicy;
use ogsa_core::serve::{loadgen, LoadConfig, LoadMode, LoadReport, ServeConfig, Server};
use ogsa_core::sim::CostModel;
use ogsa_core::throughput::{self, ThroughputConfig};
use ogsa_core::xmldb::BackendKind;

/// The headline concurrency claim: this many keep-alive connections held
/// open at once, all completing requests, none erroring.
const SUSTAIN_CONNECTIONS: usize = 1024;

/// Client count for the in-process comparison (matches the acceptance
/// figure in BENCH_throughput.json / BENCH_wallclock.json).
const COMPARE_CLIENTS: usize = 32;

/// The socket path may cost at most this factor versus the in-process
/// harness (i.e. serve rps must be at least in-process rps / 2).
const MAX_RPS_RATIO: f64 = 2.0;

/// p99 ceiling for the 32-connection closed loop. Generous: CI hosts can
/// be single-core and heavily shared, and 32 concurrent signed requests
/// queue behind one another there.
const P99_MAX_US: u64 = 1_000_000;

/// Fraction of measured closed-loop capacity to offer in the open-loop
/// run — below saturation, so the tail reflects queueing, not collapse.
const OPEN_LOAD_FACTOR: f64 = 0.6;

fn run_load(config: &LoadConfig) -> LoadReport {
    loadgen::run(config).unwrap_or_else(|e| panic!("loadgen run failed: {e}"))
}

fn report_json(name: &str, r: &LoadReport) -> String {
    format!(
        "\"{name}\":{{\"connections\":{},\"established\":{},\"requests\":{},\"errors\":{},\"elapsed_ms\":{:.1},\"rps\":{:.1},\"mean_us\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
        r.connections_requested,
        r.connections_established,
        r.requests,
        r.errors,
        r.elapsed.as_secs_f64() * 1_000.0,
        r.rps,
        r.mean_us,
        r.p50_us,
        r.p99_us,
        r.p999_us,
        r.max_us,
    )
}

fn print_report(name: &str, r: &LoadReport) {
    println!(
        "  {name:<10} {:>5}/{:<5} conns  {:>8} reqs  {:>3} errs  {:>9.0} rps  p50 {:>6}us  p99 {:>7}us  p999 {:>7}us",
        r.connections_established,
        r.connections_requested,
        r.requests,
        r.errors,
        r.rps,
        r.p50_us,
        r.p99_us,
        r.p999_us,
    );
}

fn main() -> ExitCode {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());

    // Span-quiet testbed: the load run completes hundreds of thousands of
    // requests and must not accumulate a span per dispatch. Metrics still
    // record; virtual time is free and never advanced by the socket path.
    let tb = Testbed::new_quiet(CostModel::free(), BackendKind::Memory);
    let container = tb.container("host-a", SecurityPolicy::X509Sign);
    let wxf = TransferCounter::deploy(&container);
    let agent = tb.client("host-b", "CN=loadgen,O=VO", SecurityPolicy::X509Sign);
    let counter = wxf.client(agent.clone()).create().expect("create counter");
    wxf.client(agent.clone())
        .set(&counter, 42)
        .expect("seed counter");

    // One signed request, replayed verbatim by every connection. The
    // server verifies the signature and signs its response per request.
    let (address, wire) = agent.prepare_wire(
        &counter,
        ogsa_core::transfer::messages::actions::GET,
        ogsa_core::transfer::messages::get_request(),
    );
    let rest = address.strip_prefix("http://").expect("http address");
    let slash = rest.find('/').expect("address path");
    let (host, target) = (rest[..slash].to_owned(), rest[slash..].to_owned());

    let granted = loadgen::raise_nofile_limit((SUSTAIN_CONNECTIONS as u64) * 2 + 64);
    if granted < (SUSTAIN_CONNECTIONS as u64) + 32 {
        eprintln!("loadgen: fd limit {granted} too low for {SUSTAIN_CONNECTIONS} connections");
        return ExitCode::FAILURE;
    }

    let mut server = Server::bind(tb.network(), ServeConfig::default()).expect("bind serving tier");
    let base = LoadConfig {
        addr: server.addr(),
        connections: 0,
        duration: Duration::from_secs(2),
        warmup: Duration::from_millis(500),
        mode: LoadMode::Closed,
        target,
        host,
        body: wire,
        scrape_admin: None,
    };

    println!(
        "serve loadgen (signed WS-Transfer Get, {} workers)",
        ServeConfig::default().workers
    );

    // Shape 1: hold SUSTAIN_CONNECTIONS keep-alive connections open.
    let sustain = run_load(&LoadConfig {
        connections: SUSTAIN_CONNECTIONS,
        ..base.clone()
    });
    print_report("sustain", &sustain);

    // Shape 2: the acceptance comparison point.
    let closed32 = run_load(&LoadConfig {
        connections: COMPARE_CLIENTS,
        ..base.clone()
    });
    print_report("closed-32", &closed32);

    // Shape 3: open loop below saturation for honest tail figures.
    let open_rps = (closed32.rps * OPEN_LOAD_FACTOR).max(100.0);
    let open = run_load(&LoadConfig {
        connections: COMPARE_CLIENTS * 2,
        mode: LoadMode::Open { rps: open_rps },
        ..base.clone()
    });
    print_report("open-loop", &open);

    // In-process comparison figure: the PR-4 multi-client harness at the
    // same client count, measured on the host clock in this process.
    let config = ThroughputConfig {
        policy: SecurityPolicy::X509Sign,
        clients: vec![COMPARE_CLIENTS],
        shards: vec![8],
        iterations: 4,
        grid_clients: vec![],
        grid_shards: vec![],
    };
    let wall_start = Instant::now();
    let rows = throughput::run(&config);
    let wall = wall_start.elapsed();
    let in_process_requests: u64 = rows.iter().map(|r| r.requests).sum();
    let in_process_rps = in_process_requests as f64 / wall.as_secs_f64();
    println!(
        "  in-process {COMPARE_CLIENTS} clients: {in_process_requests} reqs in {:.0}ms = {in_process_rps:.0} rps",
        wall.as_secs_f64() * 1_000.0
    );

    let rps_ratio = in_process_rps / closed32.rps.max(1e-9);
    let sustained = sustain.connections_established == SUSTAIN_CONNECTIONS;
    let errors = sustain.errors + closed32.errors + open.errors;
    let pass = sustained
        && errors == 0
        && rps_ratio <= MAX_RPS_RATIO
        && closed32.p99_us <= P99_MAX_US
        && server.stats().dispatch_panics() == 0;

    let json = format!(
        "{{\"benchmark\":\"serve\",\"workload\":\"signed transfer get\",\"policy\":\"x509\",{},{},{},\"open_loop_offered_rps\":{:.1},\"in_process\":{{\"clients\":{},\"requests\":{},\"real_elapsed_ms\":{:.1},\"real_rps\":{:.1}}},\"server\":{{\"accepted\":{},\"requests\":{},\"http_errors\":{},\"dispatch_panics\":{}}},\"gate\":{{\"sustain_connections\":{},\"sustained\":{},\"errors\":{},\"max_rps_ratio\":{},\"rps_ratio\":{:.3},\"p99_max_us\":{},\"p99_us\":{},\"pass\":{}}}}}\n",
        report_json("sustain", &sustain),
        report_json("closed_32", &closed32),
        report_json("open_loop", &open),
        open_rps,
        COMPARE_CLIENTS,
        in_process_requests,
        wall.as_secs_f64() * 1_000.0,
        in_process_rps,
        server.stats().accepted(),
        server.stats().requests(),
        server.stats().http_errors(),
        server.stats().dispatch_panics(),
        SUSTAIN_CONNECTIONS,
        sustained,
        errors,
        MAX_RPS_RATIO,
        rps_ratio,
        P99_MAX_US,
        closed32.p99_us,
        pass,
    );
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("mkdir {out_dir}: {e}"));
    let path = format!("{out_dir}/BENCH_serve.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    server.shutdown();

    if pass {
        println!(
            "serve gate: {SUSTAIN_CONNECTIONS} conns sustained, socket rps within {rps_ratio:.2}x of in-process (max {MAX_RPS_RATIO}x), p99 {}us <= {P99_MAX_US}us",
            closed32.p99_us
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "serve gate FAILED: sustained={sustained} ({} of {SUSTAIN_CONNECTIONS}), errors={errors}, rps_ratio={rps_ratio:.2} (max {MAX_RPS_RATIO}), p99={}us (max {P99_MAX_US}us), panics={}",
            sustain.connections_established,
            closed32.p99_us,
            server.stats().dispatch_panics(),
        );
        ExitCode::FAILURE
    }
}
