//! The replication bench: re-proves the failover theorems in release mode,
//! times replica catch-up on wall clock, and checks the virtual-time
//! invariance of shipping, written to `BENCH_replication.json`.
//!
//! Gates (exit nonzero on violation):
//!
//! 1. **Zero lost quorum-acked writes** — a partition sweep over every
//!    replication-record boundary (replica first, then the primary),
//!    promoting the longest-acked survivor each time: the promotion point
//!    must never fall below the quorum-acked watermark, and every member
//!    must converge to a single whole-prefix history.
//! 2. **Replica catch-up under 10 s wall** — an empty replica joining a
//!    primary with a compacted base plus a log suffix (snapshot + suffix
//!    shipping) must fully catch up in under 10 seconds of real time.
//! 3. **Virtual-time invariance** — a fixed calibrated workload charges
//!    the identical virtual duration with a replication tap attached and
//!    without one, so every virtual-time figure in the repo is
//!    bit-identical with replication enabled.
//! 4. **Deterministic failover** — the full partition sweep, run twice,
//!    produces byte-identical converged images at every boundary.
//!
//! Pass an output directory as the first argument (default: `.`).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ogsa_core::sim::{CostModel, VirtualClock};
use ogsa_core::xml::Element;
use ogsa_core::xmldb::repl::{promote, LoopbackFabric, ReplConfig, ReplicaNode, Replicator};
use ogsa_core::xmldb::snapshot::apply_op;
use ogsa_core::xmldb::wal::WalOp;
use ogsa_core::xmldb::{
    encode_store, BackendKind, Database, DurableBackend, DurableConfig, FsyncPolicy, StoreImage,
};

const COLL: &str = "resources";
const PRIMARY: &str = "primary";

fn doc(v: i64) -> Element {
    Element::new("counter").with_child(Element::text_element("value", v.to_string()))
}

struct Cluster {
    db: Database,
    repl: Arc<Replicator>,
    fabric: Arc<LoopbackFabric>,
    replicas: Vec<(String, Arc<ReplicaNode>)>,
}

fn cluster() -> Cluster {
    let backend = Arc::new(DurableBackend::sim(DurableConfig {
        fsync: FsyncPolicy::PerWrite,
        snapshot_every: 0,
    }));
    let db = Database::new(
        VirtualClock::new(),
        Arc::new(CostModel::free()),
        BackendKind::Custom(backend.clone()),
    );
    let fabric = LoopbackFabric::new();
    let mut replicas = Vec::new();
    for id in ["r1", "r2"] {
        let node = ReplicaNode::new(FsyncPolicy::PerWrite);
        fabric.register(id, node.clone());
        replicas.push((id.to_owned(), node));
    }
    let repl = Arc::new(Replicator::new(
        PRIMARY,
        &["r1", "r2"],
        fabric.clone(),
        ReplConfig::majority(3),
    ));
    backend.set_observer(repl.clone());
    Cluster {
        db,
        repl,
        fabric,
        replicas,
    }
}

fn workload_ops(n: usize) -> Vec<WalOp> {
    (0..n)
        .map(|i| WalOp::Put {
            collection: COLL.to_owned(),
            key: format!("k{i}"),
            doc: doc(i as i64),
        })
        .collect()
}

fn run_workload(db: &Database, lo: usize, hi: usize) {
    let c = db.collection(COLL);
    for i in lo..hi {
        c.insert(&format!("k{i}"), doc(i as i64)).unwrap();
    }
}

/// Image after each whole-op prefix of `workload_ops(n)`.
fn prefix_images(n: usize) -> Vec<Vec<u8>> {
    let mut image = StoreImage::new();
    let mut out = vec![encode_store(&image)];
    for op in &workload_ops(n) {
        apply_op(&mut image, op);
        out.push(encode_store(&image));
    }
    out
}

struct SweepResult {
    boundaries: u64,
    lost_acked: u64,
    diverged: u64,
    images: Vec<Vec<u8>>,
}

/// Partition r1 after 2 part-2 records and the primary after `j`, promote
/// the longest-acked survivor, rejoin the deposed primary, and report
/// whether anything quorum-acked was lost or any member diverged.
fn failover_at(part1: usize, part2: usize, j: u64) -> (bool, bool, Vec<u8>) {
    let images = prefix_images(part1 + part2);
    let cl = cluster();
    run_workload(&cl.db, 0, part1);
    cl.fabric.sever_after(PRIMARY, "r1", 2.min(j));
    cl.fabric.sever_after(PRIMARY, "r2", j);
    run_workload(&cl.db, part1, part1 + part2);
    cl.fabric.sever(PRIMARY, "r1");
    cl.fabric.sever(PRIMARY, "r2");
    let watermark = cl.repl.quorum_acked_seq();

    let promotee = if cl.replicas[0].1.acked_seq() >= cl.replicas[1].1.acked_seq() {
        "r1"
    } else {
        "r2"
    };
    let new_repl = promote(
        promotee,
        &cl.replicas,
        3,
        cl.fabric.clone(),
        ReplConfig::majority(3),
    )
    .expect("two survivors allow promotion");
    let lost = new_repl.promotion_seq() < watermark;

    let old_node = cl.repl.to_node(FsyncPolicy::PerWrite);
    cl.fabric.register("old-primary", old_node.clone());
    for peer in ["r1", "r2", "old-primary"] {
        cl.fabric.heal(promotee, peer);
    }
    new_repl.admit("old-primary");
    let mut diverged = !new_repl.catch_up("old-primary");
    for (id, _) in &cl.replicas {
        if id != promotee {
            diverged |= !new_repl.catch_up(id);
        }
    }
    let converged = encode_store(&new_repl.image());
    diverged |= old_node.encoded_image() != converged;
    for (id, node) in &cl.replicas {
        if id != promotee {
            diverged |= node.encoded_image() != converged;
        }
    }
    // The converged image must be a whole prefix at or past the watermark.
    match images.iter().rposition(|img| *img == converged) {
        Some(p) if (p as u64) >= watermark => {}
        _ => diverged = true,
    }
    (lost, diverged, converged)
}

fn failover_sweep(part1: usize, part2: usize) -> SweepResult {
    let mut lost_acked = 0;
    let mut diverged = 0;
    let mut images = Vec::new();
    for j in 0..=(part2 as u64) {
        let (lost, div, image) = failover_at(part1, part2, j);
        lost_acked += u64::from(lost);
        diverged += u64::from(div);
        images.push(image);
    }
    SweepResult {
        boundaries: part2 as u64 + 1,
        lost_acked,
        diverged,
        images,
    }
}

/// Wall time for an empty replica to catch up to a primary holding
/// `base_ops` compacted into a snapshot plus `suffix_ops` of log.
fn catch_up_wall(base_ops: usize, suffix_ops: usize) -> (bool, f64) {
    let cl = cluster();
    cl.fabric.sever(PRIMARY, "r2");
    run_workload(&cl.db, 0, base_ops);
    cl.repl.compact();
    run_workload(&cl.db, base_ops, base_ops + suffix_ops);
    cl.fabric.heal(PRIMARY, "r2");
    let start = Instant::now();
    let ok = cl.repl.catch_up("r2");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let total = (base_ops + suffix_ops) as u64;
    let caught = ok && cl.replicas[1].1.acked_seq() == total;
    (caught, wall_ms)
}

/// Virtual duration of a fixed calibrated workload, with or without a
/// replication tap on the durable backend.
fn virtual_elapsed(replicate: bool) -> u64 {
    let clock = VirtualClock::new();
    let start = clock.now();
    let backend = Arc::new(DurableBackend::sim(DurableConfig::default()));
    let db = Database::new(
        clock.clone(),
        Arc::new(CostModel::calibrated_2005()),
        BackendKind::Custom(backend.clone()),
    );
    let _repl = replicate.then(|| {
        let fabric = LoopbackFabric::new();
        fabric.register("r1", ReplicaNode::new(FsyncPolicy::PerWrite));
        fabric.register("r2", ReplicaNode::new(FsyncPolicy::PerWrite));
        let repl = Arc::new(Replicator::new(
            PRIMARY,
            &["r1", "r2"],
            fabric,
            ReplConfig::majority(3),
        ));
        backend.set_observer(repl.clone());
        repl
    });
    let c = db.collection(COLL);
    for i in 0..20 {
        c.insert(&format!("k{i}"), doc(i)).unwrap();
    }
    c.insert_many((0..10).map(|i| (format!("b{i}"), doc(i))).collect())
        .unwrap();
    for i in 0..20 {
        c.get(&format!("k{i}"));
    }
    c.update("k3", doc(33)).unwrap();
    c.remove("k7");
    clock.now().since(start).as_micros()
}

fn main() -> ExitCode {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());

    // 1 + 4: the partition-boundary failover sweep, twice, for the
    // zero-loss and determinism gates.
    let (part1, part2) = (4, 10);
    let sweep = failover_sweep(part1, part2);
    let again = failover_sweep(part1, part2);
    let deterministic = sweep.images == again.images;

    // 2: snapshot + suffix catch-up on wall clock.
    let (base_ops, suffix_ops) = (2_000, 500);
    let (caught_up, catch_up_ms) = catch_up_wall(base_ops, suffix_ops);

    // 3: virtual time must not notice the replication tap.
    let vt_plain = virtual_elapsed(false);
    let vt_replicated = virtual_elapsed(true);

    println!(
        "failover sweep: {} boundaries, {} lost acked, {} diverged, deterministic: {}",
        sweep.boundaries, sweep.lost_acked, sweep.diverged, deterministic
    );
    println!(
        "catch-up: {} base + {} suffix records in {catch_up_ms:.1} ms (complete: {caught_up})",
        base_ops, suffix_ops
    );
    println!(
        "virtual time: plain {vt_plain} µs vs replicated {vt_replicated} µs (must be identical)"
    );

    let gates: Vec<(&str, bool)> = vec![
        ("zero_lost_acked_writes", sweep.lost_acked == 0),
        ("single_history_convergence", sweep.diverged == 0),
        ("deterministic_failover", deterministic),
        ("catch_up_under_10s", caught_up && catch_up_ms < 10_000.0),
        ("virtual_time_identical", vt_plain == vt_replicated),
    ];

    let gates_json: Vec<String> = gates
        .iter()
        .map(|(name, pass)| format!("{{\"name\":\"{name}\",\"pass\":{pass}}}"))
        .collect();
    let json = format!(
        concat!(
            "{{\"benchmark\":\"replication\",",
            "\"sweep\":{{\"boundaries\":{},\"lost_acked\":{},\"diverged\":{},",
            "\"deterministic\":{}}},",
            "\"catch_up\":{{\"base_ops\":{},\"suffix_ops\":{},\"wall_ms\":{:.3},\"complete\":{}}},",
            "\"virtual_time\":{{\"plain_us\":{},\"replicated_us\":{}}},",
            "\"gates\":[{}]}}\n"
        ),
        sweep.boundaries,
        sweep.lost_acked,
        sweep.diverged,
        deterministic,
        base_ops,
        suffix_ops,
        catch_up_ms,
        caught_up,
        vt_plain,
        vt_replicated,
        gates_json.join(",")
    );
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("mkdir {out_dir}: {e}"));
    let path = format!("{out_dir}/BENCH_replication.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    let failed: Vec<&str> = gates
        .iter()
        .filter(|(_, pass)| !pass)
        .map(|(name, _)| *name)
        .collect();
    if failed.is_empty() {
        println!("replication gates: all hold");
        ExitCode::SUCCESS
    } else {
        eprintln!("replication gates REGRESSED: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}
