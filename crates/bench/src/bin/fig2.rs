//! Regenerate Figure 2: Testing "Hello World" with no security.

use ogsa_bench::{print_hello_figure, print_hello_summary};
use ogsa_core::security::SecurityPolicy;

fn main() {
    let rows = print_hello_figure(
        "Figure 2",
        "Testing \"Hello World\" with no security (ms per request)",
        SecurityPolicy::None,
    );
    print_hello_summary(&rows);
}
