//! Mechanism ablations behind the §4.1.3 explanations: each design choice
//! the paper credits, toggled in isolation.

use ogsa_core::ablation;
use ogsa_core::report::render_ablation;

fn main() {
    println!("Mechanism ablations (virtual ms per operation)\n");
    for a in [
        ablation::resource_cache(12),
        ablation::tls_session_cache(12),
        ablation::notify_transport(12),
    ] {
        println!("{}", render_ablation(&a));
    }
    println!(
        "\nEach line isolates one claim: the write-through cache explains the Set gap,\n\
         session caching explains why Figure 3 ≈ Figure 2, and the TCP push path\n\
         explains WS-Eventing's Notify advantage."
    );
}
