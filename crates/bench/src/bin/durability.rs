//! The durability bench: prices the WAL's fsync policies on real hardware,
//! times crash recovery, and re-proves the crash-sweep invariants in
//! release mode, written to `BENCH_durability.json`.
//!
//! Gates (exit nonzero on violation):
//!
//! 1. **Zero lost acked writes / zero half-applied batches** across an
//!    exhaustive byte-offset crash sweep on the simulated medium.
//! 2. **Deterministic recovery** — same crash offset, byte-identical
//!    recovered store, at every sampled offset.
//! 3. **Recovery wall time** under 10 s for a 2 000-op log on real files.
//! 4. **Durable write throughput** — the group-commit file-backed WAL must
//!    sustain at least the calibrated simulated-disk insert rate
//!    (1e6 / `db_insert_us` ≈ 91 inserts/s): real durability is not
//!    allowed to be slower than the 2005 disk the paper measured.
//! 5. **Virtual-time invariance** — a fixed workload charges the identical
//!    virtual duration under SimDisk and under the durable backend, so
//!    every virtual-time figure in the repo is bit-identical with
//!    durability enabled or disabled.
//!
//! Pass an output directory as the first argument (default: `.`).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ogsa_core::sim::{CostModel, VirtualClock};
use ogsa_core::xml::Element;
use ogsa_core::xmldb::snapshot::apply_op;
use ogsa_core::xmldb::wal::WalOp;
use ogsa_core::xmldb::{
    encode_store, BackendKind, CrashPoint, Database, DurableBackend, DurableConfig, FsyncPolicy,
    StoreImage,
};

const COLL: &str = "resources";

fn doc(v: i64) -> Element {
    Element::new("counter").with_child(Element::text_element("value", v.to_string()))
}

fn fresh_db(backend: Arc<DurableBackend>) -> Database {
    Database::new(
        VirtualClock::new(),
        Arc::new(CostModel::free()),
        BackendKind::Custom(backend),
    )
}

/// The sweep workload: singles, a batch, an update, a delete.
fn run_workload(db: &Database) {
    let c = db.collection(COLL);
    for i in 0..5 {
        c.insert(&format!("k{i}"), doc(i)).unwrap();
    }
    c.insert_many((0..6).map(|i| (format!("b{i}"), doc(100 + i))).collect())
        .unwrap();
    c.update("k2", doc(22)).unwrap();
    c.remove("k4");
}

/// Store image after each op prefix (mirrors the workload above).
fn prefix_images() -> Vec<Vec<u8>> {
    let mut ops: Vec<WalOp> = (0..5)
        .map(|i| WalOp::Put {
            collection: COLL.to_owned(),
            key: format!("k{i}"),
            doc: doc(i),
        })
        .collect();
    ops.push(WalOp::PutBatch {
        collection: COLL.to_owned(),
        entries: (0..6).map(|i| (format!("b{i}"), doc(100 + i))).collect(),
    });
    ops.push(WalOp::Put {
        collection: COLL.to_owned(),
        key: "k2".to_owned(),
        doc: doc(22),
    });
    ops.push(WalOp::Delete {
        collection: COLL.to_owned(),
        key: "k4".to_owned(),
    });
    let mut image = StoreImage::new();
    let mut out = vec![encode_store(&image)];
    for op in &ops {
        apply_op(&mut image, op);
        out.push(encode_store(&image));
    }
    out
}

struct SweepResult {
    crash_points: u64,
    lost_acked: u64,
    half_applied: u64,
    determinism_samples: u64,
    deterministic: bool,
}

fn crash_once(at: u64) -> (u64, Vec<u8>) {
    let backend = Arc::new(DurableBackend::sim(DurableConfig {
        fsync: FsyncPolicy::PerWrite,
        snapshot_every: 0,
    }));
    backend.sim_medium().unwrap().arm(CrashPoint::AtByte(at));
    let db = fresh_db(backend.clone());
    run_workload(&db);
    let acked = backend.acked_ops();
    backend.recover();
    (acked, backend.encoded_image())
}

fn crash_sweep() -> SweepResult {
    let images = prefix_images();
    // Clean run sizes the log.
    let backend = Arc::new(DurableBackend::sim(DurableConfig {
        fsync: FsyncPolicy::PerWrite,
        snapshot_every: 0,
    }));
    let db = fresh_db(backend.clone());
    run_workload(&db);
    let total = backend.wal_len();

    let mut lost_acked = 0u64;
    let mut half_applied = 0u64;
    let mut determinism_samples = 0u64;
    let mut deterministic = true;
    for at in 0..=total {
        let (acked, image) = crash_once(at);
        match images.iter().rposition(|img| *img == image) {
            Some(j) if (j as u64) < acked => lost_acked += 1,
            // `rposition` hit means the image is a whole-op prefix: a
            // half-applied batch can never equal one.
            Some(_) => {}
            None => half_applied += 1,
        }
        if at % 13 == 0 {
            determinism_samples += 1;
            let (_, again) = crash_once(at);
            deterministic &= image == again;
        }
    }
    SweepResult {
        crash_points: total + 1,
        lost_acked,
        half_applied,
        determinism_samples,
        deterministic,
    }
}

struct PolicyRow {
    label: &'static str,
    policy: FsyncPolicy,
    ops: usize,
    wall_ms: f64,
    rps: f64,
}

fn bench_policy(
    dir: &std::path::Path,
    label: &'static str,
    policy: FsyncPolicy,
    ops: usize,
) -> PolicyRow {
    let sub = dir.join(label);
    let _ = std::fs::remove_dir_all(&sub);
    let backend = Arc::new(
        DurableBackend::file(
            &sub,
            DurableConfig {
                fsync: policy,
                snapshot_every: 0,
            },
        )
        .expect("create bench wal dir"),
    );
    let db = fresh_db(backend.clone());
    let c = db.collection(COLL);
    let start = Instant::now();
    for i in 0..ops {
        c.insert(&format!("k{i}"), doc(i as i64)).unwrap();
    }
    let wall = start.elapsed();
    let _ = std::fs::remove_dir_all(&sub);
    let wall_ms = wall.as_secs_f64() * 1e3;
    PolicyRow {
        label,
        policy,
        ops,
        wall_ms,
        rps: ops as f64 / wall.as_secs_f64().max(1e-9),
    }
}

fn recovery_time(dir: &std::path::Path, ops: usize) -> (usize, f64) {
    let sub = dir.join("recovery");
    let _ = std::fs::remove_dir_all(&sub);
    let cfg = DurableConfig {
        fsync: FsyncPolicy::GroupCommit(64),
        snapshot_every: 0,
    };
    {
        let backend = Arc::new(DurableBackend::file(&sub, cfg).expect("create recovery dir"));
        let db = fresh_db(backend.clone());
        let c = db.collection(COLL);
        for i in 0..ops {
            c.insert(&format!("k{i}"), doc(i as i64)).unwrap();
        }
    }
    // A brand-new process-equivalent: reopen and replay the whole log.
    let backend = Arc::new(DurableBackend::file(&sub, cfg).expect("reopen recovery dir"));
    let start = Instant::now();
    let report = backend.recover();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&sub);
    (report.wal_records_replayed, wall_ms)
}

/// Virtual duration of a fixed workload under `backend`.
fn virtual_elapsed(backend: BackendKind) -> u64 {
    let clock = VirtualClock::new();
    let start = clock.now();
    let db = Database::new(
        clock.clone(),
        Arc::new(CostModel::calibrated_2005()),
        backend,
    );
    let c = db.collection(COLL);
    for i in 0..20 {
        c.insert(&format!("k{i}"), doc(i)).unwrap();
    }
    c.insert_many((0..10).map(|i| (format!("b{i}"), doc(i))).collect())
        .unwrap();
    for i in 0..20 {
        c.get(&format!("k{i}"));
    }
    c.update("k3", doc(33)).unwrap();
    c.remove("k7");
    clock.now().since(start).as_micros()
}

fn main() -> ExitCode {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let tmp = std::env::temp_dir().join(format!("ogsa-durability-bench-{}", std::process::id()));

    // 1+2: the crash sweep and determinism gates.
    let sweep = crash_sweep();

    // 3: recovery wall time on real files.
    let recovery_ops = 2_000;
    let (replayed, recovery_ms) = recovery_time(&tmp, recovery_ops);

    // 4: fsync policies on real files vs the calibrated simulated disk.
    let model = CostModel::calibrated_2005();
    let simdisk_rps = 1e6 / model.db_insert_us as f64;
    let rows = vec![
        bench_policy(&tmp, "per_write", FsyncPolicy::PerWrite, 300),
        bench_policy(&tmp, "group_commit_8", FsyncPolicy::GroupCommit(8), 1_000),
        bench_policy(&tmp, "never", FsyncPolicy::Never, 1_000),
    ];

    // 5: virtual time must not notice the durable backend.
    let vt_simdisk = virtual_elapsed(BackendKind::SimDisk);
    let vt_durable = virtual_elapsed(BackendKind::Custom(Arc::new(DurableBackend::sim(
        DurableConfig::default(),
    ))));
    let _ = std::fs::remove_dir_all(&tmp);

    println!(
        "crash sweep: {} points, {} lost acked, {} half-applied, deterministic at {} samples: {}",
        sweep.crash_points,
        sweep.lost_acked,
        sweep.half_applied,
        sweep.determinism_samples,
        sweep.deterministic
    );
    println!("recovery: {replayed} records replayed in {recovery_ms:.1} ms");
    println!(
        "virtual time: simdisk {vt_simdisk} µs vs durable {vt_durable} µs (must be identical)"
    );
    println!(
        "{:<16} {:>8} {:>10} {:>10}   (simdisk implied: {:.1} rps)",
        "policy", "ops", "wall ms", "rps", simdisk_rps
    );
    for r in &rows {
        println!(
            "{:<16} {:>8} {:>10.1} {:>10.1}",
            r.label, r.ops, r.wall_ms, r.rps
        );
    }

    let group_commit_rps = rows
        .iter()
        .find(|r| matches!(r.policy, FsyncPolicy::GroupCommit(_)))
        .map(|r| r.rps)
        .unwrap_or(0.0);
    let gates: Vec<(&str, bool)> = vec![
        ("zero_lost_acked_writes", sweep.lost_acked == 0),
        ("zero_half_applied_batches", sweep.half_applied == 0),
        ("deterministic_recovery", sweep.deterministic),
        (
            "recovery_under_10s",
            replayed == recovery_ops && recovery_ms < 10_000.0,
        ),
        (
            "group_commit_beats_simulated_disk",
            group_commit_rps >= simdisk_rps,
        ),
        ("virtual_time_identical", vt_simdisk == vt_durable),
    ];

    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"policy\":\"{}\",\"ops\":{},\"wall_ms\":{:.3},\"rps\":{:.1}}}",
                r.label, r.ops, r.wall_ms, r.rps
            )
        })
        .collect();
    let gates_json: Vec<String> = gates
        .iter()
        .map(|(name, pass)| format!("{{\"name\":\"{name}\",\"pass\":{pass}}}"))
        .collect();
    let json = format!(
        concat!(
            "{{\"benchmark\":\"durability\",",
            "\"sweep\":{{\"crash_points\":{},\"lost_acked\":{},\"half_applied_batches\":{},",
            "\"determinism_samples\":{},\"deterministic\":{}}},",
            "\"recovery\":{{\"ops\":{},\"replayed\":{},\"wall_ms\":{:.3}}},",
            "\"virtual_time\":{{\"simdisk_us\":{},\"durable_us\":{}}},",
            "\"simdisk_implied_rps\":{:.1},",
            "\"throughput\":[{}],",
            "\"gates\":[{}]}}\n"
        ),
        sweep.crash_points,
        sweep.lost_acked,
        sweep.half_applied,
        sweep.determinism_samples,
        sweep.deterministic,
        recovery_ops,
        replayed,
        recovery_ms,
        vt_simdisk,
        vt_durable,
        simdisk_rps,
        rows_json.join(","),
        gates_json.join(",")
    );
    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("mkdir {out_dir}: {e}"));
    let path = format!("{out_dir}/BENCH_durability.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    let failed: Vec<&str> = gates
        .iter()
        .filter(|(_, pass)| !pass)
        .map(|(name, _)| *name)
        .collect();
    if failed.is_empty() {
        println!("durability gates: all hold");
        ExitCode::SUCCESS
    } else {
        eprintln!("durability gates REGRESSED: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}
