//! # ogsa-bench
//!
//! Regenerates every quantitative result in the paper:
//!
//! | target | paper artefact |
//! |---|---|
//! | `cargo run --release -p ogsa-bench --bin fig2` | Figure 2 (no security) |
//! | `cargo run --release -p ogsa-bench --bin fig3` | Figure 3 (HTTPS) |
//! | `cargo run --release -p ogsa-bench --bin fig4` | Figure 4 (X.509 signing) |
//! | `cargo run --release -p ogsa-bench --bin fig6` | Figure 6 (Grid-in-a-Box) |
//! | `cargo run --release -p ogsa-bench --bin broker_messages` | §3.1 demand-based message estimate |
//! | `cargo run --release -p ogsa-bench --bin ablations` | §4.1.3 mechanism claims |
//! | `cargo run --release -p ogsa-bench --bin bench` | traced component breakdowns → `BENCH_*.json` + Chrome trace, exits nonzero on ordinal regressions |
//!
//! The Criterion benches (`cargo bench -p ogsa-bench`) measure the *real*
//! compute cost of this implementation (XML parsing, canonicalisation,
//! hashing, dispatch) alongside the virtual-time figures.

use ogsa_core::hello::{self, HelloConfig, HelloRow};
use ogsa_core::report;
use ogsa_core::security::SecurityPolicy;

/// Shared driver for the three hello-world figures.
pub fn print_hello_figure(figure: &str, caption: &str, policy: SecurityPolicy) -> Vec<HelloRow> {
    let rows = hello::run(HelloConfig {
        policy,
        iterations: 12,
    });
    println!(
        "{}",
        report::render_hello(&format!("{figure}: {caption}"), &rows)
    );
    rows
}

/// Print the who-wins summary the paper's text draws from a hello figure.
pub fn print_hello_summary(rows: &[HelloRow]) {
    use ogsa_core::comparison::Stack;
    use ogsa_core::transport::Deployment;
    let cell = |op, stack, dep| hello::cell(rows, op, stack, dep).unwrap_or(f64::NAN);
    for dep in Deployment::all() {
        let set_gap = cell("Set", Stack::Transfer, dep) - cell("Set", Stack::Wsrf, dep);
        let notify_gap = cell("Notify", Stack::Wsrf, dep) - cell("Notify", Stack::Transfer, dep);
        println!(
            "  {}: WSRF.NET faster on Set by {:.1} ms (cache); WS-Eventing faster on Notify by {:.1} ms (TCP)",
            dep.label(),
            set_gap,
            notify_gap
        );
    }
}
