//! The "hello world" counter evaluation (§4.1.3): the data behind
//! Figures 2 (no security), 3 (HTTPS) and 4 (X.509 signing).
//!
//! "We ran each of the five tests in six scenarios" — three security
//! policies × {co-located, distributed}. One [`run`] call produces one
//! figure's worth of rows (five operations × two stacks × two deployments).

use std::time::Duration;

use ogsa_container::Testbed;
use ogsa_counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_security::SecurityPolicy;
use ogsa_transport::Deployment;

use super::Stack;

/// The five measured operations, in the paper's order.
pub const OPERATIONS: [&str; 5] = ["Get", "Set", "Create", "Destroy", "Notify"];

/// How long to wait (in real time) for an asynchronous notification.
const NOTIFY_WAIT: Duration = Duration::from_secs(5);

/// One bar of Figures 2-4.
#[derive(Debug, Clone, PartialEq)]
pub struct HelloRow {
    pub operation: &'static str,
    pub stack: Stack,
    pub deployment: Deployment,
    /// Mean virtual milliseconds per request.
    pub ms: f64,
}

/// Configuration for one figure run.
#[derive(Debug, Clone, Copy)]
pub struct HelloConfig {
    pub policy: SecurityPolicy,
    /// Measured iterations per operation.
    pub iterations: usize,
}

impl Default for HelloConfig {
    fn default() -> Self {
        HelloConfig {
            policy: SecurityPolicy::None,
            iterations: 12,
        }
    }
}

/// Run one figure's scenario sweep.
pub fn run(config: HelloConfig) -> Vec<HelloRow> {
    let mut rows = Vec::new();
    for deployment in Deployment::all() {
        for stack in Stack::all() {
            rows.extend(run_one(config, stack, deployment));
        }
    }
    rows
}

fn client_host(deployment: Deployment) -> &'static str {
    match deployment {
        Deployment::Colocated => "host-a",
        Deployment::Distributed => "host-b",
    }
}

fn run_one(config: HelloConfig, stack: Stack, deployment: Deployment) -> Vec<HelloRow> {
    // A fresh testbed per cell keeps runs independent and deterministic.
    let tb = Testbed::calibrated();
    let container = tb.container("host-a", config.policy);
    let agent = tb.client(client_host(deployment), "CN=alice,O=UVA-VO", config.policy);
    let api: Box<dyn CounterApi> = match stack {
        Stack::Wsrf => Box::new(WsrfCounter::deploy(&container).client(agent)),
        Stack::Transfer => Box::new(TransferCounter::deploy(&container).client(agent)),
    };

    // Warm-up: establish connections / TLS sessions, exercise each path
    // once (the paper measures steady state; socket caching is the whole
    // HTTPS story).
    let warm = api.create().expect("warm create");
    api.get(&warm).expect("warm get");
    api.set(&warm, 1).expect("warm set");
    let warm_waiter = api.subscribe(&warm).expect("warm subscribe");
    api.set(&warm, 2).expect("warm notify set");
    warm_waiter.wait(NOTIFY_WAIT).expect("warm notification");
    api.destroy(&warm).expect("warm destroy");

    let clock = tb.clock();
    let n = config.iterations.max(1);
    let mut get_ms = 0.0;
    let mut set_ms = 0.0;
    let mut create_ms = 0.0;
    let mut destroy_ms = 0.0;
    let mut notify_ms = 0.0;

    // Get / Set against one long-lived counter.
    let counter = api.create().expect("create");
    for i in 0..n {
        let t = clock.now();
        api.get(&counter).expect("get");
        get_ms += clock.now().since(t).as_millis();

        let t = clock.now();
        api.set(&counter, i as i64).expect("set");
        set_ms += clock.now().since(t).as_millis();
    }

    // Notify: subscribe once, then measure set → receipt.
    let waiter = api.subscribe(&counter).expect("subscribe");
    for i in 0..n {
        let t = clock.now();
        api.set(&counter, 1000 + i as i64).expect("notify set");
        waiter
            .wait(NOTIFY_WAIT)
            .expect("notification should arrive");
        notify_ms += clock.now().since(t).as_millis();
    }
    api.destroy(&counter).expect("cleanup");

    // Create / Destroy in pairs.
    for _ in 0..n {
        let t = clock.now();
        let c = api.create().expect("create");
        create_ms += clock.now().since(t).as_millis();

        let t = clock.now();
        api.destroy(&c).expect("destroy");
        destroy_ms += clock.now().since(t).as_millis();
    }

    let n = n as f64;
    [
        ("Get", get_ms / n),
        ("Set", set_ms / n),
        ("Create", create_ms / n),
        ("Destroy", destroy_ms / n),
        ("Notify", notify_ms / n),
    ]
    .into_iter()
    .map(|(operation, ms)| HelloRow {
        operation,
        stack,
        deployment,
        ms,
    })
    .collect()
}

/// Fetch one cell out of a row set.
pub fn cell(rows: &[HelloRow], op: &str, stack: Stack, deployment: Deployment) -> Option<f64> {
    rows.iter()
        .find(|r| r.operation == op && r.stack == stack && r.deployment == deployment)
        .map(|r| r.ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: SecurityPolicy) -> Vec<HelloRow> {
        run(HelloConfig {
            policy,
            iterations: 3,
        })
    }

    #[test]
    fn produces_the_full_matrix() {
        let rows = quick(SecurityPolicy::None);
        assert_eq!(rows.len(), 5 * 2 * 2);
        for op in OPERATIONS {
            for stack in Stack::all() {
                for dep in Deployment::all() {
                    assert!(
                        cell(&rows, op, stack, dep).is_some(),
                        "{op}/{stack:?}/{dep:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn figure2_shape_holds() {
        let rows = quick(SecurityPolicy::None);
        for stack in Stack::all() {
            for dep in Deployment::all() {
                let create = cell(&rows, "Create", stack, dep).unwrap();
                let get = cell(&rows, "Get", stack, dep).unwrap();
                let set = cell(&rows, "Set", stack, dep).unwrap();
                // "Creating resources ... is always slower than reading or
                // updating them."
                assert!(
                    create > get,
                    "{stack:?}/{dep:?}: create {create} vs get {get}"
                );
                assert!(create > set, "{stack:?}/{dep:?}");
                // Everything fits the paper's 0-50 ms scale.
                for op in OPERATIONS {
                    let ms = cell(&rows, op, stack, dep).unwrap();
                    assert!(ms < 50.0, "{op}/{stack:?}/{dep:?} = {ms} ms");
                    assert!(ms > 0.5, "{op}/{stack:?}/{dep:?} = {ms} ms");
                }
            }
        }
        // WSRF's cached Set beats WS-Transfer's read-then-update Put.
        for dep in Deployment::all() {
            let wsrf_set = cell(&rows, "Set", Stack::Wsrf, dep).unwrap();
            let wxf_set = cell(&rows, "Set", Stack::Transfer, dep).unwrap();
            assert!(wsrf_set < wxf_set, "{dep:?}: {wsrf_set} vs {wxf_set}");
        }
        // WS-Eventing's TCP notify beats WSN's HTTP notify.
        for dep in Deployment::all() {
            let wsn = cell(&rows, "Notify", Stack::Wsrf, dep).unwrap();
            let wse = cell(&rows, "Notify", Stack::Transfer, dep).unwrap();
            assert!(wse < wsn, "{dep:?}: {wse} vs {wsn}");
        }
        // Distributed costs more than co-located.
        for op in OPERATIONS {
            for stack in Stack::all() {
                let co = cell(&rows, op, stack, Deployment::Colocated).unwrap();
                let dist = cell(&rows, op, stack, Deployment::Distributed).unwrap();
                assert!(dist > co, "{op}/{stack:?}: {dist} vs {co}");
            }
        }
    }

    #[test]
    fn figure4_x509_dominates_and_differences_fade() {
        let plain = quick(SecurityPolicy::None);
        let signed = quick(SecurityPolicy::X509Sign);
        for op in OPERATIONS {
            for stack in Stack::all() {
                let p = cell(&plain, op, stack, Deployment::Distributed).unwrap();
                let s = cell(&signed, op, stack, Deployment::Distributed).unwrap();
                // Signing inflates everything substantially...
                assert!(s > p + 50.0, "{op}/{stack:?}: {s} vs {p}");
                // ...onto the paper's 80-160 ms scale.
                assert!(s < 170.0, "{op}/{stack:?} = {s}");
            }
        }
        // Relative stack differences shrink (percentage-wise) under X.509.
        let rel = |rows: &[HelloRow], op: &str| {
            let a = cell(rows, op, Stack::Wsrf, Deployment::Distributed).unwrap();
            let b = cell(rows, op, Stack::Transfer, Deployment::Distributed).unwrap();
            (a - b).abs() / a.max(b)
        };
        assert!(rel(&signed, "Set") < rel(&plain, "Set"));
    }

    #[test]
    fn figure3_https_is_cheap_thanks_to_session_cache() {
        let plain = quick(SecurityPolicy::None);
        let https = quick(SecurityPolicy::Https);
        let signed = quick(SecurityPolicy::X509Sign);
        for op in ["Get", "Set"] {
            let p = cell(&plain, op, Stack::Wsrf, Deployment::Distributed).unwrap();
            let h = cell(&https, op, Stack::Wsrf, Deployment::Distributed).unwrap();
            let s = cell(&signed, op, Stack::Wsrf, Deployment::Distributed).unwrap();
            // HTTPS adds a modest overhead over plain...
            assert!(h > p, "{op}");
            assert!(h < p + 10.0, "{op}: https {h} vs plain {p}");
            // ...and is far below X.509 ("HTTPS performance is much faster").
            assert!(h * 2.0 < s, "{op}: https {h} vs signed {s}");
        }
    }
}
