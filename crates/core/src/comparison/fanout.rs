//! The fan-out experiments backing `BENCH_fanout.json` — this PR's perf
//! claims, measured instead of asserted:
//!
//! * **Trie vs naive** — resolving a topic path through the precompiled
//!   [`ogsa_fanout::TopicTrie`] versus the retained naive matcher (one
//!   [`CompiledTopic::matches`] scan per subscription), wall-clock, across
//!   subscriber counts (1k → 1M) and topic shapes. The two must agree on
//!   every probe; the trie must be ≥ 10× at 100k subscribers and above.
//! * **Shard scaling** — the makespan model from the PR-3 xmldb sharding:
//!   notifications/sec = delivered notes ÷ the busiest shard's charged
//!   time. The per-operation *cost* is shard-count invariant; only the
//!   attribution spreads, so throughput must scale with the shard count.
//! * **Stack fan-out** — the delivery core configured per stack's honest
//!   rules: WSN routes by topic root across 8 shards and coalesces batches
//!   into `<wsnt:Notify>` envelopes; WS-Eventing has no topics (every
//!   subscription on the wildcard shard) and no batch container (one
//!   envelope per event).
//! * **Batched determinism** — a chaotic batched WSN run must replay
//!   byte-identically under the same seed, and the PR-2 broker
//!   amplification ordinals must survive the recosted delivery path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ogsa_container::{Container, Operation, OperationContext, Testbed, WebService};
use ogsa_fanout::{
    CompiledTopic, Deliverer, DelivererConfig, DeliveryPlan, FanoutCosts, ShardedTable, Sink,
    Subscriber, TopicTrie,
};
use ogsa_security::SecurityPolicy;
use ogsa_sim::{CostModel, SimDuration, VirtualClock};
use ogsa_telemetry::Telemetry;
use ogsa_transport::{FaultPlan, Network, RetryPolicy};
use ogsa_xml::Element;

/// Distinct topic roots the generators cycle through (also bounds how far
/// shard routing can spread work).
const ROOTS: usize = 256;

/// Topic shapes swept by the trie experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopicShape {
    /// Simple-dialect roots: `root{k}` matching everything beneath.
    Flat,
    /// Concrete four-segment paths: exact-match only.
    Deep,
    /// Full-dialect patterns with `*` and `//` wildcards.
    Wildcard,
}

impl TopicShape {
    pub fn all() -> [TopicShape; 3] {
        [TopicShape::Flat, TopicShape::Deep, TopicShape::Wildcard]
    }

    pub fn key(self) -> &'static str {
        match self {
            TopicShape::Flat => "flat",
            TopicShape::Deep => "deep",
            TopicShape::Wildcard => "wildcard",
        }
    }

    /// The `i`-th subscription expression of this shape.
    fn topic(self, i: usize) -> CompiledTopic {
        let r = i % ROOTS;
        match self {
            TopicShape::Flat => CompiledTopic::simple(&format!("root{r}")),
            TopicShape::Deep => {
                CompiledTopic::concrete(&format!("jobs{r}/vo{}/q{}/t{}", i % 7, i % 5, i % 11))
            }
            TopicShape::Wildcard => match i % 4 {
                0 => CompiledTopic::full(&format!("jobs{r}/*/q{}/t{}", i % 5, i % 11)),
                1 => CompiledTopic::full(&format!("jobs{r}//t{}", i % 11)),
                2 => CompiledTopic::full(&format!("root{r}/*")),
                _ => CompiledTopic::full(&format!("//exited{}", i % 13)),
            },
        }
    }

    /// The `j`-th probe path for this shape (drawn from the same space as
    /// the expressions, so probes actually hit).
    fn probe(self, j: usize) -> Vec<String> {
        let r = j % ROOTS;
        match self {
            TopicShape::Flat => vec![format!("root{r}"), format!("x{}", j % 9)],
            TopicShape::Deep | TopicShape::Wildcard => vec![
                format!("jobs{r}"),
                format!("vo{}", j % 7),
                format!("q{}", j % 5),
                format!("t{}", j % 11),
            ],
        }
    }
}

/// One (size, shape) cell of the trie-vs-naive sweep.
#[derive(Debug, Clone)]
pub struct TrieRow {
    pub subscribers: usize,
    pub shape: TopicShape,
    pub probes: usize,
    /// Total matches the probe set produced (sanity: > 0).
    pub matches: u64,
    pub trie_wall_us: f64,
    pub naive_wall_us: f64,
    /// Did the trie and the naive matcher agree on every probe's id set?
    pub agree: bool,
}

impl TrieRow {
    pub fn speedup(&self) -> f64 {
        self.naive_wall_us / self.trie_wall_us.max(1e-3)
    }
}

/// Wall-clock the trie against the naive matcher for every (size, shape).
pub fn trie_vs_naive(sizes: &[usize]) -> Vec<TrieRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        // Fewer probes at larger sizes keeps the naive arm's total work
        // (n × probes) bounded without starving the timer at small n.
        let probes = (2_000_000 / n.max(1)).clamp(16, 1024);
        for shape in TopicShape::all() {
            rows.push(trie_cell(n, shape, probes));
        }
    }
    rows
}

fn trie_cell(n: usize, shape: TopicShape, probes: usize) -> TrieRow {
    let exprs: Vec<CompiledTopic> = (0..n).map(|i| shape.topic(i)).collect();
    let mut trie = TopicTrie::new();
    for (reg, t) in exprs.iter().enumerate() {
        trie.insert(reg as u64, t);
    }
    let paths: Vec<Vec<String>> = (0..probes).map(|j| shape.probe(j)).collect();
    let path_refs: Vec<Vec<&str>> = paths
        .iter()
        .map(|p| p.iter().map(String::as_str).collect())
        .collect();

    // Agreement first (untimed): identical id sets on every probe.
    let mut agree = true;
    let mut out = Vec::new();
    for p in &path_refs {
        out.clear();
        trie.resolve(p, &mut out);
        let mut naive: Vec<u64> = exprs
            .iter()
            .enumerate()
            .filter(|(_, t)| t.matches(p))
            .map(|(reg, _)| reg as u64)
            .collect();
        naive.sort_unstable();
        agree &= out == naive;
    }

    let t0 = Instant::now();
    let mut matches = 0u64;
    for p in &path_refs {
        out.clear();
        trie.resolve(p, &mut out);
        matches += out.len() as u64;
    }
    let trie_wall_us = t0.elapsed().as_secs_f64() * 1e6;

    let t1 = Instant::now();
    let mut naive_matches = 0u64;
    for p in &path_refs {
        naive_matches += exprs.iter().filter(|t| t.matches(p)).count() as u64;
    }
    let naive_wall_us = t1.elapsed().as_secs_f64() * 1e6;

    TrieRow {
        subscribers: n,
        shape,
        probes,
        matches,
        trie_wall_us: trie_wall_us.max(1e-3),
        naive_wall_us: naive_wall_us.max(1e-3),
        agree: agree && matches == naive_matches,
    }
}

/// A minimal subscriber for the table-level experiments.
#[derive(Clone)]
pub struct BenchSub {
    id: String,
    endpoint: ogsa_addressing::EndpointReference,
}

impl BenchSub {
    fn new(i: usize) -> Self {
        BenchSub {
            id: format!("s{i:07}"),
            endpoint: ogsa_addressing::EndpointReference::service("http://consumer/inbox"),
        }
    }
}

impl Subscriber for BenchSub {
    fn sub_id(&self) -> &str {
        &self.id
    }

    fn endpoint(&self) -> &ogsa_addressing::EndpointReference {
        &self.endpoint
    }
}

/// One shard count of the makespan sweep.
#[derive(Debug, Clone)]
pub struct ShardRow {
    pub shards: usize,
    pub subscribers: usize,
    pub events: usize,
    /// Notifications fanned out across all events.
    pub notes: u64,
    /// The busiest shard's charged delivery time (inserts excluded).
    pub max_busy_us: u64,
    pub contentions: u64,
    /// Makespan throughput: notes ÷ max shard busy.
    pub rps: f64,
}

/// Sweep shard counts at a fixed population: same events, same costs, same
/// notes — only the busy-time attribution (and therefore the modelled
/// parallel makespan) may change.
pub fn shard_sweep(subscribers: usize, shard_counts: &[usize], events: usize) -> Vec<ShardRow> {
    shard_counts
        .iter()
        .map(|&k| shard_cell(subscribers, k, events))
        .collect()
}

fn shard_cell(subscribers: usize, shards: usize, events: usize) -> ShardRow {
    let table = ShardedTable::new(
        shards,
        VirtualClock::new(),
        FanoutCosts::from_model(&CostModel::calibrated_2005()),
        Telemetry::disabled(),
        "wsn",
    );
    for i in 0..subscribers {
        table.insert(BenchSub::new(i), TopicShape::Flat.topic(i), false);
    }
    // Charge only the delivery phase against the makespan: snapshot the
    // insert-phase busy time and subtract it per shard.
    let before = table.stats().busy_us();
    let mut notes = 0u64;
    for e in 0..events {
        let root = format!("root{}", e % ROOTS);
        notes += table.resolve(&[root.as_str(), "x"]).len() as u64;
    }
    let after = table.stats().busy_us();
    let max_busy_us = after
        .iter()
        .zip(&before)
        .map(|(a, b)| a - b)
        .max()
        .unwrap_or(0);
    ShardRow {
        shards,
        subscribers,
        events,
        notes,
        max_busy_us,
        contentions: table.stats().contentions(),
        rps: notes as f64 / (max_busy_us as f64 / 1e6).max(1e-9),
    }
}

/// One stack's end-to-end delivery-core run.
#[derive(Debug, Clone)]
pub struct StackRow {
    pub stack: &'static str,
    pub subscribers: usize,
    pub events: usize,
    /// Notifications delivered (per subscriber per event).
    pub deliveries: u64,
    /// Wire envelopes used — WSN folds batches, WS-Eventing honestly
    /// cannot, so its envelope count equals its delivery count.
    pub envelopes: u64,
    /// Virtual time the delivery core charged.
    pub virtual_us: u64,
    pub wall_ms: f64,
}

/// Run both stacks' delivery cores over the same event load, each under
/// its own honest configuration.
pub fn stack_fanout(sizes: &[usize], events: usize) -> Vec<StackRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        rows.push(stack_cell("wsn", n, events));
        rows.push(stack_cell("eventing", n, events));
    }
    rows
}

fn stack_cell(stack: &'static str, subscribers: usize, events: usize) -> StackRow {
    let clock = VirtualClock::new();
    let model = CostModel::calibrated_2005();
    let wsn = stack == "wsn";
    let table: ShardedTable<BenchSub> = ShardedTable::new(
        if wsn { 8 } else { 1 },
        clock.clone(),
        FanoutCosts::from_model(&model),
        Telemetry::disabled(),
        stack,
    );
    for i in 0..subscribers {
        let topic = if wsn {
            TopicShape::Flat.topic(i)
        } else {
            CompiledTopic::match_all()
        };
        table.insert(BenchSub::new(i), topic, false);
    }

    let deliveries = Arc::new(AtomicU64::new(0));
    let envelopes = Arc::new(AtomicU64::new(0));
    let (d, e) = (deliveries.clone(), envelopes.clone());
    let sink: Sink<BenchSub> = Arc::new(move |_sub, bodies: Vec<Element>| {
        d.fetch_add(bodies.len() as u64, Ordering::Relaxed);
        // WSN: one <wsnt:Notify> envelope per drain. WS-Eventing: no batch
        // container in the spec, one wire message per event.
        e.fetch_add(if wsn { 1 } else { bodies.len() as u64 }, Ordering::Relaxed);
    });
    let net = Network::new(clock.clone(), Arc::new(model));
    let deliverer = Deliverer::new(net, "producer", table.stats().clone(), stack, sink);
    deliverer.set_config(DelivererConfig {
        plan: DeliveryPlan::Coalesce { batch_max: 16 },
        outbox_capacity: 1 << 20,
    });

    let start_virtual = clock.now();
    let wall = Instant::now();
    // Events cycle a smaller root set than the subscriptions do, so each
    // subscriber sees repeated events and coalescing has something to fold.
    let event_roots = (events / 4).clamp(1, ROOTS / 8);
    for ev in 0..events {
        let root = format!("root{}", ev % event_roots);
        let path: &[&str] = if wsn {
            &[root.as_str(), "x"]
        } else {
            &["event"]
        };
        let shard = if wsn {
            table.shard_of(&root)
        } else {
            table.stats().shards() - 1
        };
        for sub in table.resolve(path) {
            deliverer.enqueue(&sub, shard, Element::new("E"));
        }
    }
    deliverer.flush();
    StackRow {
        stack,
        subscribers,
        events,
        deliveries: deliveries.load(Ordering::Relaxed),
        envelopes: envelopes.load(Ordering::Relaxed),
        virtual_us: clock.now().since(start_virtual).as_micros(),
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
    }
}

/// Minimal WSN publisher service: `Subscribe` goes to the producer's store.
struct Publisher {
    producer: ogsa_wsn::NotificationProducer,
}

impl WebService for Publisher {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, ogsa_soap::Fault> {
        match op.action_name() {
            "Subscribe" => {
                let req = ogsa_wsn::SubscribeRequest::from_element(&op.body)
                    .ok_or_else(|| ogsa_soap::Fault::client("bad subscribe"))?;
                let epr = self.producer.store().subscribe(ctx, &req)?;
                Ok(ogsa_wsn::SubscribeRequest::response(&epr))
            }
            _ => Err(ogsa_soap::Fault::client("unknown")),
        }
    }
}

fn deploy_publisher(
    container: &Container,
) -> (
    ogsa_addressing::EndpointReference,
    ogsa_wsn::NotificationProducer,
) {
    let (_m, store) =
        ogsa_wsn::SubscriptionManagerService::deploy(container, "/services/Pub/manager");
    let producer = ogsa_wsn::NotificationProducer::new(store, container.service_agent());
    let epr = container.deploy(
        "/services/Pub",
        Arc::new(Publisher {
            producer: producer.clone(),
        }),
    );
    (epr, producer)
}

/// A chaotic batched WSN notification run under full tracing — the span
/// dump must be a pure function of the seed even with coalescing on.
pub fn batched_span_dump(seed: u64) -> String {
    let tb = Testbed::calibrated();
    tb.network().set_synchronous_oneways(true);
    let container = tb.container("host-a", SecurityPolicy::None);
    let (publisher, producer) = deploy_publisher(&container);
    let producer = producer
        .with_redelivery(RetryPolicy::default_redelivery(seed).with_max_attempts(6))
        .with_delivery(DelivererConfig {
            plan: DeliveryPlan::Coalesce { batch_max: 3 },
            outbox_capacity: 64,
        });
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let consumer = ogsa_wsn::NotificationConsumer::listen(&client, "/c");
    client
        .invoke(
            &publisher,
            ogsa_wsn::base::actions::SUBSCRIBE,
            ogsa_wsn::SubscribeRequest::new(
                consumer.epr().clone(),
                ogsa_wsn::TopicExpression::simple("t"),
            )
            .to_element(),
        )
        .expect("subscribe");

    // Arm the chaos only after the subscription round-trip: the faults are
    // aimed at the delivery plane, not at the control messages that set the
    // experiment up.
    tb.network().set_fault_plan(
        FaultPlan::seeded(seed)
            .with_drops(0.15)
            .with_delays(0.2, SimDuration::from_millis(5.0))
            .with_duplicates(0.1),
    );

    let topic = ogsa_wsn::TopicPath::parse("t/x").expect("static");
    for v in 1..=6 {
        producer.notify(&topic, Element::text_element("NewValue", v.to_string()));
    }
    producer.deliverer().flush();
    assert!(tb.network().quiesce(std::time::Duration::from_secs(10)));
    let _ = consumer.drain();
    ogsa_telemetry::export::spans_to_jsonl(&tb.telemetry().take_spans())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_agrees_with_naive_on_every_shape() {
        for row in trie_vs_naive(&[500]) {
            assert!(row.agree, "{row:?}");
            assert!(row.matches > 0, "probes must hit: {row:?}");
        }
    }

    #[test]
    fn shard_sweep_is_note_invariant_and_spreads_busy_time() {
        let rows = shard_sweep(2_000, &[1, 8], 32);
        assert_eq!(
            rows[0].notes, rows[1].notes,
            "shards must not change WHAT is delivered"
        );
        assert!(rows[0].notes > 0);
        assert!(
            rows[1].max_busy_us < rows[0].max_busy_us,
            "8 shards must spread the charged time: {rows:?}"
        );
        assert!(rows[1].rps > rows[0].rps);
    }

    #[test]
    fn stacks_fold_envelopes_honestly() {
        let rows = stack_fanout(&[400], 32);
        let wsn = rows.iter().find(|r| r.stack == "wsn").unwrap();
        let ev = rows.iter().find(|r| r.stack == "eventing").unwrap();
        assert!(wsn.envelopes < wsn.deliveries, "WSN coalesces: {wsn:?}");
        assert_eq!(
            ev.envelopes, ev.deliveries,
            "WS-Eventing cannot batch: {ev:?}"
        );
        assert!(ev.deliveries > 0);
    }

    #[test]
    fn batched_dump_is_seed_deterministic() {
        let a = batched_span_dump(7);
        assert!(!a.is_empty());
        assert_eq!(a, batched_span_dump(7));
    }
}
