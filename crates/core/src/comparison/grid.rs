//! The Grid-in-a-Box evaluation (§4.2.3): the data behind Figure 6.
//!
//! Six operations, measured over the full VO deployment with X.509-signed
//! messages on every hop — the configuration where "the greatest factor
//! influencing the performance of individual operations is the number of
//! web service outcalls (and message signings) triggered on the server".

use std::time::Duration;

use ogsa_container::Testbed;
use ogsa_gridbox::{GridScenario, TransferGrid, WsrfGrid};
use ogsa_security::SecurityPolicy;
use ogsa_sim::SimDuration;

use super::Stack;

/// The six measured operations, in the paper's order.
pub const OPERATIONS: [&str; 6] = [
    "Get Available Resource",
    "Make Reservation",
    "Upload File",
    "Instantiate Job",
    "Delete File",
    "Unreserve Resource",
];

const WAIT: Duration = Duration::from_secs(5);
const USER: &str = "CN=alice,O=UVA-VO";

/// One bar of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    pub operation: &'static str,
    pub stack: Stack,
    /// Mean virtual milliseconds.
    pub ms: f64,
}

/// Configuration for the Figure 6 run.
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    pub policy: SecurityPolicy,
    pub iterations: usize,
    /// Size of the staged input file.
    pub file_bytes: usize,
    /// Scripted runtime of the submitted job.
    pub job_runtime: SimDuration,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            policy: SecurityPolicy::X509Sign,
            iterations: 8,
            file_bytes: 24 * 1024,
            job_runtime: SimDuration::from_millis(2000.0),
        }
    }
}

/// Run Figure 6 for both stacks.
pub fn run(config: GridConfig) -> Vec<GridRow> {
    let mut rows = Vec::new();
    for stack in Stack::all() {
        rows.extend(run_one(config, stack));
    }
    rows
}

fn run_one(config: GridConfig, stack: Stack) -> Vec<GridRow> {
    let tb = Testbed::calibrated();
    let hosts = ["site-a", "site-b"];
    let apps = ["blast"];
    let users = [USER];

    // Deploy the VO, then run the full user flow `iterations` times,
    // timing each step against the virtual clock.
    enum Grid {
        Wsrf(WsrfGrid),
        Transfer(TransferGrid),
    }
    let grid = match stack {
        Stack::Wsrf => Grid::Wsrf(WsrfGrid::deploy(&tb, config.policy, &hosts, &apps, &users)),
        Stack::Transfer => Grid::Transfer(TransferGrid::deploy(
            &tb,
            config.policy,
            &hosts,
            &apps,
            &users,
        )),
    };

    let clock = tb.clock().clone();
    let n = config.iterations.max(1);
    let mut totals = [0.0f64; 6];

    for iter in 0..n + 1 {
        let agent = tb.client("client-1", USER, config.policy);
        let mut scenario: Box<dyn GridScenario> = match &grid {
            Grid::Wsrf(g) => Box::new(g.scenario(agent)),
            Grid::Transfer(g) => Box::new(g.scenario(agent)),
        };

        // Iteration 0 is warm-up (connection + TLS establishment).
        let warmup = iter == 0;
        macro_rules! step {
            ($slot:expr, $body:expr) => {{
                let t = clock.now();
                $body;
                if !warmup {
                    totals[$slot] += clock.now().since(t).as_millis();
                }
            }};
        }

        step!(
            0,
            scenario.get_available_resource("blast").expect("discover")
        );
        step!(1, scenario.make_reservation().expect("reserve"));
        step!(
            2,
            scenario
                .upload_file("input.dat", config.file_bytes)
                .expect("upload")
        );
        step!(
            3,
            scenario
                .instantiate_job(config.job_runtime)
                .expect("instantiate")
        );
        // Drive the job to completion between the measured steps (not a
        // Figure 6 operation).
        scenario.finish_job(WAIT).expect("finish job");
        step!(4, scenario.delete_file("input.dat").expect("delete"));
        // Unreserve: automatic (free) on WSRF, one Put on WS-Transfer.
        step!(5, scenario.unreserve_resource().expect("unreserve"));
        if scenario.unreserve_is_automatic() {
            totals[5] = 0.0;
        }
    }

    OPERATIONS
        .iter()
        .enumerate()
        .map(|(i, operation)| GridRow {
            operation,
            stack,
            ms: totals[i] / n as f64,
        })
        .collect()
}

/// Fetch one cell.
pub fn cell(rows: &[GridRow], op: &str, stack: Stack) -> Option<f64> {
    rows.iter()
        .find(|r| r.operation == op && r.stack == stack)
        .map(|r| r.ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<GridRow> {
        run(GridConfig {
            iterations: 2,
            ..GridConfig::default()
        })
    }

    #[test]
    fn figure6_shape_holds() {
        let rows = quick();
        assert_eq!(rows.len(), 12);

        // "the WSRF implementation requires several more outcalls to
        // Instantiate a Job than the WS-Transfer version."
        let wsrf_job = cell(&rows, "Instantiate Job", Stack::Wsrf).unwrap();
        let wxf_job = cell(&rows, "Instantiate Job", Stack::Transfer).unwrap();
        assert!(
            wsrf_job > 1.3 * wxf_job,
            "WSRF instantiate {wsrf_job} vs transfer {wxf_job}"
        );

        // "Un-reserving a resource also happens automatically in the WSRF
        // version (so no time is reported)."
        assert_eq!(cell(&rows, "Unreserve Resource", Stack::Wsrf), Some(0.0));
        assert!(cell(&rows, "Unreserve Resource", Stack::Transfer).unwrap() > 10.0);

        // "The Delete File operation involves a single call in both
        // implementations ... the results of these operations are
        // comparable." Within 2× of each other.
        let wsrf_del = cell(&rows, "Delete File", Stack::Wsrf).unwrap();
        let wxf_del = cell(&rows, "Delete File", Stack::Transfer).unwrap();
        assert!(wsrf_del < 2.0 * wxf_del && wxf_del < 2.0 * wsrf_del);

        // "Upload File requires a pair of calls in both" — comparable too.
        let wsrf_up = cell(&rows, "Upload File", Stack::Wsrf).unwrap();
        let wxf_up = cell(&rows, "Upload File", Stack::Transfer).unwrap();
        assert!(wsrf_up < 2.0 * wxf_up && wxf_up < 2.0 * wsrf_up);

        // Everything lands on the paper's 0-1200 ms scale, with
        // InstantiateJob the most expensive operation.
        for r in &rows {
            assert!(r.ms < 1200.0, "{} {:?} = {}", r.operation, r.stack, r.ms);
        }
        for stack in Stack::all() {
            let job = cell(&rows, "Instantiate Job", stack).unwrap();
            for op in OPERATIONS.iter().filter(|o| **o != "Instantiate Job") {
                let other = cell(&rows, op, stack).unwrap();
                assert!(job > other, "{stack:?}: job {job} vs {op} {other}");
            }
        }
    }
}
