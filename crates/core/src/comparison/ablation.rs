//! Mechanism experiments: the design choices the paper credits for its
//! performance results, each toggleable in isolation.

use std::sync::Arc;
use std::time::Duration;

use ogsa_addressing::EndpointReference;
use ogsa_container::{Container, Testbed};
use ogsa_counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_security::SecurityPolicy;
use ogsa_wsn::base::{actions, SubscribeRequest};
use ogsa_wsn::manager::{SubscriptionManagerService, SubscriptionProxy};
use ogsa_wsn::{
    BrokerService, NotificationConsumer, NotificationProducer, TopicExpression, TopicPath,
};
use ogsa_xml::Element;

/// One ablation result: the same measurement with a mechanism on and off.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    pub name: &'static str,
    pub with_ms: f64,
    pub without_ms: f64,
}

impl Ablation {
    /// Speedup the mechanism provides.
    pub fn speedup(&self) -> f64 {
        if self.with_ms == 0.0 {
            f64::INFINITY
        } else {
            self.without_ms / self.with_ms
        }
    }
}

const WAIT: Duration = Duration::from_secs(5);

/// WSRF.NET's write-through resource cache: Set latency with and without.
/// "The WSRF.NET implementation through use of its resource cache is able
/// to avoid this extra database read and thus performs faster for set
/// operations" (§4.1.3).
pub fn resource_cache(iterations: usize) -> Ablation {
    let measure = |enabled: bool| -> f64 {
        let tb = Testbed::calibrated();
        let container = tb.container("host-a", SecurityPolicy::None);
        let counter = WsrfCounter::deploy_with_cache(&container, enabled);
        let api = counter.client(tb.client("host-b", "CN=a", SecurityPolicy::None));
        let c = api.create().unwrap();
        api.set(&c, 0).unwrap(); // warm
        let t = tb.clock().now();
        for i in 0..iterations {
            api.set(&c, i as i64).unwrap();
        }
        tb.clock().now().since(t).as_millis() / iterations as f64
    };
    Ablation {
        name: "WSRF.NET write-through resource cache (Set)",
        with_ms: measure(true),
        without_ms: measure(false),
    }
}

/// The HTTPS session/socket cache: Get-over-HTTPS latency with and without.
/// "Due to socket caching, HTTPS performance is much faster" (§4.1.3).
pub fn tls_session_cache(iterations: usize) -> Ablation {
    let measure = |enabled: bool| -> f64 {
        let tb = Testbed::calibrated();
        tb.network().set_tls_session_cache(enabled);
        let container = tb.container("host-a", SecurityPolicy::Https);
        let counter = TransferCounter::deploy(&container);
        let api = counter.client(tb.client("host-b", "CN=a", SecurityPolicy::Https));
        let c = api.create().unwrap();
        api.get(&c).unwrap(); // warm
        if !enabled {
            // Without the cache every request renegotiates; model a fresh
            // connection per request as the paper's non-cached baseline.
            tb.network().reset_connections();
        }
        let t = tb.clock().now();
        for _ in 0..iterations {
            if !enabled {
                tb.network().reset_connections();
            }
            api.get(&c).unwrap();
        }
        tb.clock().now().since(t).as_millis() / iterations as f64
    };
    Ablation {
        name: "HTTPS session/socket cache (Get over HTTPS)",
        with_ms: measure(true),
        without_ms: measure(false),
    }
}

/// Notification transport: WS-Eventing's TCP push vs WS-Notification's
/// HTTP delivery, measured as the paper's Notify metric on each stack.
pub fn notify_transport(iterations: usize) -> Ablation {
    let measure = |tcp: bool| -> f64 {
        let tb = Testbed::calibrated();
        let container = tb.container("host-a", SecurityPolicy::None);
        let api: Box<dyn CounterApi> = if tcp {
            Box::new(TransferCounter::deploy(&container).client(tb.client(
                "host-b",
                "CN=a",
                SecurityPolicy::None,
            )))
        } else {
            Box::new(WsrfCounter::deploy(&container).client(tb.client(
                "host-b",
                "CN=a",
                SecurityPolicy::None,
            )))
        };
        let c = api.create().unwrap();
        let waiter = api.subscribe(&c).unwrap();
        api.set(&c, 0).unwrap();
        waiter.wait(WAIT).unwrap(); // warm
        let t = tb.clock().now();
        for i in 0..iterations {
            api.set(&c, i as i64).unwrap();
            waiter.wait(WAIT).unwrap();
        }
        tb.clock().now().since(t).as_millis() / iterations as f64
    };
    Ablation {
        name: "notification transport: TCP push vs HTTP delivery (Notify)",
        with_ms: measure(true),
        without_ms: measure(false),
    }
}

/// A minimal publisher service — a notification producer plus a Subscribe
/// operation — shared by the broker experiments.
struct Publisher {
    producer: NotificationProducer,
}

impl ogsa_container::WebService for Publisher {
    fn handle(
        &self,
        op: &ogsa_container::Operation,
        ctx: &ogsa_container::OperationContext,
    ) -> Result<Element, ogsa_soap::Fault> {
        match op.action_name() {
            "Subscribe" => {
                let req = SubscribeRequest::from_element(&op.body)
                    .ok_or_else(|| ogsa_soap::Fault::client("bad subscribe"))?;
                let epr = self.producer.store().subscribe(ctx, &req)?;
                Ok(SubscribeRequest::response(&epr))
            }
            _ => Err(ogsa_soap::Fault::client("unknown")),
        }
    }
}

fn deploy_publisher(container: &Container) -> (EndpointReference, NotificationProducer) {
    let (_m, store) = SubscriptionManagerService::deploy(container, "/services/Pub/manager");
    let producer = NotificationProducer::new(store, container.service_agent());
    let epr = container.deploy(
        "/services/Pub",
        Arc::new(Publisher {
            producer: producer.clone(),
        }),
    );
    (epr, producer)
}

/// Demand-based brokered publishing vs direct notification: messages on the
/// wire for one registration + subscription + event + teardown. Reproduces
/// the §3.1 estimate of "an order of magnitude at a minimum" with a handful
/// of consumers.
pub fn broker_amplification(consumers: usize) -> BrokerAmplification {
    let topic = TopicPath::parse("counter/valueChanged").expect("static");

    // Direct: N consumers subscribe straight to the publisher; one emit.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (pub_epr, producer) = deploy_publisher(&container);
    let client = tb.client("client-1", "CN=a", SecurityPolicy::None);
    let before = tb.network().stats().messages();
    let mut subs = Vec::new();
    for i in 0..consumers {
        let consumer = NotificationConsumer::listen(&client, &format!("/c{i}"));
        let req = SubscribeRequest::new(
            consumer.epr().clone(),
            TopicExpression::concrete("counter/valueChanged"),
        );
        let resp = client
            .invoke(&pub_epr, actions::SUBSCRIBE, req.to_element())
            .unwrap();
        subs.push((consumer, SubscribeRequest::parse_response(&resp).unwrap()));
    }
    producer.notify(&topic, Element::text_element("NewValue", "1"));
    for (c, _) in &subs {
        c.recv_timeout(WAIT).unwrap();
    }
    for (_, epr) in &subs {
        SubscriptionProxy::new(&client).unsubscribe(epr).unwrap();
    }
    let direct = tb.network().stats().messages() - before;

    // Brokered, demand-based: same consumers via a broker.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (pub_epr, producer) = deploy_publisher(&container);
    let broker = BrokerService::deploy(&container, "/services/Broker");
    let client = tb.client("client-1", "CN=a", SecurityPolicy::None);
    let before = tb.network().stats().messages();
    client
        .invoke(
            broker.epr(),
            "urn:wsbn/RegisterPublisher",
            BrokerService::register_request(&pub_epr, &topic, true),
        )
        .unwrap();
    let mut subs = Vec::new();
    for i in 0..consumers {
        let consumer = NotificationConsumer::listen(&client, &format!("/bc{i}"));
        let req = SubscribeRequest::new(
            consumer.epr().clone(),
            TopicExpression::concrete("counter/valueChanged"),
        );
        let resp = client
            .invoke(broker.epr(), actions::SUBSCRIBE, req.to_element())
            .unwrap();
        subs.push((consumer, SubscribeRequest::parse_response(&resp).unwrap()));
    }
    producer.notify(&topic, Element::text_element("NewValue", "1"));
    for (c, _) in &subs {
        c.recv_timeout(WAIT).unwrap();
    }
    for (_, epr) in &subs {
        SubscriptionProxy::new(&client).unsubscribe(epr).unwrap();
        broker.recheck_demand();
    }
    let brokered = tb.network().stats().messages() - before;

    BrokerAmplification {
        consumers,
        direct_messages: direct,
        brokered_messages: brokered,
    }
}

/// Message counts for the broker experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerAmplification {
    pub consumers: usize,
    pub direct_messages: u64,
    pub brokered_messages: u64,
}

impl BrokerAmplification {
    pub fn factor(&self) -> f64 {
        self.brokered_messages as f64 / self.direct_messages.max(1) as f64
    }
}

/// §3.1's sharper per-event estimate ("an order of magnitude at a
/// minimum"): messages on the wire per *delivered event* when consumer
/// interest lives only as long as one event — subscribe, receive,
/// unsubscribe, demand rechecked at each edge — versus a standing direct
/// subscription, where an event is exactly one message. Every lifecycle
/// edge costs a request/response pair, and each one flips the broker's
/// upstream subscription (a pause or resume outcall pair), so one
/// delivered event costs ~10 messages instead of 1.
pub fn demand_lifecycle(events: usize) -> DemandLifecycle {
    let topic = TopicPath::parse("counter/valueChanged").expect("static");
    let events = events.max(1);

    // Direct baseline: one standing subscriber; each event is one one-way.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (pub_epr, producer) = deploy_publisher(&container);
    let client = tb.client("client-1", "CN=a", SecurityPolicy::None);
    let consumer = NotificationConsumer::listen(&client, "/c0");
    let req = SubscribeRequest::new(
        consumer.epr().clone(),
        TopicExpression::concrete("counter/valueChanged"),
    );
    client
        .invoke(&pub_epr, actions::SUBSCRIBE, req.to_element())
        .unwrap();
    let before = tb.network().stats().messages();
    for i in 0..events {
        producer.notify(&topic, Element::text_element("NewValue", i.to_string()));
        consumer.recv_timeout(WAIT).unwrap();
    }
    let direct = tb.network().stats().messages() - before;

    // Demand-based brokered lifecycle: interest appears and disappears
    // around every event, so the broker resumes and pauses its upstream
    // subscription each time.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (pub_epr, producer) = deploy_publisher(&container);
    let broker = BrokerService::deploy(&container, "/services/Broker");
    let client = tb.client("client-1", "CN=a", SecurityPolicy::None);
    client
        .invoke(
            broker.epr(),
            "urn:wsbn/RegisterPublisher",
            BrokerService::register_request(&pub_epr, &topic, true),
        )
        .unwrap();
    // Settle: no demand yet, so the upstream subscription starts paused.
    broker.recheck_demand();
    let before = tb.network().stats().messages();
    for i in 0..events {
        let consumer = NotificationConsumer::listen(&client, &format!("/bc{i}"));
        let req = SubscribeRequest::new(
            consumer.epr().clone(),
            TopicExpression::concrete("counter/valueChanged"),
        );
        let resp = client
            .invoke(broker.epr(), actions::SUBSCRIBE, req.to_element())
            .unwrap();
        let sub = SubscribeRequest::parse_response(&resp).unwrap();
        producer.notify(&topic, Element::text_element("NewValue", i.to_string()));
        consumer.recv_timeout(WAIT).unwrap();
        SubscriptionProxy::new(&client).unsubscribe(&sub).unwrap();
        broker.recheck_demand();
    }
    let brokered = tb.network().stats().messages() - before;

    DemandLifecycle {
        events,
        direct_messages: direct,
        brokered_messages: brokered,
    }
}

/// Message counts for the per-event demand-lifecycle experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandLifecycle {
    pub events: usize,
    pub direct_messages: u64,
    pub brokered_messages: u64,
}

impl DemandLifecycle {
    /// Wire-message amplification per delivered event.
    pub fn factor(&self) -> f64 {
        self.brokered_messages as f64 / self.direct_messages.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ablation_shows_the_set_gap() {
        let a = resource_cache(4);
        assert!(
            a.with_ms < a.without_ms,
            "cache should make Set faster: {a:?}"
        );
    }

    #[test]
    fn tls_cache_ablation_is_dramatic() {
        let a = tls_session_cache(4);
        assert!(a.speedup() > 1.5, "{a:?}");
    }

    #[test]
    fn notify_transport_gap() {
        let a = notify_transport(4);
        assert!(a.with_ms < a.without_ms, "{a:?}");
    }

    #[test]
    fn demand_lifecycle_is_an_order_of_magnitude() {
        let d = demand_lifecycle(3);
        assert!(
            d.factor() >= 8.0,
            "per-event amplification should be ~10x: {d:?}"
        );
    }

    #[test]
    fn broker_amplifies_messages() {
        let b = broker_amplification(3);
        assert!(b.brokered_messages > b.direct_messages, "{b:?}");
        assert!(b.factor() > 1.5, "{b:?}");
    }
}
