//! Where the milliseconds go: per-operation component breakdowns derived
//! from causal traces.
//!
//! The paper *explains* each bar of Figures 2–6 in prose — "creating a
//! resource is dominated by the Xindice insert", "under X.509 the signing
//! costs dwarf the stack differences", "WS-Eventing's Notify advantage is
//! purely the TCP vs HTTP delivery path". Here those explanations become
//! data: each measured operation is decomposed into per-kind *self time*
//! (db / security / wire / soap / dispatch / ...) folded out of the span
//! forest, alongside the wire-message count.
//!
//! Runs use the network's synchronous-delivery mode so one-way deliveries
//! happen inline on the measuring thread: every span lands on the shared
//! virtual clock in a serialized order and the whole run — spans included —
//! is deterministic.

use std::collections::BTreeMap;
use std::time::Duration;

use ogsa_container::Testbed;
use ogsa_counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_gridbox::{GridScenario, TransferGrid, WsrfGrid};
use ogsa_telemetry::analysis::self_time_breakdown;
use ogsa_telemetry::{SpanRecord, Telemetry};

use super::ablation::DemandLifecycle;
use super::grid::GridConfig;
use super::hello::HelloConfig;
use super::Stack;

/// Wall-clock safety net for notifications; in synchronous-delivery mode
/// receipt has already happened by the time we wait.
const WAIT: Duration = Duration::from_secs(5);
const USER: &str = "CN=alice,O=UVA-VO";

/// One operation's decomposed cost on one stack.
#[derive(Debug, Clone, PartialEq)]
pub struct OpBreakdown {
    pub operation: &'static str,
    pub stack: Stack,
    /// Mean virtual milliseconds per iteration (client-observed).
    pub total_ms: f64,
    /// Mean self time per span kind ("db", "security", "wire", "soap", ...).
    pub components_ms: BTreeMap<&'static str, f64>,
    /// Mean messages on the wire per iteration.
    pub messages: f64,
}

impl OpBreakdown {
    /// One component's mean self time (zero if absent).
    pub fn component_ms(&self, kind: &str) -> f64 {
        self.components_ms.get(kind).copied().unwrap_or(0.0)
    }

    /// The kind with the largest self time.
    pub fn dominant_component(&self) -> Option<&'static str> {
        self.components_ms
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, _)| *k)
    }
}

/// A breakdown run: the rows plus every span recorded inside the measured
/// windows, for Chrome-trace / JSONL export.
#[derive(Debug, Clone, Default)]
pub struct BreakdownRun {
    pub rows: Vec<OpBreakdown>,
    pub spans: Vec<SpanRecord>,
}

impl BreakdownRun {
    pub fn row(&self, op: &str, stack: Stack) -> Option<&OpBreakdown> {
        self.rows
            .iter()
            .find(|r| r.operation == op && r.stack == stack)
    }
}

/// Measure one window of `n` iterations: clear the span buffer, run `f`,
/// fold the recorded forest into per-kind means.
fn window(
    tb: &Testbed,
    tel: &Telemetry,
    operation: &'static str,
    stack: Stack,
    n: usize,
    f: impl FnOnce(),
) -> (OpBreakdown, Vec<SpanRecord>) {
    tel.clear_spans();
    let m0 = tb.network().stats().messages();
    let t0 = tb.clock().now();
    f();
    let total = tb.clock().now().since(t0);
    let messages = (tb.network().stats().messages() - m0) as f64 / n as f64;
    let spans = tel.take_spans();
    let fold = self_time_breakdown(&spans);
    let components_ms = fold
        .self_time
        .iter()
        .map(|(k, v)| (*k, v.as_millis() / n as f64))
        .collect();
    (
        OpBreakdown {
            operation,
            stack,
            total_ms: total.as_millis() / n as f64,
            components_ms,
            messages,
        },
        spans,
    )
}

/// Decompose the five counter operations on both stacks (distributed
/// deployment — the configuration where wire and security costs show).
pub fn counter_breakdown(config: HelloConfig) -> BreakdownRun {
    let mut run = BreakdownRun::default();
    for stack in Stack::all() {
        counter_one(config, stack, &mut run);
    }
    run
}

fn counter_one(config: HelloConfig, stack: Stack, out: &mut BreakdownRun) {
    let tb = Testbed::calibrated();
    tb.network().set_synchronous_oneways(true);
    let container = tb.container("host-a", config.policy);
    let agent = tb.client("host-b", USER, config.policy);
    let api: Box<dyn CounterApi> = match stack {
        Stack::Wsrf => Box::new(WsrfCounter::deploy(&container).client(agent)),
        Stack::Transfer => Box::new(TransferCounter::deploy(&container).client(agent)),
    };

    // Warm-up: connections, TLS sessions, one trip down each path.
    let warm = api.create().expect("warm create");
    api.get(&warm).expect("warm get");
    api.set(&warm, 1).expect("warm set");
    let warm_waiter = api.subscribe(&warm).expect("warm subscribe");
    api.set(&warm, 2).expect("warm notify set");
    warm_waiter.wait(WAIT).expect("warm notification");
    api.destroy(&warm).expect("warm destroy");

    let tel = tb.telemetry().clone();
    let n = config.iterations.max(1);
    let mut push = |(row, spans): (OpBreakdown, Vec<SpanRecord>)| {
        out.rows.push(row);
        out.spans.extend(spans);
    };

    let counter = api.create().expect("create");
    push(window(&tb, &tel, "Get", stack, n, || {
        for _ in 0..n {
            api.get(&counter).expect("get");
        }
    }));
    push(window(&tb, &tel, "Set", stack, n, || {
        for i in 0..n {
            api.set(&counter, i as i64).expect("set");
        }
    }));

    let waiter = api.subscribe(&counter).expect("subscribe");
    push(window(&tb, &tel, "Notify", stack, n, || {
        for i in 0..n {
            api.set(&counter, 1000 + i as i64).expect("notify set");
            waiter.wait(WAIT).expect("notification should arrive");
        }
    }));
    api.destroy(&counter).expect("cleanup");

    let mut made = Vec::new();
    push(window(&tb, &tel, "Create", stack, n, || {
        for _ in 0..n {
            made.push(api.create().expect("create"));
        }
    }));
    push(window(&tb, &tel, "Destroy", stack, n, || {
        for c in &made {
            api.destroy(c).expect("destroy");
        }
    }));
}

/// Decompose the six Grid-in-a-Box operations on both stacks.
pub fn grid_breakdown(config: GridConfig) -> BreakdownRun {
    let mut run = BreakdownRun::default();
    for stack in Stack::all() {
        grid_one(config, stack, &mut run);
    }
    run
}

fn grid_one(config: GridConfig, stack: Stack, out: &mut BreakdownRun) {
    use super::grid::OPERATIONS;

    let tb = Testbed::calibrated();
    tb.network().set_synchronous_oneways(true);
    let hosts = ["site-a", "site-b"];
    let apps = ["blast"];
    let users = [USER];

    enum Grid {
        Wsrf(WsrfGrid),
        Transfer(TransferGrid),
    }
    let grid = match stack {
        Stack::Wsrf => Grid::Wsrf(WsrfGrid::deploy(&tb, config.policy, &hosts, &apps, &users)),
        Stack::Transfer => Grid::Transfer(TransferGrid::deploy(
            &tb,
            config.policy,
            &hosts,
            &apps,
            &users,
        )),
    };

    let tel = tb.telemetry().clone();
    let n = config.iterations.max(1);
    let mut totals = [0.0f64; 6];
    let mut msgs = [0.0f64; 6];
    let mut comps: Vec<BTreeMap<&'static str, f64>> = vec![BTreeMap::new(); 6];
    let mut automatic_unreserve = false;

    for iter in 0..n + 1 {
        let agent = tb.client("client-1", USER, config.policy);
        let mut scenario: Box<dyn GridScenario> = match &grid {
            Grid::Wsrf(g) => Box::new(g.scenario(agent)),
            Grid::Transfer(g) => Box::new(g.scenario(agent)),
        };

        // Iteration 0 is warm-up (connection + TLS establishment).
        let warmup = iter == 0;
        let mut step = |slot: usize, f: &mut dyn FnMut()| {
            tel.clear_spans();
            let m0 = tb.network().stats().messages();
            let t0 = tb.clock().now();
            f();
            if !warmup {
                totals[slot] += tb.clock().now().since(t0).as_millis();
                msgs[slot] += (tb.network().stats().messages() - m0) as f64;
                let spans = tel.take_spans();
                for (k, v) in self_time_breakdown(&spans).self_time {
                    *comps[slot].entry(k).or_insert(0.0) += v.as_millis();
                }
                out.spans.extend(spans);
            }
        };

        step(0, &mut || {
            scenario.get_available_resource("blast").expect("discover")
        });
        step(1, &mut || scenario.make_reservation().expect("reserve"));
        step(2, &mut || {
            scenario
                .upload_file("input.dat", config.file_bytes)
                .expect("upload")
        });
        step(3, &mut || {
            scenario
                .instantiate_job(config.job_runtime)
                .expect("instantiate")
        });
        // Drive the job to completion between the measured steps.
        scenario.finish_job(WAIT).expect("finish job");
        step(4, &mut || {
            scenario.delete_file("input.dat").expect("delete")
        });
        step(5, &mut || scenario.unreserve_resource().expect("unreserve"));
        automatic_unreserve = scenario.unreserve_is_automatic();
    }

    if automatic_unreserve {
        totals[5] = 0.0;
        msgs[5] = 0.0;
        comps[5].clear();
    }

    for (i, operation) in OPERATIONS.iter().enumerate() {
        out.rows.push(OpBreakdown {
            operation,
            stack,
            total_ms: totals[i] / n as f64,
            components_ms: comps[i].iter().map(|(k, v)| (*k, v / n as f64)).collect(),
            messages: msgs[i] / n as f64,
        });
    }
}

/// The paper's ordinal claims, machine-checked over the breakdowns. An
/// empty return means the reproduction still has the paper's shape;
/// otherwise each string names the claim that regressed.
pub fn check_paper_invariants(
    plain: &BreakdownRun,
    signed: &BreakdownRun,
    lifecycle: &DemandLifecycle,
) -> Vec<String> {
    let mut violations = Vec::new();

    // "Creating resources is always slower than reading or updating them",
    // and creation cost is the Xindice insert.
    for stack in Stack::all() {
        match (
            plain.row("Get", stack),
            plain.row("Set", stack),
            plain.row("Create", stack),
        ) {
            (Some(get), Some(set), Some(create)) => {
                if create.total_ms <= get.total_ms || create.total_ms <= set.total_ms {
                    violations.push(format!(
                        "{stack:?}: Create ({:.2} ms) should dominate Get ({:.2} ms) and Set ({:.2} ms)",
                        create.total_ms, get.total_ms, set.total_ms
                    ));
                }
                if create.dominant_component() != Some("db") {
                    violations.push(format!(
                        "{stack:?}: Create should be db-dominated (the Xindice insert), got {:?}: {:?}",
                        create.dominant_component(),
                        create.components_ms
                    ));
                }
            }
            _ => violations.push(format!("{stack:?}: missing counter breakdown rows")),
        }
    }

    // WS-Eventing's TCP push beats WS-Notification's HTTP delivery.
    match (
        plain.row("Notify", Stack::Wsrf),
        plain.row("Notify", Stack::Transfer),
    ) {
        (Some(wsn), Some(wse)) => {
            if wse.total_ms >= wsn.total_ms {
                violations.push(format!(
                    "WS-Eventing Notify ({:.2} ms, TCP) should beat WS-Notification ({:.2} ms, HTTP)",
                    wse.total_ms, wsn.total_ms
                ));
            }
        }
        _ => violations.push("missing Notify breakdown rows".to_owned()),
    }

    // Under X.509 the signature costs dominate every operation, on both
    // stacks — the figure-4 "differences fade" story.
    for stack in Stack::all() {
        for op in super::hello::OPERATIONS {
            match signed.row(op, stack) {
                Some(row) => {
                    if row.dominant_component() != Some("security") {
                        violations.push(format!(
                            "{stack:?}/{op} under X.509 should be security-dominated, got {:?}: {:?}",
                            row.dominant_component(),
                            row.components_ms
                        ));
                    }
                }
                None => violations.push(format!("{stack:?}/{op}: missing signed breakdown row")),
            }
        }
    }

    // Demand-based brokered publishing costs ~10x the messages of direct
    // delivery per event (§3.1: "an order of magnitude at a minimum").
    if lifecycle.factor() < 8.0 {
        violations.push(format!(
            "demand-lifecycle amplification {:.1}x (brokered {} vs direct {} messages) fell below ~10x",
            lifecycle.factor(),
            lifecycle.brokered_messages,
            lifecycle.direct_messages
        ));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::ablation;
    use ogsa_security::SecurityPolicy;

    fn quick(policy: SecurityPolicy) -> BreakdownRun {
        counter_breakdown(HelloConfig {
            policy,
            iterations: 3,
        })
    }

    #[test]
    fn paper_invariants_hold() {
        let plain = quick(SecurityPolicy::None);
        let signed = quick(SecurityPolicy::X509Sign);
        let lifecycle = ablation::demand_lifecycle(2);
        let violations = check_paper_invariants(&plain, &signed, &lifecycle);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn components_roughly_account_for_the_total() {
        let run = quick(SecurityPolicy::None);
        for row in &run.rows {
            let sum: f64 = row.components_ms.values().sum();
            assert!(
                sum <= row.total_ms * 1.01 + 0.01,
                "{}/{:?}: components {sum} exceed total {}",
                row.operation,
                row.stack,
                row.total_ms
            );
            assert!(
                sum >= row.total_ms * 0.5,
                "{}/{:?}: components {sum} explain too little of total {}",
                row.operation,
                row.stack,
                row.total_ms
            );
        }
    }

    #[test]
    fn every_operation_sends_messages_and_records_spans() {
        let run = quick(SecurityPolicy::None);
        assert_eq!(run.rows.len(), 10);
        assert!(!run.spans.is_empty());
        for row in &run.rows {
            assert!(row.messages >= 1.0, "{}/{:?}", row.operation, row.stack);
            assert!(row.total_ms > 0.0, "{}/{:?}", row.operation, row.stack);
        }
    }

    #[test]
    fn grid_breakdown_covers_all_operations() {
        let run = grid_breakdown(GridConfig {
            iterations: 1,
            ..GridConfig::default()
        });
        assert_eq!(run.rows.len(), 12);
        // Security self time shows on every non-free operation (the VO
        // runs under X.509 by default).
        for row in &run.rows {
            if row.total_ms > 0.0 {
                assert!(
                    row.component_ms("security") > 0.0,
                    "{}/{:?}: {:?}",
                    row.operation,
                    row.stack,
                    row.components_ms
                );
            }
        }
    }
}
