//! The comparison harness: scenario runners producing the paper's figures.

pub mod ablation;
pub mod breakdown;
pub mod fanout;
pub mod grid;
pub mod hello;
pub mod throughput;

/// Which software stack a measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stack {
    /// WSRF + WS-Notification (the paper's WSRF.NET).
    Wsrf,
    /// WS-Transfer + WS-Eventing.
    Transfer,
}

impl Stack {
    /// Label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Stack::Wsrf => "WSRF.NET",
            Stack::Transfer => "WS-Transfer / WS-Eventing",
        }
    }

    pub fn all() -> [Stack; 2] {
        [Stack::Transfer, Stack::Wsrf]
    }

    /// Short machine-readable key for JSON artifacts.
    pub fn key(self) -> &'static str {
        match self {
            Stack::Wsrf => "wsrf",
            Stack::Transfer => "transfer",
        }
    }
}
