//! Multi-client throughput: requests per virtual second vs. client count
//! and storage shard count, per stack.
//!
//! The paper measures single-client latency; this harness asks the capacity
//! question the Xindice deployments raised in practice: how many concurrent
//! clients can a container sustain before the XML database serialises them?
//!
//! # The makespan model
//!
//! The driver is closed-loop and single-threaded against the shared virtual
//! clock, so elapsed virtual time *sums* every client's work and cannot show
//! parallel speed-up directly. Instead each cell records two quantities the
//! sequential run measures exactly:
//!
//! * `D_c` — client `c`'s own demand: the virtual time its operations took,
//!   attributed per client by clocking each operation in the round-robin.
//! * `B_s` — shard `s`'s busy time: the virtual microseconds of database
//!   work charged against that shard ([`DbStats::shard_busy_snapshot`]).
//!
//! Under an idealised parallel schedule (every client on its own thread,
//! shard locks the only shared resource) the run cannot finish faster than
//! the busiest client or the busiest shard:
//!
//! ```text
//! makespan = max( max_c D_c , max_s B_s )
//! throughput = total_requests / makespan
//! ```
//!
//! Because shard routing is a stable hash and power-of-two shard counts
//! nest (the modulus splits each shard's key set in two), `max_s B_s` is
//! non-increasing in the shard count for the same workload, while `D_c`
//! does not depend on sharding at all — so throughput is monotonically
//! non-decreasing in the shard count, and strictly better once the store
//! stops being the bottleneck. That is the invariant the bench gate checks.

use ogsa_container::Testbed;
use ogsa_counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_gridbox::{GridScenario, TransferGrid, WsrfGrid};
use ogsa_security::SecurityPolicy;
use ogsa_sim::SimDuration;
use ogsa_xmldb::DbStats;

use super::Stack;

/// One cell of the throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// `"counter"` or `"gridbox"`.
    pub workload: &'static str,
    pub stack: Stack,
    pub clients: usize,
    pub shards: usize,
    /// Completed requests across all clients.
    pub requests: u64,
    /// The slowest single client's demand, virtual ms (`max_c D_c`).
    pub max_client_demand_ms: f64,
    /// The busiest storage shard, virtual ms (`max_s B_s`).
    pub max_shard_busy_ms: f64,
    /// `max(max_client_demand_ms, max_shard_busy_ms)`.
    pub makespan_ms: f64,
    /// Requests per virtual second under the makespan model.
    pub rps: f64,
}

impl ThroughputRow {
    fn new(
        workload: &'static str,
        stack: Stack,
        clients: usize,
        shards: usize,
        requests: u64,
        demand_us: &[u64],
        busy_us: &[u64],
    ) -> ThroughputRow {
        let d_max = demand_us.iter().copied().max().unwrap_or(0);
        let b_max = busy_us.iter().copied().max().unwrap_or(0);
        let makespan_us = d_max.max(b_max).max(1);
        ThroughputRow {
            workload,
            stack,
            clients,
            shards,
            requests,
            max_client_demand_ms: d_max as f64 / 1_000.0,
            max_shard_busy_ms: b_max as f64 / 1_000.0,
            makespan_ms: makespan_us as f64 / 1_000.0,
            rps: requests as f64 * 1_000_000.0 / makespan_us as f64,
        }
    }
}

/// Configuration for the full sweep.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    pub policy: SecurityPolicy,
    /// Client counts for the counter workload.
    pub clients: Vec<usize>,
    /// Shard counts for the counter workload (powers of two nest, see the
    /// module docs).
    pub shards: Vec<usize>,
    /// Measured closed-loop iterations per counter client.
    pub iterations: usize,
    /// Client counts for the (heavier) Grid-in-a-Box workload.
    pub grid_clients: Vec<usize>,
    /// Shard counts for the Grid-in-a-Box workload.
    pub grid_shards: Vec<usize>,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            policy: SecurityPolicy::None,
            clients: vec![1, 2, 4, 8, 16],
            shards: vec![1, 2, 4, 8],
            iterations: 6,
            grid_clients: vec![1, 8],
            grid_shards: vec![1, 8],
        }
    }
}

/// Run the full sweep: counter cells for every (stack × clients × shards),
/// then the reduced Grid-in-a-Box grid.
pub fn run(config: &ThroughputConfig) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for stack in Stack::all() {
        for &clients in &config.clients {
            for &shards in &config.shards {
                rows.push(counter_cell(config, stack, clients, shards));
            }
        }
    }
    for stack in Stack::all() {
        for &clients in &config.grid_clients {
            for &shards in &config.grid_shards {
                rows.push(gridbox_cell(stack, clients, shards));
            }
        }
    }
    rows
}

/// Requests one counter-client iteration issues:
/// create + 2 × (get + set) + destroy.
const COUNTER_OPS_PER_ITERATION: u64 = 6;

fn counter_cell(
    config: &ThroughputConfig,
    stack: Stack,
    clients: usize,
    shards: usize,
) -> ThroughputRow {
    let tb = Testbed::calibrated().with_shards(shards);
    let container = tb.container("host-a", config.policy);
    enum Deployed {
        Wsrf(WsrfCounter),
        Transfer(TransferCounter),
    }
    let deployed = match stack {
        Stack::Wsrf => Deployed::Wsrf(WsrfCounter::deploy(&container)),
        Stack::Transfer => Deployed::Transfer(TransferCounter::deploy(&container)),
    };
    let apis: Vec<Box<dyn CounterApi>> = (0..clients)
        .map(|i| {
            let agent = tb.client(
                &format!("client-{i}"),
                &format!("CN=client-{i},O=UVA-VO"),
                config.policy,
            );
            match &deployed {
                Deployed::Wsrf(d) => Box::new(d.client(agent)) as Box<dyn CounterApi>,
                Deployed::Transfer(d) => Box::new(d.client(agent)),
            }
        })
        .collect();

    // Warm-up (connection + TLS establishment), outside the measurement.
    for api in &apis {
        let c = api.create().expect("warm create");
        api.get(&c).expect("warm get");
        api.set(&c, 0).expect("warm set");
        api.destroy(&c).expect("warm destroy");
    }

    let clock = tb.clock().clone();
    let stats = tb.db("host-a").stats().clone();
    let busy_before = stats.shard_busy_snapshot(shards);

    // The closed loop: round-robin, one full iteration per client per round,
    // each client driving only its own resources.
    let iterations = config.iterations.max(1);
    let mut demand_us = vec![0u64; clients];
    for round in 0..iterations {
        for (c, api) in apis.iter().enumerate() {
            let t = clock.now();
            let counter = api.create().expect("create");
            for rep in 0..2 {
                api.get(&counter).expect("get");
                api.set(&counter, (round * 2 + rep) as i64).expect("set");
            }
            api.destroy(&counter).expect("destroy");
            demand_us[c] += clock.now().since(t).as_micros();
        }
    }

    let busy_us: Vec<u64> = stats
        .shard_busy_snapshot(shards)
        .iter()
        .zip(&busy_before)
        .map(|(after, before)| after - before)
        .collect();
    let requests = (clients * iterations) as u64 * COUNTER_OPS_PER_ITERATION;
    ThroughputRow::new(
        "counter", stack, clients, shards, requests, &demand_us, &busy_us,
    )
}

/// Requests one Grid-in-a-Box submission flow issues (the six Figure 6
/// operations; driving the job to completion is not a request).
const GRID_OPS_PER_FLOW: u64 = 6;

fn gridbox_cell(stack: Stack, clients: usize, shards: usize) -> ThroughputRow {
    let tb = Testbed::calibrated().with_shards(shards);
    let hosts = ["site-a", "site-b"];
    let apps = ["blast"];
    // Figure 6's configuration: X.509-signed messages on every hop.
    let policy = SecurityPolicy::X509Sign;
    let users: Vec<String> = (0..clients)
        .map(|i| format!("CN=client-{i},O=UVA-VO"))
        .collect();
    let user_refs: Vec<&str> = users.iter().map(String::as_str).collect();

    enum Grid {
        Wsrf(WsrfGrid),
        Transfer(TransferGrid),
    }
    let grid = match stack {
        Stack::Wsrf => Grid::Wsrf(WsrfGrid::deploy(&tb, policy, &hosts, &apps, &user_refs)),
        Stack::Transfer => {
            Grid::Transfer(TransferGrid::deploy(&tb, policy, &hosts, &apps, &user_refs))
        }
    };

    let clock = tb.clock().clone();
    let site_stats: Vec<DbStats> = hosts.iter().map(|h| tb.db(h).stats().clone()).collect();
    let busy_before: Vec<Vec<u64>> = site_stats
        .iter()
        .map(|s| s.shard_busy_snapshot(shards))
        .collect();

    // Whole submission flows stay sequential (a reservation is exclusive
    // while its job runs), so the round-robin is at flow granularity: each
    // client runs one complete flow per round.
    let mut demand_us = vec![0u64; clients];
    for (c, user) in users.iter().enumerate() {
        let agent = tb.client(&format!("client-{c}"), user, policy);
        let mut scenario: Box<dyn GridScenario> = match &grid {
            Grid::Wsrf(g) => Box::new(g.scenario(agent)),
            Grid::Transfer(g) => Box::new(g.scenario(agent)),
        };
        let t = clock.now();
        scenario.get_available_resource("blast").expect("discover");
        scenario.make_reservation().expect("reserve");
        scenario
            .upload_file("input.dat", 24 * 1024)
            .expect("upload");
        scenario
            .instantiate_job(SimDuration::from_millis(200.0))
            .expect("instantiate");
        scenario
            .finish_job(std::time::Duration::from_secs(5))
            .expect("finish job");
        scenario.delete_file("input.dat").expect("delete");
        scenario.unreserve_resource().expect("unreserve");
        demand_us[c] += clock.now().since(t).as_micros();
    }

    let mut busy_us = Vec::new();
    for (stats, before) in site_stats.iter().zip(&busy_before) {
        busy_us.extend(
            stats
                .shard_busy_snapshot(shards)
                .iter()
                .zip(before)
                .map(|(after, b)| after - b),
        );
    }
    let requests = clients as u64 * GRID_OPS_PER_FLOW;
    ThroughputRow::new(
        "gridbox", stack, clients, shards, requests, &demand_us, &busy_us,
    )
}

/// Fetch one cell.
pub fn cell<'a>(
    rows: &'a [ThroughputRow],
    workload: &str,
    stack: Stack,
    clients: usize,
    shards: usize,
) -> Option<&'a ThroughputRow> {
    rows.iter().find(|r| {
        r.workload == workload && r.stack == stack && r.clients == clients && r.shards == shards
    })
}

/// The scaling invariant the bench gate enforces: for the counter workload,
/// at every client count ≥ 8, throughput must be non-decreasing in the shard
/// count and strictly better at the largest shard count than at the
/// smallest, for both stacks. Returns human-readable violations.
pub fn check_scaling_invariants(rows: &[ThroughputRow]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut client_counts: Vec<usize> = rows
        .iter()
        .filter(|r| r.workload == "counter" && r.clients >= 8)
        .map(|r| r.clients)
        .collect();
    client_counts.sort_unstable();
    client_counts.dedup();
    for stack in Stack::all() {
        for &clients in &client_counts {
            let mut cells: Vec<&ThroughputRow> = rows
                .iter()
                .filter(|r| r.workload == "counter" && r.stack == stack && r.clients == clients)
                .collect();
            cells.sort_by_key(|r| r.shards);
            for pair in cells.windows(2) {
                if pair[1].rps < pair[0].rps {
                    violations.push(format!(
                        "{} counter @{clients} clients: rps fell from {:.1} ({} shards) to {:.1} ({} shards)",
                        stack.label(),
                        pair[0].rps,
                        pair[0].shards,
                        pair[1].rps,
                        pair[1].shards,
                    ));
                }
            }
            if let (Some(first), Some(last)) = (cells.first(), cells.last()) {
                if last.shards > first.shards && last.rps <= first.rps {
                    violations.push(format!(
                        "{} counter @{clients} clients: {} shards ({:.1} rps) not strictly better than {} shards ({:.1} rps)",
                        stack.label(),
                        last.shards,
                        last.rps,
                        first.shards,
                        first.rps,
                    ));
                }
            }
        }
    }
    violations
}

/// Rows as a deterministic JSON array (fixed field order, fixed precision).
pub fn rows_json(rows: &[ThroughputRow]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\":\"{}\",\"stack\":\"{}\",\"clients\":{},\"shards\":{},\"requests\":{},\"max_client_demand_ms\":{:.3},\"max_shard_busy_ms\":{:.3},\"makespan_ms\":{:.3},\"rps\":{:.3}}}",
                r.workload,
                r.stack.key(),
                r.clients,
                r.shards,
                r.requests,
                r.max_client_demand_ms,
                r.max_shard_busy_ms,
                r.makespan_ms,
                r.rps,
            )
        })
        .collect();
    format!("[{}]", cells.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<ThroughputRow> {
        run(&ThroughputConfig {
            clients: vec![1, 8],
            shards: vec![1, 2, 8],
            iterations: 3,
            grid_clients: vec![2],
            grid_shards: vec![1],
            ..ThroughputConfig::default()
        })
    }

    #[test]
    fn sweep_produces_every_cell_and_scaling_holds() {
        let rows = quick();
        // 2 stacks × 2 client counts × 3 shard counts + 2 × 1 × 1 grid cells.
        assert_eq!(rows.len(), 2 * 2 * 3 + 2);
        for r in &rows {
            assert!(r.requests > 0);
            assert!(r.rps > 0.0, "{r:?}");
            assert!(r.makespan_ms >= r.max_client_demand_ms);
            assert!(r.makespan_ms >= r.max_shard_busy_ms);
        }
        assert_eq!(check_scaling_invariants(&rows), Vec::<String>::new());
    }

    #[test]
    fn single_client_throughput_ignores_sharding() {
        // The paper's single-client figures must be shard-invariant: one
        // client cannot contend with itself, so its demand bounds the
        // makespan identically at every shard count.
        let rows = quick();
        for stack in Stack::all() {
            let r1 = cell(&rows, "counter", stack, 1, 1).unwrap();
            let r8 = cell(&rows, "counter", stack, 1, 8).unwrap();
            assert!(
                (r1.rps - r8.rps).abs() < 1e-6,
                "{stack:?}: {} vs {}",
                r1.rps,
                r8.rps
            );
        }
    }

    #[test]
    fn eight_clients_scale_with_shards() {
        let rows = quick();
        for stack in Stack::all() {
            let s1 = cell(&rows, "counter", stack, 8, 1).unwrap();
            let s8 = cell(&rows, "counter", stack, 8, 8).unwrap();
            assert!(
                s8.rps > s1.rps,
                "{stack:?}: 8 shards {} rps vs 1 shard {} rps",
                s8.rps,
                s1.rps
            );
            // At one shard the store is the bottleneck, not the client.
            assert!(s1.max_shard_busy_ms > s1.max_client_demand_ms, "{stack:?}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let config = ThroughputConfig {
            clients: vec![4],
            shards: vec![2],
            iterations: 2,
            grid_clients: vec![1],
            grid_shards: vec![2],
            ..ThroughputConfig::default()
        };
        assert_eq!(rows_json(&run(&config)), rows_json(&run(&config)));
    }
}
