//! Paper-shaped report tables.
//!
//! Each renderer prints the same rows/series the corresponding figure in
//! the paper reports, as fixed-width text suitable for a terminal or for
//! pasting into EXPERIMENTS.md.

use std::fmt::Write;

use ogsa_transport::Deployment;

use ogsa_telemetry::export::json_escape;

use crate::comparison::ablation::{Ablation, BrokerAmplification, DemandLifecycle};
use crate::comparison::breakdown::OpBreakdown;
use crate::comparison::grid::{self, GridRow};
use crate::comparison::hello::{self, HelloRow};
use crate::comparison::Stack;

/// Render a Figures-2/3/4 style table: operations × the four series.
pub fn render_hello(title: &str, rows: &[HelloRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "op (ms)", "co/WS-T+WSE", "co/WSRF.NET", "dist/WS-T+WSE", "dist/WSRF.NET"
    );
    for op in hello::OPERATIONS {
        let cell = |stack, dep| {
            hello::cell(rows, op, stack, dep)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            op,
            cell(Stack::Transfer, Deployment::Colocated),
            cell(Stack::Wsrf, Deployment::Colocated),
            cell(Stack::Transfer, Deployment::Distributed),
            cell(Stack::Wsrf, Deployment::Distributed),
        );
    }
    out
}

/// Render the Figure-6 style table.
pub fn render_grid(title: &str, rows: &[GridRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "{:<24} {:>16} {:>12}",
        "operation (ms)", "WS-T / WSE", "WSRF.NET"
    );
    for op in grid::OPERATIONS {
        let cell = |stack| {
            grid::cell(rows, op, stack)
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{:<24} {:>16} {:>12}",
            op,
            cell(Stack::Transfer),
            cell(Stack::Wsrf),
        );
    }
    out
}

/// Render an ablation line.
pub fn render_ablation(a: &Ablation) -> String {
    format!(
        "{:<55} with: {:>8.2} ms   without: {:>8.2} ms   speedup: {:.2}x",
        a.name,
        a.with_ms,
        a.without_ms,
        a.speedup()
    )
}

/// Render a component-breakdown table: per operation and stack, the total
/// and where it went.
pub fn render_breakdown(title: &str, rows: &[OpBreakdown]) -> String {
    const NAMED: [&str; 4] = ["db", "security", "wire", "soap"];
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "{:<24} {:<9} {:>9} {:>8} {:>9} {:>8} {:>8} {:>8} {:>6}",
        "operation (ms)", "stack", "total", "db", "security", "wire", "soap", "other", "msgs"
    );
    for r in rows {
        // `+ 0.0` normalises an IEEE negative zero out of the sum.
        let other: f64 = r
            .components_ms
            .iter()
            .filter(|(k, _)| !NAMED.contains(*k))
            .map(|(_, v)| v)
            .sum::<f64>()
            + 0.0;
        let _ = writeln!(
            out,
            "{:<24} {:<9} {:>9.2} {:>8.2} {:>9.2} {:>8.2} {:>8.2} {:>8.2} {:>6.1}",
            r.operation,
            r.stack.key(),
            r.total_ms,
            r.component_ms("db"),
            r.component_ms("security"),
            r.component_ms("wire"),
            r.component_ms("soap"),
            other,
            r.messages,
        );
    }
    out
}

/// One breakdown row as a JSON object.
fn breakdown_row_json(r: &OpBreakdown) -> String {
    let comps: Vec<String> = r
        .components_ms
        .iter()
        .map(|(k, v)| format!("\"{}\":{:.3}", json_escape(k), v))
        .collect();
    format!(
        "{{\"operation\":\"{}\",\"stack\":\"{}\",\"total_ms\":{:.3},\"messages\":{:.2},\"components_ms\":{{{}}}}}",
        json_escape(r.operation),
        r.stack.key(),
        r.total_ms,
        r.messages,
        comps.join(",")
    )
}

/// Breakdown rows as a JSON array.
pub fn breakdown_rows_json(rows: &[OpBreakdown]) -> String {
    let rendered: Vec<String> = rows.iter().map(breakdown_row_json).collect();
    format!("[{}]", rendered.join(","))
}

/// The demand-lifecycle experiment as a JSON object.
pub fn demand_lifecycle_json(d: &DemandLifecycle) -> String {
    format!(
        "{{\"events\":{},\"direct_messages\":{},\"brokered_messages\":{},\"factor\":{:.2}}}",
        d.events,
        d.direct_messages,
        d.brokered_messages,
        d.factor()
    )
}

/// Render the broker message-amplification result.
pub fn render_broker(b: &BrokerAmplification) -> String {
    format!(
        "demand-based broker, {} consumer(s): direct={} messages, brokered={} messages ({:.1}x)",
        b.consumers,
        b.direct_messages,
        b.brokered_messages,
        b.factor()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_table_contains_every_operation() {
        let rows = vec![HelloRow {
            operation: "Get",
            stack: Stack::Wsrf,
            deployment: Deployment::Colocated,
            ms: 9.5,
        }];
        let table = render_hello("Figure 2", &rows);
        for op in hello::OPERATIONS {
            assert!(table.contains(op), "missing {op}");
        }
        assert!(table.contains("9.5"));
        assert!(table.contains("Figure 2"));
    }

    #[test]
    fn grid_table_contains_every_operation() {
        let rows = vec![GridRow {
            operation: "Instantiate Job",
            stack: Stack::Transfer,
            ms: 640.0,
        }];
        let table = render_grid("Figure 6", &rows);
        for op in grid::OPERATIONS {
            assert!(table.contains(op), "missing {op}");
        }
        assert!(table.contains("640"));
    }

    #[test]
    fn ablation_line_shows_speedup() {
        let line = render_ablation(&Ablation {
            name: "cache",
            with_ms: 5.0,
            without_ms: 10.0,
        });
        assert!(line.contains("2.00x"));
    }

    #[test]
    fn breakdown_table_and_json_render_components() {
        let mut components_ms = std::collections::BTreeMap::new();
        components_ms.insert("db", 11.25);
        components_ms.insert("security", 74.0);
        components_ms.insert("dispatch", 0.35);
        let rows = vec![OpBreakdown {
            operation: "Create",
            stack: Stack::Wsrf,
            total_ms: 90.5,
            components_ms,
            messages: 2.0,
        }];
        let table = render_breakdown("Create breakdown", &rows);
        assert!(table.contains("Create"));
        assert!(table.contains("wsrf"));
        assert!(table.contains("11.25"));
        assert!(table.contains("74.00"));
        let json = breakdown_rows_json(&rows);
        assert!(json.contains("\"operation\":\"Create\""));
        assert!(json.contains("\"stack\":\"wsrf\""));
        assert!(json.contains("\"db\":11.250"));
        assert!(json.contains("\"security\":74.000"));
        assert!(json.contains("\"messages\":2.00"));
    }

    #[test]
    fn demand_lifecycle_json_has_factor() {
        let json = demand_lifecycle_json(&DemandLifecycle {
            events: 3,
            direct_messages: 3,
            brokered_messages: 30,
        });
        assert!(json.contains("\"factor\":10.00"));
    }

    #[test]
    fn broker_line_shows_factor() {
        let line = render_broker(&BrokerAmplification {
            consumers: 2,
            direct_messages: 10,
            brokered_messages: 60,
        });
        assert!(line.contains("6.0x"));
    }
}
