//! Paper-shaped report tables.
//!
//! Each renderer prints the same rows/series the corresponding figure in
//! the paper reports, as fixed-width text suitable for a terminal or for
//! pasting into EXPERIMENTS.md.

use std::fmt::Write;

use ogsa_transport::Deployment;

use crate::comparison::ablation::{Ablation, BrokerAmplification};
use crate::comparison::grid::{self, GridRow};
use crate::comparison::hello::{self, HelloRow};
use crate::comparison::Stack;

/// Render a Figures-2/3/4 style table: operations × the four series.
pub fn render_hello(title: &str, rows: &[HelloRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "op (ms)", "co/WS-T+WSE", "co/WSRF.NET", "dist/WS-T+WSE", "dist/WSRF.NET"
    );
    for op in hello::OPERATIONS {
        let cell = |stack, dep| {
            hello::cell(rows, op, stack, dep)
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            op,
            cell(Stack::Transfer, Deployment::Colocated),
            cell(Stack::Wsrf, Deployment::Colocated),
            cell(Stack::Transfer, Deployment::Distributed),
            cell(Stack::Wsrf, Deployment::Distributed),
        );
    }
    out
}

/// Render the Figure-6 style table.
pub fn render_grid(title: &str, rows: &[GridRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.len()));
    let _ = writeln!(
        out,
        "{:<24} {:>16} {:>12}",
        "operation (ms)", "WS-T / WSE", "WSRF.NET"
    );
    for op in grid::OPERATIONS {
        let cell = |stack| {
            grid::cell(rows, op, stack)
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{:<24} {:>16} {:>12}",
            op,
            cell(Stack::Transfer),
            cell(Stack::Wsrf),
        );
    }
    out
}

/// Render an ablation line.
pub fn render_ablation(a: &Ablation) -> String {
    format!(
        "{:<55} with: {:>8.2} ms   without: {:>8.2} ms   speedup: {:.2}x",
        a.name,
        a.with_ms,
        a.without_ms,
        a.speedup()
    )
}

/// Render the broker message-amplification result.
pub fn render_broker(b: &BrokerAmplification) -> String {
    format!(
        "demand-based broker, {} consumer(s): direct={} messages, brokered={} messages ({:.1}x)",
        b.consumers,
        b.direct_messages,
        b.brokered_messages,
        b.factor()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_table_contains_every_operation() {
        let rows = vec![HelloRow {
            operation: "Get",
            stack: Stack::Wsrf,
            deployment: Deployment::Colocated,
            ms: 9.5,
        }];
        let table = render_hello("Figure 2", &rows);
        for op in hello::OPERATIONS {
            assert!(table.contains(op), "missing {op}");
        }
        assert!(table.contains("9.5"));
        assert!(table.contains("Figure 2"));
    }

    #[test]
    fn grid_table_contains_every_operation() {
        let rows = vec![GridRow {
            operation: "Instantiate Job",
            stack: Stack::Transfer,
            ms: 640.0,
        }];
        let table = render_grid("Figure 6", &rows);
        for op in grid::OPERATIONS {
            assert!(table.contains(op), "missing {op}");
        }
        assert!(table.contains("640"));
    }

    #[test]
    fn ablation_line_shows_speedup() {
        let line = render_ablation(&Ablation {
            name: "cache",
            with_ms: 5.0,
            without_ms: 10.0,
        });
        assert!(line.contains("2.00x"));
    }

    #[test]
    fn broker_line_shows_factor() {
        let line = render_broker(&BrokerAmplification {
            consumers: 2,
            direct_messages: 10,
            brokered_messages: 60,
        });
        assert!(line.contains("6.0x"));
    }
}
