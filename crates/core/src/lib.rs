//! # ogsa-core
//!
//! The facade over the whole reproduction, plus the comparison harness that
//! regenerates every quantitative result in *"Alternative Software Stacks
//! for OGSA-based Grids"* (SC 2005):
//!
//! * [`comparison::hello`] — the "hello world" counter evaluation
//!   (Figures 2, 3, 4): five operations × two stacks × two deployments,
//!   under each of the three security policies.
//! * [`comparison::grid`] — the Grid-in-a-Box evaluation (Figure 6): six
//!   operations × two stacks on a full VO deployment.
//! * [`comparison::ablation`] — the mechanism experiments behind the
//!   paper's explanations: write-through cache, TLS session cache, TCP vs
//!   HTTP notification delivery, and demand-based broker message
//!   amplification.
//! * [`comparison::breakdown`] — the same scenarios under full causal
//!   tracing: every bar decomposed into db / security / wire / soap self
//!   time plus message counts, with the paper's ordinal claims
//!   machine-checked.
//! * [`report`] — fixed-width tables shaped like the paper's figures, plus
//!   machine-checkable "shape" assertions (who wins, by what factor).
//!
//! Everything else re-exports the substrate and application crates so a
//! downstream user needs only this crate (or the `ogsa-grid` umbrella).

pub mod comparison;
pub mod report;

pub use ogsa_addressing as addressing;
pub use ogsa_container as container;
pub use ogsa_counter as counter;
pub use ogsa_eventing as eventing;
pub use ogsa_fanout as fanout;
pub use ogsa_gridbox as gridbox;
pub use ogsa_security as security;
pub use ogsa_serve as serve;
pub use ogsa_sim as sim;
pub use ogsa_soap as soap;
pub use ogsa_telemetry as telemetry;
pub use ogsa_transfer as transfer;
pub use ogsa_transport as transport;
pub use ogsa_wsn as wsn;
pub use ogsa_wsrf as wsrf;
pub use ogsa_xml as xml;
pub use ogsa_xmldb as xmldb;

pub use comparison::ablation;
pub use comparison::breakdown;
pub use comparison::grid;
pub use comparison::hello;
pub use comparison::throughput;
