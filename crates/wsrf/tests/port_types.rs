//! End-to-end WSRF tests: a small stateful service deployed in a container,
//! exercised over the simulated wire through the client proxy.

use std::collections::HashSet;
use std::sync::Arc;

use ogsa_addressing::EndpointReference;
use ogsa_container::{InvokeError, Operation, OperationContext, Testbed};
use ogsa_security::SecurityPolicy;
use ogsa_soap::Fault;
use ogsa_wsrf::lifetime::TerminationTime;
use ogsa_wsrf::properties::SetComponent;
use ogsa_wsrf::service_base::{PortType, ServiceBase, WsrfService, WsrfServiceHost};
use ogsa_wsrf::{BaseFault, ResourceDocument, WsrfProxy};
use ogsa_xml::{ns, Element};

/// A toy stateful service: resources hold `v`; exposes a custom `create`
/// WebMethod (as the paper's counter does) and a computed `DoubleValue`
/// resource property (the WSRF.NET `[ResourceProperty]` example in §3.1).
struct ToyService;

impl WsrfService for ToyService {
    fn handle_custom(
        &self,
        op: &Operation,
        ctx: &OperationContext,
        base: &ServiceBase,
    ) -> Result<Element, Fault> {
        match op.action_name() {
            "create" => {
                let initial = op.body.child_parse::<i64>("initial").unwrap_or(0);
                let doc = Element::new("ToyResource")
                    .with_child(Element::text_element("v", initial.to_string()));
                let res = base.create(ctx, doc)?;
                base.schedule_termination(ctx, &res.id, TerminationTime::Never);
                let epr = base.resource_epr(ctx, &res.id);
                Ok(Element::new("createResponse").with_child(epr.to_element()))
            }
            other => Err(Fault::client(format!("no such method {other}"))),
        }
    }

    fn resource_properties(&self, res: &ResourceDocument, _ctx: &OperationContext) -> Element {
        let mut doc = res.doc.clone();
        if let Some(v) = res.member_parse::<i64>("v") {
            doc.add_child(Element::text_element("DoubleValue", (v * 2).to_string()));
        }
        doc
    }
}

fn deploy(tb: &Testbed, imported: HashSet<PortType>) -> EndpointReference {
    let container = tb.container("host-a", SecurityPolicy::None);
    let (epr, _base) = WsrfServiceHost::deploy(
        &container,
        "/services/Toy",
        Arc::new(ToyService),
        imported,
        true,
    );
    epr
}

fn create_resource(
    tb: &Testbed,
    svc: &EndpointReference,
) -> (ogsa_container::ClientAgent, EndpointReference) {
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let resp = client
        .invoke(
            svc,
            "urn:toy/create",
            Element::new("create").with_child(Element::text_element("initial", "21")),
        )
        .unwrap();
    let epr = EndpointReference::from_element(resp.child_elements().next().unwrap()).unwrap();
    (client, epr)
}

#[test]
fn full_resource_lifecycle_over_the_wire() {
    let tb = Testbed::free();
    let svc = deploy(&tb, PortType::all());
    let (client, resource) = create_resource(&tb, &svc);
    let proxy = WsrfProxy::new(&client);

    // Stored member.
    assert_eq!(proxy.get_property_text(&resource, "v").unwrap(), "21");
    // Computed [ResourceProperty] (v * 2).
    assert_eq!(
        proxy.get_property_text(&resource, "DoubleValue").unwrap(),
        "42"
    );

    // Set and re-read.
    proxy.set_property_text(&resource, "v", "50").unwrap();
    assert_eq!(
        proxy.get_property_text(&resource, "DoubleValue").unwrap(),
        "100"
    );

    // Query.
    let hits = proxy.query(&resource, "/ToyResource[v > 40]").unwrap();
    assert_eq!(hits.len(), 1);

    // Destroy, then further access raises ResourceUnknownFault.
    proxy.destroy(&resource).unwrap();
    let err = proxy.get_property(&resource, "v").unwrap_err();
    match err {
        InvokeError::Fault(f) => {
            let bf = BaseFault::from_soap_fault(&f).expect("structured base fault");
            assert!(bf.is(ns::WSRF_RP, "ResourceUnknownFault"));
        }
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn get_multiple_properties() {
    let tb = Testbed::free();
    let svc = deploy(&tb, PortType::all());
    let (client, resource) = create_resource(&tb, &svc);
    let proxy = WsrfProxy::new(&client);
    let props = proxy
        .get_properties(&resource, &["v", "DoubleValue"])
        .unwrap();
    let texts: Vec<_> = props.iter().map(|e| e.text()).collect();
    assert_eq!(texts, ["21", "42"]);
}

#[test]
fn scheduled_termination_destroys_resources() {
    let tb = Testbed::free();
    let svc = deploy(&tb, PortType::all());
    let (client, resource) = create_resource(&tb, &svc);
    let proxy = WsrfProxy::new(&client);

    // Schedule termination shortly in the virtual future.
    let when = tb
        .clock()
        .now()
        .plus(ogsa_sim::SimDuration::from_millis(10.0));
    let (new_tt, _now) = proxy
        .set_termination_time(&resource, TerminationTime::At(when))
        .unwrap();
    assert_eq!(new_tt, TerminationTime::At(when));

    // Lifetime resource properties appear in the RP view.
    let tt_text = proxy
        .get_property_text(&resource, "TerminationTime")
        .unwrap();
    assert_eq!(tt_text, when.0.to_string());

    // Pass the deadline; the next dispatched request sweeps it away.
    tb.clock().advance(ogsa_sim::SimDuration::from_millis(20.0));
    let err = proxy.get_property(&resource, "v").unwrap_err();
    assert!(matches!(err, InvokeError::Fault(_)));
}

#[test]
fn termination_in_the_past_is_rejected() {
    let tb = Testbed::free();
    let svc = deploy(&tb, PortType::all());
    let (client, resource) = create_resource(&tb, &svc);
    let proxy = WsrfProxy::new(&client);
    tb.clock().advance(ogsa_sim::SimDuration::from_millis(5.0));
    let err = proxy
        .set_termination_time(&resource, TerminationTime::At(ogsa_sim::SimInstant(0)))
        .unwrap_err();
    match err {
        InvokeError::Fault(f) => {
            let bf = BaseFault::from_soap_fault(&f).unwrap();
            assert!(bf.is(ns::WSRF_RL, "TerminationTimeChangeRejectedFault"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn non_imported_port_types_fault() {
    let tb = Testbed::free();
    // Import only GetResourceProperty: a minimal service, per the paper's
    // "buy only what you need".
    let mut imported = HashSet::new();
    imported.insert(PortType::GetResourceProperty);
    let svc = deploy(&tb, imported);
    let (client, resource) = create_resource(&tb, &svc);
    let proxy = WsrfProxy::new(&client);

    // The imported one works...
    assert_eq!(proxy.get_property_text(&resource, "v").unwrap(), "21");
    // ...the rest are not part of the service's interface.
    assert!(matches!(
        proxy.set_property_text(&resource, "v", "9"),
        Err(InvokeError::Fault(f)) if f.reason.contains("not imported")
    ));
    assert!(matches!(
        proxy.destroy(&resource),
        Err(InvokeError::Fault(_))
    ));
}

#[test]
fn create_conventions_differ_per_service_the_interop_gap() {
    // The paper (§2.3): "In WSRF, every resource must come into existence
    // via an application-specific protocol, causing interoperability
    // issues." Two services expose creation under different action names and
    // shapes; a client coded against one cannot create against the other.
    struct OtherService;
    impl WsrfService for OtherService {
        fn handle_custom(
            &self,
            op: &Operation,
            ctx: &OperationContext,
            base: &ServiceBase,
        ) -> Result<Element, Fault> {
            match op.action_name() {
                // Different name, different response shape (no EPR element).
                "makeNew" => {
                    let res = base.create(ctx, Element::new("R"))?;
                    Ok(Element::text_element("id", res.id))
                }
                other => Err(Fault::client(format!("no such method {other}"))),
            }
        }
    }

    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (toy_epr, _) = WsrfServiceHost::deploy(
        &container,
        "/services/Toy",
        Arc::new(ToyService),
        PortType::all(),
        true,
    );
    let (other_epr, _) = WsrfServiceHost::deploy(
        &container,
        "/services/Other",
        Arc::new(OtherService),
        PortType::all(),
        true,
    );

    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    // The Toy-style create works on Toy...
    assert!(client
        .invoke(&toy_epr, "urn:toy/create", Element::new("create"))
        .is_ok());
    // ...and fails on Other, which wants `makeNew`.
    assert!(matches!(
        client.invoke(&other_epr, "urn:toy/create", Element::new("create")),
        Err(InvokeError::Fault(_))
    ));
}

#[test]
fn set_properties_insert_and_delete_components() {
    let tb = Testbed::free();
    let svc = deploy(&tb, PortType::all());
    let (client, resource) = create_resource(&tb, &svc);
    let proxy = WsrfProxy::new(&client);

    proxy
        .set_properties(
            &resource,
            &[SetComponent::Insert(vec![
                Element::text_element("note", "a"),
                Element::text_element("note", "b"),
            ])],
        )
        .unwrap();
    assert_eq!(proxy.get_property(&resource, "note").unwrap().len(), 2);

    proxy
        .set_properties(&resource, &[SetComponent::Delete("note".into())])
        .unwrap();
    assert!(matches!(
        proxy.get_property(&resource, "note"),
        Err(InvokeError::Fault(_))
    ));
}

#[test]
fn works_under_x509_signing() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::X509Sign);
    let (svc, _) = WsrfServiceHost::deploy(
        &container,
        "/services/Toy",
        Arc::new(ToyService),
        PortType::all(),
        true,
    );
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::X509Sign);
    let resp = client
        .invoke(
            &svc,
            "urn:toy/create",
            Element::new("create").with_child(Element::text_element("initial", "7")),
        )
        .unwrap();
    let resource = EndpointReference::from_element(resp.child_elements().next().unwrap()).unwrap();
    let proxy = WsrfProxy::new(&client);
    assert_eq!(proxy.get_property_text(&resource, "v").unwrap(), "7");
}
