//! WS-ResourceLifetime: Destroy, SetTerminationTime, and the lifetime
//! resource properties.

use ogsa_sim::{SimDuration, SimInstant};
use ogsa_xml::{ns, Element, QName};

fn q(local: &str) -> QName {
    QName::new(ns::WSRF_RL, local)
}

/// A requested or current termination time: a point on the virtual
/// timeline, or "never" (nilled, which the Grid-in-a-Box reservation claim
/// uses: "sets the termination time to infinity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationTime {
    At(SimInstant),
    Never,
}

impl TerminationTime {
    /// As an `Option<SimInstant>` for the container's lifetime manager.
    pub fn as_option(self) -> Option<SimInstant> {
        match self {
            TerminationTime::At(t) => Some(t),
            TerminationTime::Never => None,
        }
    }

    fn to_text(self) -> String {
        match self {
            TerminationTime::At(t) => t.0.to_string(),
            TerminationTime::Never => "infinity".to_owned(),
        }
    }

    fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("infinity") {
            return Some(TerminationTime::Never);
        }
        s.parse::<u64>()
            .ok()
            .map(|v| TerminationTime::At(SimInstant(v)))
    }
}

/// `wsrl:Destroy` request body.
pub fn destroy_request() -> Element {
    Element::new(q("Destroy"))
}

/// `wsrl:DestroyResponse` body.
pub fn destroy_response() -> Element {
    Element::new(q("DestroyResponse"))
}

/// `wsrl:SetTerminationTime` request body.
pub fn set_termination_request(requested: TerminationTime) -> Element {
    Element::new(q("SetTerminationTime")).with_child(Element::text_element(
        q("RequestedTerminationTime"),
        requested.to_text(),
    ))
}

/// Parse the requested termination time out of a `SetTerminationTime` body.
pub fn parse_set_termination(body: &Element) -> Option<TerminationTime> {
    TerminationTime::parse(body.child_text("RequestedTerminationTime")?)
}

/// `wsrl:SetTerminationTimeResponse` body.
pub fn set_termination_response(new: TerminationTime, current: SimInstant) -> Element {
    Element::new(q("SetTerminationTimeResponse"))
        .with_child(Element::text_element(
            q("NewTerminationTime"),
            new.to_text(),
        ))
        .with_child(Element::text_element(
            q("CurrentTime"),
            current.0.to_string(),
        ))
}

/// Parse the response.
pub fn parse_set_termination_response(body: &Element) -> Option<(TerminationTime, SimInstant)> {
    Some((
        TerminationTime::parse(body.child_text("NewTerminationTime")?)?,
        SimInstant(body.child_parse::<u64>("CurrentTime")?),
    ))
}

/// The lifetime resource properties appended to every scheduled-destroy
/// resource's RP document.
pub fn lifetime_properties(current: SimInstant, termination: TerminationTime) -> [Element; 2] {
    [
        Element::text_element(q("CurrentTime"), current.0.to_string()),
        Element::text_element(q("TerminationTime"), termination.to_text()),
    ]
}

/// Initial termination = now + administrator delta (the Grid-in-a-Box
/// reservation default, "current time plus an administrator specified
/// delta (e.g. 4 hours)").
pub fn initial_termination(now: SimInstant, delta: SimDuration) -> TerminationTime {
    TerminationTime::At(now.plus(delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn termination_time_text_roundtrip() {
        for t in [TerminationTime::At(SimInstant(420)), TerminationTime::Never] {
            assert_eq!(TerminationTime::parse(&t.to_text()), Some(t));
        }
        assert_eq!(
            TerminationTime::parse("Infinity"),
            Some(TerminationTime::Never)
        );
        assert_eq!(TerminationTime::parse("junk"), None);
    }

    #[test]
    fn set_termination_roundtrip() {
        let body = set_termination_request(TerminationTime::At(SimInstant(99)));
        assert_eq!(
            parse_set_termination(&body),
            Some(TerminationTime::At(SimInstant(99)))
        );
        let resp = set_termination_response(TerminationTime::Never, SimInstant(7));
        assert_eq!(
            parse_set_termination_response(&resp),
            Some((TerminationTime::Never, SimInstant(7)))
        );
    }

    #[test]
    fn lifetime_properties_shape() {
        let [cur, term] = lifetime_properties(SimInstant(5), TerminationTime::Never);
        assert_eq!(cur.text(), "5");
        assert_eq!(term.text(), "infinity");
        assert!(cur.name.in_ns(ns::WSRF_RL));
    }

    #[test]
    fn initial_termination_adds_delta() {
        let t = initial_termination(SimInstant(100), SimDuration::from_micros(50));
        assert_eq!(t, TerminationTime::At(SimInstant(150)));
    }

    #[test]
    fn as_option_maps_never_to_none() {
        assert_eq!(TerminationTime::Never.as_option(), None);
        assert_eq!(
            TerminationTime::At(SimInstant(3)).as_option(),
            Some(SimInstant(3))
        );
    }
}
