//! WS-BaseFaults: "a standard exception reporting format" (§2.1).
//!
//! Every WSRF-defined failure travels as a structured `wsbf:BaseFault`
//! document in the SOAP fault detail: timestamp, optional originator EPR,
//! error code, and description. Named subfaults (like
//! `wsrp:ResourceUnknownFault`) reuse the same body under their own root
//! element name.

use ogsa_addressing::EndpointReference;
use ogsa_sim::SimInstant;
use ogsa_soap::Fault;
use ogsa_xml::{ns, Element, QName};

/// A structured WS-BaseFaults document.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseFault {
    /// Root element name; `wsbf:BaseFault` or a named subfault.
    pub name: QName,
    /// Virtual-time timestamp.
    pub timestamp: SimInstant,
    /// The service that originated the fault.
    pub originator: Option<EndpointReference>,
    /// Dialect-scoped error code.
    pub error_code: Option<String>,
    /// Human-readable description.
    pub description: String,
}

impl BaseFault {
    /// A generic `wsbf:BaseFault`.
    pub fn new(timestamp: SimInstant, description: impl Into<String>) -> Self {
        BaseFault {
            name: QName::new(ns::WSRF_BF, "BaseFault"),
            timestamp,
            originator: None,
            error_code: None,
            description: description.into(),
        }
    }

    /// The `wsrp:ResourceUnknownFault` every resource-addressed operation
    /// raises when the EPR names nothing.
    pub fn resource_unknown(timestamp: SimInstant, resource_id: &str) -> Self {
        BaseFault {
            name: QName::new(ns::WSRF_RP, "ResourceUnknownFault"),
            timestamp,
            originator: None,
            error_code: Some("ResourceUnknown".into()),
            description: format!("no WS-Resource with id `{resource_id}`"),
        }
    }

    /// `wsrp:InvalidResourcePropertyQNameFault`.
    pub fn invalid_property(timestamp: SimInstant, property: &str) -> Self {
        BaseFault {
            name: QName::new(ns::WSRF_RP, "InvalidResourcePropertyQNameFault"),
            timestamp,
            originator: None,
            error_code: Some("InvalidResourcePropertyQName".into()),
            description: format!("no resource property named `{property}`"),
        }
    }

    /// `wsrl:TerminationTimeChangeRejectedFault`.
    pub fn termination_rejected(timestamp: SimInstant, why: &str) -> Self {
        BaseFault {
            name: QName::new(ns::WSRF_RL, "TerminationTimeChangeRejectedFault"),
            timestamp,
            originator: None,
            error_code: Some("TerminationTimeChangeRejected".into()),
            description: why.to_owned(),
        }
    }

    /// Attach the originating service's EPR (builder style).
    pub fn with_originator(mut self, epr: EndpointReference) -> Self {
        self.originator = Some(epr);
        self
    }

    /// Serialise to the structured fault document.
    pub fn to_element(&self) -> Element {
        let mut e = Element::new(self.name.clone());
        e.add_child(Element::text_element(
            QName::new(ns::WSRF_BF, "Timestamp"),
            self.timestamp.0.to_string(),
        ));
        if let Some(o) = &self.originator {
            e.add_child(o.to_element_named(QName::new(ns::WSRF_BF, "OriginatorReference")));
        }
        if let Some(c) = &self.error_code {
            e.add_child(Element::text_element(
                QName::new(ns::WSRF_BF, "ErrorCode"),
                c.clone(),
            ));
        }
        e.add_child(Element::text_element(
            QName::new(ns::WSRF_BF, "Description"),
            self.description.clone(),
        ));
        e
    }

    /// Parse from a fault detail document.
    pub fn from_element(e: &Element) -> Option<Self> {
        let timestamp = SimInstant(e.child_parse::<u64>("Timestamp")?);
        let originator = e
            .child_local("OriginatorReference")
            .and_then(|o| EndpointReference::from_element(o).ok());
        Some(BaseFault {
            name: e.name.clone(),
            timestamp,
            originator,
            error_code: e.child_text("ErrorCode").map(str::to_owned),
            description: e.child_text("Description").unwrap_or_default().to_owned(),
        })
    }

    /// Wrap into a SOAP fault (the detail carries the structured document).
    pub fn to_soap_fault(&self) -> Fault {
        Fault::client(self.description.clone()).with_detail(self.to_element())
    }

    /// Extract from a SOAP fault's detail, if it carries one.
    pub fn from_soap_fault(f: &Fault) -> Option<Self> {
        f.detail.as_ref().and_then(Self::from_element)
    }

    /// True if this fault is the named subfault.
    pub fn is(&self, ns_uri: &str, local: &str) -> bool {
        self.name == QName::new(ns_uri, local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_fault_roundtrip() {
        let f = BaseFault::new(SimInstant(123), "it broke")
            .with_originator(EndpointReference::service("http://h/s"));
        let back = BaseFault::from_element(&f.to_element()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn subfault_names_survive() {
        let f = BaseFault::resource_unknown(SimInstant(1), "r-1");
        assert!(f.is(ns::WSRF_RP, "ResourceUnknownFault"));
        let back = BaseFault::from_element(&f.to_element()).unwrap();
        assert!(back.is(ns::WSRF_RP, "ResourceUnknownFault"));
        assert!(back.description.contains("r-1"));
        assert_eq!(back.error_code.as_deref(), Some("ResourceUnknown"));
    }

    #[test]
    fn soap_fault_carries_the_structure() {
        let f = BaseFault::invalid_property(SimInstant(9), "cv");
        let soap = f.to_soap_fault();
        let back = BaseFault::from_soap_fault(&soap).unwrap();
        assert_eq!(back, f);
        assert!(soap.reason.contains("cv"));
    }

    #[test]
    fn plain_soap_fault_has_no_base_fault() {
        assert!(BaseFault::from_soap_fault(&Fault::server("plain")).is_none());
    }

    #[test]
    fn termination_rejected_shape() {
        let f = BaseFault::termination_rejected(SimInstant(2), "in the past");
        assert!(f.is(ns::WSRF_RL, "TerminationTimeChangeRejectedFault"));
    }
}
