//! The WS-Resource document model.
//!
//! "Internally, WSRF.NET models Resources as XML documents that can be
//! persisted to various backend stores" (§3.1). A [`ResourceDocument`] is
//! that document plus its id; child elements of the root are the resource's
//! data members, and the resource-properties document is a *view* of them
//! ("typically not equivalent to the state", §2.1) assembled by the owning
//! service.

use ogsa_xml::{Element, QName};

/// One WS-Resource: id plus state document.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDocument {
    pub id: String,
    pub doc: Element,
}

impl ResourceDocument {
    pub fn new(id: impl Into<String>, doc: Element) -> Self {
        ResourceDocument { id: id.into(), doc }
    }

    /// Read a data member (`[Resource]`-annotated field, in WSRF.NET's
    /// attribute model): the text of the named child element.
    pub fn member(&self, name: &str) -> Option<&str> {
        self.doc.child_text(name)
    }

    /// Typed read of a data member.
    pub fn member_parse<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.doc.child_parse(name)
    }

    /// Write a data member, replacing any existing element of that name.
    pub fn set_member(&mut self, name: &str, value: impl Into<String>) {
        let qname = QName::local(name);
        self.doc.remove_children(&qname);
        self.doc
            .add_child(Element::text_element(name, value.into()));
    }

    /// All property elements with the given local name (for multi-valued
    /// properties like a directory's file list).
    pub fn members_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.doc
            .child_elements()
            .filter(move |e| &*e.name.local == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> ResourceDocument {
        ResourceDocument::new(
            "c-1",
            Element::new("CounterResource").with_child(Element::text_element("cv", "0")),
        )
    }

    #[test]
    fn member_read_write() {
        let mut r = counter();
        assert_eq!(r.member_parse::<i64>("cv"), Some(0));
        r.set_member("cv", "41");
        assert_eq!(r.member_parse::<i64>("cv"), Some(41));
        assert_eq!(r.doc.children_named(&QName::local("cv")).count(), 1);
    }

    #[test]
    fn set_member_adds_when_absent() {
        let mut r = counter();
        r.set_member("owner", "alice");
        assert_eq!(r.member("owner"), Some("alice"));
    }

    #[test]
    fn multi_valued_members() {
        let mut r = counter();
        r.doc.add_child(Element::text_element("file", "a.dat"));
        r.doc.add_child(Element::text_element("file", "b.dat"));
        let files: Vec<_> = r.members_named("file").map(|e| e.text()).collect();
        assert_eq!(files, ["a.dat", "b.dat"]);
    }
}
