//! The WSRF.NET programming model: `ServiceBase`, the wrapper service, and
//! the port-type aggregator.
//!
//! In WSRF.NET a "wrapper service ... automatically resolve\[s\] the execution
//! context specified by an EndpointReference": before the user method runs,
//! the resource named by the EPR is loaded from the database; afterwards it
//! is stored back. Spec-defined port types are "imported" declaratively and
//! the PortTypeAggregator emits the deployable service. Here:
//!
//! * [`ServiceBase`] owns the resource store (with the write-through cache
//!   that makes WSRF.NET's `Set` fast) and provides the library-level
//!   `Create()` that the WSRF specs famously do not define.
//! * [`WsrfService`] is the user-code trait (custom WebMethods + the
//!   resource-properties *view* + destroy hooks).
//! * [`WsrfServiceHost`] is the aggregated, deployable service: it
//!   dispatches imported port-type operations itself and forwards the rest
//!   to user code.

use std::collections::HashSet;
use std::sync::Arc;

use ogsa_addressing::EndpointReference;
use ogsa_container::{Container, Operation, OperationContext, WebService};
use ogsa_sim::{DetRng, SimDuration};
use ogsa_soap::Fault;
use ogsa_xml::{ns, Element, QName};
use ogsa_xmldb::ResourceCache;

use crate::faults::BaseFault;
use crate::lifetime::{self, TerminationTime};
use crate::properties;
use crate::resource::ResourceDocument;

/// The spec-defined port types a WSRF service can import (the
/// PortTypeAggregator's menu).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortType {
    GetResourceProperty,
    GetMultipleResourceProperties,
    SetResourceProperties,
    QueryResourceProperties,
    /// WS-ResourceLifetime immediate destruction (`Destroy`).
    ImmediateResourceTermination,
    /// WS-ResourceLifetime scheduled destruction (`SetTerminationTime` +
    /// lifetime resource properties).
    ScheduledResourceTermination,
}

impl PortType {
    /// Everything — the typical WSRF.NET deployment.
    pub fn all() -> HashSet<PortType> {
        [
            PortType::GetResourceProperty,
            PortType::GetMultipleResourceProperties,
            PortType::SetResourceProperties,
            PortType::QueryResourceProperties,
            PortType::ImmediateResourceTermination,
            PortType::ScheduledResourceTermination,
        ]
        .into_iter()
        .collect()
    }
}

/// User code: the part of a WSRF service its author writes.
pub trait WsrfService: Send + Sync + 'static {
    /// Service-specific WebMethods (e.g. the counter's `create`). Called
    /// when no imported port type matches the action.
    fn handle_custom(
        &self,
        op: &Operation,
        ctx: &OperationContext,
        base: &ServiceBase,
    ) -> Result<Element, Fault>;

    /// Assemble the resource-properties *view* of a resource ("a view or
    /// projection of the state ... typically not equivalent", §2.1).
    /// Default: the raw state document. Computed properties (WSRF.NET's
    /// `[ResourceProperty]` getters) are added by overriding this.
    fn resource_properties(&self, res: &ResourceDocument, _ctx: &OperationContext) -> Element {
        res.doc.clone()
    }

    /// Called before a resource is destroyed (explicitly or by scheduled
    /// termination) — where the ExecService kills the running job.
    fn on_destroy(&self, _res: &ResourceDocument, _ctx: &OperationContext) {}

    /// Called after `SetResourceProperties` commits — where the counter
    /// service raises its `CounterValueChanged` notification.
    fn on_properties_changed(&self, _res: &ResourceDocument, _ctx: &OperationContext) {}
}

/// The wrapper-service core: resource storage, id minting, create/load/save.
#[derive(Clone)]
pub struct ServiceBase {
    path: String,
    store: ResourceCache,
    rng: DetRng,
}

impl ServiceBase {
    /// Build a base for the service at `path` inside `container`, with the
    /// write-through cache on (pass `false` to ablate it).
    pub fn new(container: &Container, path: &str, cache_enabled: bool) -> Self {
        let collection = container.db().collection(&format!("wsrf:{path}"));
        let hit = SimDuration::from_micros(container.model().cache_hit_us);
        ServiceBase {
            path: path.to_owned(),
            store: ResourceCache::new(collection, hit, cache_enabled),
            rng: DetRng::seeded(0x5157 ^ path.len() as u64),
        }
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    pub fn store(&self) -> &ResourceCache {
        &self.store
    }

    /// Key in the container's lifetime manager for a resource id.
    pub fn lifetime_key(&self, id: &str) -> String {
        format!("{}#{id}", self.path)
    }

    /// The WSRF.NET `ServiceBase.Create()` library method: place a new
    /// resource in the backing store and mint its EPR. *How the service
    /// exposes this is up to the service author* (§3.1) — it is not a wire
    /// operation here, exactly as in WSRF.NET.
    pub fn create(&self, ctx: &OperationContext, doc: Element) -> Result<ResourceDocument, Fault> {
        let id = self.rng.guid();
        self.create_with_id(ctx, &id, doc)
    }

    /// `ServiceBase.Create()` for a whole batch: mint `count` resources, each
    /// initialised to `doc`, in one store transaction. The insert-heavy
    /// `Create` path is what the throughput harness hammers, and Xindice-era
    /// stores amortise the per-transaction overhead (connection, commit,
    /// index flush) across the batch, so this is much cheaper than `count`
    /// independent `create` calls.
    pub fn create_batch(
        &self,
        _ctx: &OperationContext,
        count: usize,
        doc: Element,
    ) -> Result<Vec<ResourceDocument>, Fault> {
        let entries: Vec<(String, Element)> =
            (0..count).map(|_| (self.rng.guid(), doc.clone())).collect();
        self.store
            .insert_many(entries.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(entries
            .into_iter()
            .map(|(id, doc)| ResourceDocument::new(&id, doc))
            .collect())
    }

    /// Create with a caller-chosen id (the Account service keys accounts by
    /// DN, for instance).
    pub fn create_with_id(
        &self,
        _ctx: &OperationContext,
        id: &str,
        doc: Element,
    ) -> Result<ResourceDocument, Fault> {
        self.store
            .insert(id, doc.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(ResourceDocument::new(id, doc))
    }

    /// Register a freshly-created resource for scheduled termination.
    pub fn schedule_termination(&self, ctx: &OperationContext, id: &str, initial: TerminationTime) {
        let store = self.store.clone();
        let rid = id.to_owned();
        ctx.lifetime().register(
            &self.lifetime_key(id),
            initial.as_option(),
            Arc::new(move |_key| {
                store.remove(&rid);
            }),
        );
    }

    /// Load the resource the request EPR names (the wrapper service's
    /// pre-invocation step).
    pub fn load(&self, ctx: &OperationContext, id: &str) -> Result<ResourceDocument, Fault> {
        match self.store.get(id) {
            Some(doc) => Ok(ResourceDocument::new(id, doc)),
            None => Err(BaseFault::resource_unknown(ctx.clock().now(), id).to_soap_fault()),
        }
    }

    /// Store the resource back (the wrapper service's post-invocation step).
    pub fn save(&self, _ctx: &OperationContext, res: &ResourceDocument) -> Result<(), Fault> {
        self.store
            .update(&res.id, res.doc.clone())
            .map_err(|e| Fault::server(e.to_string()))
    }

    /// Remove a resource from store and lifetime tracking.
    pub fn destroy(&self, ctx: &OperationContext, id: &str) -> bool {
        ctx.lifetime().deregister(&self.lifetime_key(id));
        self.store.remove(id).is_some()
    }

    /// EPR for a resource of this service inside `ctx`'s container.
    pub fn resource_epr(&self, ctx: &OperationContext, id: &str) -> EndpointReference {
        ctx.own_resource_epr(id)
    }
}

/// The aggregated deployable service (PortTypeAggregator output).
pub struct WsrfServiceHost<S: WsrfService> {
    base: ServiceBase,
    service: Arc<S>,
    imported: HashSet<PortType>,
}

impl<S: WsrfService> WsrfServiceHost<S> {
    /// Aggregate `service` with the given imported port types.
    pub fn new(base: ServiceBase, service: Arc<S>, imported: HashSet<PortType>) -> Self {
        WsrfServiceHost {
            base,
            service,
            imported,
        }
    }

    /// Aggregate and deploy into `container` at the base's path; returns the
    /// service EPR.
    pub fn deploy(
        container: &Container,
        path: &str,
        service: Arc<S>,
        imported: HashSet<PortType>,
        cache_enabled: bool,
    ) -> (EndpointReference, ServiceBase) {
        let base = ServiceBase::new(container, path, cache_enabled);
        let host = WsrfServiceHost::new(base.clone(), service, imported);
        let epr = container.deploy(path, Arc::new(host));
        (epr, base)
    }

    fn rp_view(&self, res: &ResourceDocument, ctx: &OperationContext) -> Element {
        let mut doc = self.service.resource_properties(res, ctx);
        if self
            .imported
            .contains(&PortType::ScheduledResourceTermination)
        {
            let termination = ctx
                .lifetime()
                .termination(&self.base.lifetime_key(&res.id))
                .map(|t| match t {
                    Some(instant) => TerminationTime::At(instant),
                    None => TerminationTime::Never,
                })
                .unwrap_or(TerminationTime::Never);
            for p in lifetime::lifetime_properties(ctx.clock().now(), termination) {
                doc.add_child(p);
            }
        }
        doc
    }

    fn ported(&self, pt: PortType, op: &Operation) -> Result<(), Fault> {
        if self.imported.contains(&pt) {
            Ok(())
        } else {
            Err(Fault::client(format!(
                "port type for action {} is not imported by this service",
                op.action
            )))
        }
    }
}

impl<S: WsrfService> WebService for WsrfServiceHost<S> {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault> {
        let now = ctx.clock().now();
        let rp = |local: &str| QName::new(ns::WSRF_RP, local);
        match op.action_name() {
            "GetResourceProperty" => {
                self.ported(PortType::GetResourceProperty, op)?;
                let id = op.require_resource_id()?;
                let res = self.base.load(ctx, id)?;
                let doc = self.rp_view(&res, ctx);
                let hits = properties::get_property(&doc, op.body.text().trim(), now)
                    .map_err(|f| f.to_soap_fault())?;
                Ok(Element::new(rp("GetResourcePropertyResponse"))
                    .with_children(hits.into_iter().cloned()))
            }
            "GetMultipleResourceProperties" => {
                self.ported(PortType::GetMultipleResourceProperties, op)?;
                let id = op.require_resource_id()?;
                let res = self.base.load(ctx, id)?;
                let doc = self.rp_view(&res, ctx);
                let mut out = Element::new(rp("GetMultipleResourcePropertiesResponse"));
                for want in op.body.child_elements() {
                    let hits = properties::get_property(&doc, want.text().trim(), now)
                        .map_err(|f| f.to_soap_fault())?;
                    for h in hits {
                        out.add_child(h.clone());
                    }
                }
                Ok(out)
            }
            "SetResourceProperties" => {
                self.ported(PortType::SetResourceProperties, op)?;
                let id = op.require_resource_id()?;
                let mut res = self.base.load(ctx, id)?;
                let components = properties::parse_set_request(&op.body);
                properties::apply_set(&mut res.doc, &components);
                self.base.save(ctx, &res)?;
                self.service.on_properties_changed(&res, ctx);
                Ok(Element::new(rp("SetResourcePropertiesResponse")))
            }
            "QueryResourceProperties" => {
                self.ported(PortType::QueryResourceProperties, op)?;
                let id = op.require_resource_id()?;
                let res = self.base.load(ctx, id)?;
                let doc = self.rp_view(&res, ctx);
                let (dialect, expr) = properties::parse_query_request(&op.body)
                    .ok_or_else(|| Fault::client("malformed QueryResourceProperties"))?;
                if dialect != properties::XPATH_DIALECT {
                    return Err(Fault::client(format!("unknown query dialect {dialect}")));
                }
                let results = properties::query(&doc, &expr, now).map_err(|f| f.to_soap_fault())?;
                Ok(Element::new(rp("QueryResourcePropertiesResponse")).with_children(results))
            }
            "Destroy" => {
                self.ported(PortType::ImmediateResourceTermination, op)?;
                let id = op.require_resource_id()?;
                let res = self.base.load(ctx, id)?;
                self.service.on_destroy(&res, ctx);
                self.base.destroy(ctx, id);
                Ok(lifetime::destroy_response())
            }
            "SetTerminationTime" => {
                self.ported(PortType::ScheduledResourceTermination, op)?;
                let id = op.require_resource_id()?;
                let _res = self.base.load(ctx, id)?;
                let requested = lifetime::parse_set_termination(&op.body)
                    .ok_or_else(|| Fault::client("malformed SetTerminationTime"))?;
                if let TerminationTime::At(t) = requested {
                    if t < now {
                        return Err(BaseFault::termination_rejected(
                            now,
                            "requested termination time is in the past",
                        )
                        .to_soap_fault());
                    }
                }
                let key = self.base.lifetime_key(id);
                if !ctx.lifetime().set_termination(&key, requested.as_option()) {
                    // Resource exists but was never scheduled: register now.
                    self.base.schedule_termination(ctx, id, requested);
                }
                Ok(lifetime::set_termination_response(requested, now))
            }
            _ => self.service.handle_custom(op, ctx, &self.base),
        }
    }
}
