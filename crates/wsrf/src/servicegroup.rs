//! WS-ServiceGroup: "how collections of Web services and/or WS-Resources
//! can be represented and managed" (§2.1).
//!
//! The group is itself a WS-Resource; each membership is an *entry*
//! WS-Resource holding the member's EPR and a content document. Membership
//! content rules constrain what content a member must advertise. Entries are
//! destroyed through the ordinary WS-ResourceLifetime `Destroy` — removing a
//! member is just destroying its entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ogsa_addressing::EndpointReference;
use ogsa_container::{Container, Operation, OperationContext};
use ogsa_soap::Fault;
use ogsa_xml::{ns, Element, QName};

use crate::service_base::{PortType, ServiceBase, WsrfService, WsrfServiceHost};

fn q(local: &str) -> QName {
    QName::new(ns::WSRF_SG, local)
}

/// The id of the singleton group resource.
pub const GROUP_RESOURCE_ID: &str = "group";

/// A WS-ServiceGroup service.
pub struct ServiceGroupService {
    /// Local names every entry's content document must contain.
    content_rules: Vec<String>,
    seq: AtomicU64,
}

impl ServiceGroupService {
    /// Deploy a service group at `path` with the given membership content
    /// rules. Returns (service EPR, group resource EPR).
    pub fn deploy(
        container: &Container,
        path: &str,
        content_rules: Vec<String>,
    ) -> (EndpointReference, EndpointReference) {
        let service = Arc::new(ServiceGroupService {
            content_rules,
            seq: AtomicU64::new(0),
        });
        let (service_epr, base) =
            WsrfServiceHost::deploy(container, path, service, PortType::all(), true);
        // The singleton group resource.
        let ctx = container.context_for(path);
        base.create_with_id(&ctx, GROUP_RESOURCE_ID, Element::new(q("ServiceGroupRP")))
            .expect("create group resource");
        let group_epr = EndpointReference::resource(service_epr.address.clone(), GROUP_RESOURCE_ID);
        (service_epr, group_epr)
    }

    /// Build an `Add` request body.
    pub fn add_request(member: &EndpointReference, content: Element) -> Element {
        Element::new(q("Add"))
            .with_child(member.to_element_named(q("MemberEPR")))
            .with_child(Element::new(q("Content")).with_child(content))
    }

    /// Parse the entry EPR out of an `AddResponse`.
    pub fn parse_add_response(resp: &Element) -> Option<EndpointReference> {
        let entry = resp.child_local("EntryEPR")?;
        EndpointReference::from_element(entry).ok()
    }

    fn check_content(&self, content: &Element) -> Result<(), Fault> {
        for rule in &self.content_rules {
            if content.find_local(rule).is_none() {
                return Err(Fault::client(format!(
                    "membership content rule violated: missing `{rule}`"
                )));
            }
        }
        Ok(())
    }
}

impl WsrfService for ServiceGroupService {
    fn handle_custom(
        &self,
        op: &Operation,
        ctx: &OperationContext,
        base: &ServiceBase,
    ) -> Result<Element, Fault> {
        match op.action_name() {
            "Add" => {
                let member_elem = op
                    .body
                    .child_local("MemberEPR")
                    .ok_or_else(|| Fault::client("Add without MemberEPR"))?;
                let member = EndpointReference::from_element(member_elem)
                    .map_err(|e| Fault::client(format!("bad MemberEPR: {e}")))?;
                let content = op
                    .body
                    .child_local("Content")
                    .cloned()
                    .unwrap_or_else(|| Element::new(q("Content")));
                self.check_content(&content)?;

                let entry_id = format!("entry-{}", self.seq.fetch_add(1, Ordering::Relaxed));
                let entry_doc = Element::new(q("Entry"))
                    .with_child(member.to_element_named(q("MemberServiceEPR")))
                    .with_child(content);
                base.create_with_id(ctx, &entry_id, entry_doc)?;
                let entry_epr = base.resource_epr(ctx, &entry_id);
                Ok(Element::new(q("AddResponse"))
                    .with_child(entry_epr.to_element_named(q("EntryEPR"))))
            }
            other => Err(Fault::client(format!(
                "unknown operation `{other}` on ServiceGroup"
            ))),
        }
    }

    /// The group resource's RP document lists every entry.
    fn resource_properties(
        &self,
        res: &crate::ResourceDocument,
        ctx: &OperationContext,
    ) -> Element {
        if res.id != GROUP_RESOURCE_ID {
            return res.doc.clone();
        }
        let mut doc = res.doc.clone();
        // Entries live in the same collection under entry- ids; the view is
        // computed dynamically, like the DataService's file list (§4.2.3).
        let collection = ctx
            .db()
            .collection(&format!("wsrf:{}", service_path_of(ctx)));
        for key in collection.keys() {
            if key.starts_with("entry-") {
                if let Some(entry) = collection.get(&key) {
                    doc.add_child(entry);
                }
            }
        }
        doc
    }
}

fn service_path_of(ctx: &OperationContext) -> String {
    // own_address is scheme://host/path — recover the path.
    let addr = ctx.own_address();
    let after_scheme = addr.split_once("://").map(|(_, r)| r).unwrap_or(addr);
    match after_scheme.find('/') {
        Some(i) => after_scheme[i..].to_owned(),
        None => "/".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::WsrfProxy;
    use ogsa_container::{InvokeError, Testbed};
    use ogsa_security::SecurityPolicy;

    fn setup() -> (Testbed, EndpointReference, EndpointReference) {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let (svc, group) =
            ServiceGroupService::deploy(&c, "/services/Registry", vec!["AppName".into()]);
        (tb, svc, group)
    }

    #[test]
    fn add_and_list_members() {
        let (tb, svc, group) = setup();
        let client = tb.client("host-b", "CN=admin", SecurityPolicy::None);
        let member = EndpointReference::service("http://host-b/services/Exec");
        let resp = client
            .invoke(
                &svc,
                "urn:sg/Add",
                ServiceGroupService::add_request(
                    &member,
                    Element::text_element("AppName", "blast"),
                ),
            )
            .unwrap();
        let entry_epr = ServiceGroupService::parse_add_response(&resp).unwrap();
        assert!(entry_epr.resource_id().unwrap().starts_with("entry-"));

        // The group RP document lists the entry.
        let proxy = WsrfProxy::new(&client);
        let entries = proxy.get_property(&group, "Entry").unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].find_local("AppName").is_some());
    }

    #[test]
    fn content_rules_are_enforced() {
        let (tb, svc, _group) = setup();
        let client = tb.client("host-b", "CN=admin", SecurityPolicy::None);
        let member = EndpointReference::service("http://host-b/services/Exec");
        let err = client
            .invoke(
                &svc,
                "urn:sg/Add",
                ServiceGroupService::add_request(
                    &member,
                    Element::text_element("WrongElement", "x"),
                ),
            )
            .unwrap_err();
        assert!(matches!(err, InvokeError::Fault(f) if f.reason.contains("AppName")));
    }

    #[test]
    fn destroying_an_entry_removes_the_member() {
        let (tb, svc, group) = setup();
        let client = tb.client("host-b", "CN=admin", SecurityPolicy::None);
        let member = EndpointReference::service("http://host-b/services/Exec");
        let resp = client
            .invoke(
                &svc,
                "urn:sg/Add",
                ServiceGroupService::add_request(
                    &member,
                    Element::text_element("AppName", "blast"),
                ),
            )
            .unwrap();
        let entry_epr = ServiceGroupService::parse_add_response(&resp).unwrap();

        let proxy = WsrfProxy::new(&client);
        proxy.destroy(&entry_epr).unwrap();
        let err = proxy.get_property(&group, "Entry").unwrap_err();
        // No entries left → InvalidResourcePropertyQNameFault.
        assert!(matches!(err, InvokeError::Fault(_)));
    }

    #[test]
    fn multiple_members_accumulate() {
        let (tb, svc, group) = setup();
        let client = tb.client("host-b", "CN=admin", SecurityPolicy::None);
        for i in 0..3 {
            let member = EndpointReference::service(format!("http://host-{i}/services/Exec"));
            client
                .invoke(
                    &svc,
                    "urn:sg/Add",
                    ServiceGroupService::add_request(
                        &member,
                        Element::text_element("AppName", format!("app{i}")),
                    ),
                )
                .unwrap();
        }
        let proxy = WsrfProxy::new(&client);
        assert_eq!(proxy.get_property(&group, "Entry").unwrap().len(), 3);
    }
}
