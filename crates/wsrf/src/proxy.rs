//! Client-side WSRF proxy: typed wrappers over the spec operations, the
//! analogue of the WSE-generated proxy classes the paper's clients used.
//! "Since WSRF does define the schemas for its method parameters, the
//! WSRF.NET proxies are able to automatically deserialize the XML" (§4.1.3)
//! — these helpers do that deserialisation.

use ogsa_addressing::EndpointReference;
use ogsa_container::{ClientAgent, InvokeError};
use ogsa_sim::SimInstant;
use ogsa_soap::Fault;
use ogsa_xml::Element;

use crate::lifetime::{self, TerminationTime};
use crate::properties::{self, SetComponent};

/// WS-Addressing action URIs for the WSRF operations.
pub mod actions {
    pub const GET_RP: &str = "http://docs.oasis-open.org/wsrf/rp/GetResourceProperty";
    pub const GET_MULTI_RP: &str =
        "http://docs.oasis-open.org/wsrf/rp/GetMultipleResourceProperties";
    pub const SET_RP: &str = "http://docs.oasis-open.org/wsrf/rp/SetResourceProperties";
    pub const QUERY_RP: &str = "http://docs.oasis-open.org/wsrf/rp/QueryResourceProperties";
    pub const DESTROY: &str = "http://docs.oasis-open.org/wsrf/rl/Destroy";
    pub const SET_TERMINATION: &str = "http://docs.oasis-open.org/wsrf/rl/SetTerminationTime";
}

/// A WSRF proxy bound to one client agent.
pub struct WsrfProxy<'a> {
    agent: &'a ClientAgent,
}

impl<'a> WsrfProxy<'a> {
    pub fn new(agent: &'a ClientAgent) -> Self {
        WsrfProxy { agent }
    }

    /// `GetResourceProperty`: fetch all values of one property.
    pub fn get_property(
        &self,
        resource: &EndpointReference,
        property: &str,
    ) -> Result<Vec<Element>, InvokeError> {
        let resp = self.agent.invoke(
            resource,
            actions::GET_RP,
            properties::get_property_request(property),
        )?;
        Ok(resp.child_elements().cloned().collect())
    }

    /// Single-valued property as text; faults if absent.
    pub fn get_property_text(
        &self,
        resource: &EndpointReference,
        property: &str,
    ) -> Result<String, InvokeError> {
        let values = self.get_property(resource, property)?;
        values
            .first()
            .map(|e| e.text())
            .ok_or_else(|| InvokeError::Fault(Fault::server("empty property response")))
    }

    /// `GetMultipleResourceProperties`.
    pub fn get_properties(
        &self,
        resource: &EndpointReference,
        names: &[&str],
    ) -> Result<Vec<Element>, InvokeError> {
        let resp = self.agent.invoke(
            resource,
            actions::GET_MULTI_RP,
            properties::get_multiple_request(names),
        )?;
        Ok(resp.child_elements().cloned().collect())
    }

    /// `SetResourceProperties` with arbitrary components.
    pub fn set_properties(
        &self,
        resource: &EndpointReference,
        components: &[SetComponent],
    ) -> Result<(), InvokeError> {
        self.agent.invoke(
            resource,
            actions::SET_RP,
            properties::set_properties_request(components),
        )?;
        Ok(())
    }

    /// Convenience: update a single text-valued property.
    pub fn set_property_text(
        &self,
        resource: &EndpointReference,
        name: &str,
        value: &str,
    ) -> Result<(), InvokeError> {
        self.set_properties(
            resource,
            &[SetComponent::Update(vec![Element::text_element(
                name, value,
            )])],
        )
    }

    /// `QueryResourceProperties` (XPath dialect).
    pub fn query(
        &self,
        resource: &EndpointReference,
        expression: &str,
    ) -> Result<Vec<Element>, InvokeError> {
        let resp = self.agent.invoke(
            resource,
            actions::QUERY_RP,
            properties::query_request(expression),
        )?;
        Ok(resp.child_elements().cloned().collect())
    }

    /// `Destroy` the resource.
    pub fn destroy(&self, resource: &EndpointReference) -> Result<(), InvokeError> {
        self.agent
            .invoke(resource, actions::DESTROY, lifetime::destroy_request())?;
        Ok(())
    }

    /// `SetTerminationTime`; returns (new termination, service current time).
    pub fn set_termination_time(
        &self,
        resource: &EndpointReference,
        requested: TerminationTime,
    ) -> Result<(TerminationTime, SimInstant), InvokeError> {
        let resp = self.agent.invoke(
            resource,
            actions::SET_TERMINATION,
            lifetime::set_termination_request(requested),
        )?;
        lifetime::parse_set_termination_response(&resp).ok_or_else(|| {
            InvokeError::Fault(Fault::server("malformed SetTerminationTime response"))
        })
    }
}
