//! # ogsa-wsrf
//!
//! The WS-Resource Framework half of the paper's comparison, mirroring
//! WSRF.NET's architecture (§3.1):
//!
//! * [`properties`] — **WS-ResourceProperties**: resources are XML documents
//!   whose child elements are resource properties, queryable and modifiable
//!   through `GetResourceProperty`, `GetMultipleResourceProperties`,
//!   `SetResourceProperties` (Insert/Update/Delete) and
//!   `QueryResourceProperties` (XPath dialect).
//! * [`lifetime`] — **WS-ResourceLifetime**: `Destroy` and
//!   `SetTerminationTime` (scheduled termination), plus the `CurrentTime` /
//!   `TerminationTime` properties. ("Create" is *not* defined — the
//!   spec-level gap the paper calls out repeatedly.)
//! * [`servicegroup`] — **WS-ServiceGroup**: groups of member services /
//!   WS-Resources with membership content rules.
//! * [`faults`] — **WS-BaseFaults**: the standard structured fault format.
//! * [`service_base`] — the WSRF.NET "wrapper service" and programming
//!   model: a [`service_base::ServiceBase`] loads the WS-Resource named by
//!   the request EPR before user code runs and stores it back afterwards,
//!   exposes the library-level `Create()` the spec lacks, and aggregates
//!   imported port types like the PortTypeAggregator tool.

pub mod faults;
pub mod lifetime;
pub mod properties;
pub mod proxy;
pub mod resource;
pub mod service_base;
pub mod servicegroup;

pub use faults::BaseFault;
pub use lifetime::TerminationTime;
pub use proxy::WsrfProxy;
pub use resource::ResourceDocument;
pub use service_base::{PortType, ServiceBase, WsrfService, WsrfServiceHost};
pub use servicegroup::ServiceGroupService;
