//! WS-ResourceProperties: the document view, the four operations, and their
//! message formats.
//!
//! The same functions serve both sides of the wire: clients build request
//! bodies with the `*_request` constructors; the `ServiceBase` dispatcher
//! (see [`crate::service_base`]) parses them and applies the operation to
//! the resource-properties document.

use ogsa_xml::{ns, Element, QName, XPath, XPathContext};

use crate::faults::BaseFault;
use ogsa_sim::SimInstant;

/// The XPath 1.0 dialect URI for `QueryResourceProperties`.
pub const XPATH_DIALECT: &str = "http://www.w3.org/TR/1999/REC-xpath-19991116";

fn q(local: &str) -> QName {
    QName::new(ns::WSRF_RP, local)
}

// ------------------------------------------------------------ requests ----

/// `wsrp:GetResourceProperty` request body.
pub fn get_property_request(property: &str) -> Element {
    Element::text_element(q("GetResourceProperty"), property)
}

/// `wsrp:GetMultipleResourceProperties` request body.
pub fn get_multiple_request(properties: &[&str]) -> Element {
    let mut e = Element::new(q("GetMultipleResourceProperties"));
    for p in properties {
        e.add_child(Element::text_element(q("ResourceProperty"), *p));
    }
    e
}

/// One component of a `SetResourceProperties` request.
#[derive(Debug, Clone, PartialEq)]
pub enum SetComponent {
    /// Add new property elements.
    Insert(Vec<Element>),
    /// Replace all properties sharing each element's name.
    Update(Vec<Element>),
    /// Remove all properties with this local name.
    Delete(String),
}

/// `wsrp:SetResourceProperties` request body.
pub fn set_properties_request(components: &[SetComponent]) -> Element {
    let mut e = Element::new(q("SetResourceProperties"));
    for c in components {
        match c {
            SetComponent::Insert(elems) => {
                e.add_child(Element::new(q("Insert")).with_children(elems.iter().cloned()));
            }
            SetComponent::Update(elems) => {
                e.add_child(Element::new(q("Update")).with_children(elems.iter().cloned()));
            }
            SetComponent::Delete(name) => {
                e.add_child(Element::new(q("Delete")).with_attr("resourceProperty", name.clone()));
            }
        }
    }
    e
}

/// `wsrp:QueryResourceProperties` request body (XPath dialect).
pub fn query_request(expression: &str) -> Element {
    Element::new(q("QueryResourceProperties")).with_child(
        Element::new(q("QueryExpression"))
            .with_attr("Dialect", XPATH_DIALECT)
            .with_text(expression),
    )
}

/// Parse the components back out of a `SetResourceProperties` body.
pub fn parse_set_request(body: &Element) -> Vec<SetComponent> {
    let mut out = Vec::new();
    for child in body.child_elements() {
        match &*child.name.local {
            "Insert" => out.push(SetComponent::Insert(
                child.child_elements().cloned().collect(),
            )),
            "Update" => out.push(SetComponent::Update(
                child.child_elements().cloned().collect(),
            )),
            "Delete" => {
                if let Some(name) = child.attr_local("resourceProperty") {
                    out.push(SetComponent::Delete(name.to_owned()));
                }
            }
            _ => {}
        }
    }
    out
}

// ----------------------------------------------------------- operations ----

/// Apply `GetResourceProperty`: all child elements of the RP document whose
/// local name matches. Empty + unknown name → `InvalidResourcePropertyQNameFault`.
#[allow(clippy::result_large_err)]
pub fn get_property<'a>(
    rp_doc: &'a Element,
    property: &str,
    now: SimInstant,
) -> Result<Vec<&'a Element>, BaseFault> {
    let hits: Vec<&Element> = rp_doc
        .child_elements()
        .filter(|e| &*e.name.local == property)
        .collect();
    if hits.is_empty() {
        return Err(BaseFault::invalid_property(now, property));
    }
    Ok(hits)
}

/// Apply a `SetResourceProperties` request to the resource document.
pub fn apply_set(doc: &mut Element, components: &[SetComponent]) {
    for c in components {
        match c {
            SetComponent::Insert(elems) => {
                for e in elems {
                    doc.add_child(e.clone());
                }
            }
            SetComponent::Update(elems) => {
                for e in elems {
                    // Replace every existing element with the same local
                    // name, preserving Update semantics for multi-valued
                    // properties.
                    let name = e.name.clone();
                    doc.children.retain(|n| {
                        !matches!(n, ogsa_xml::Node::Element(el) if el.name.local == name.local)
                    });
                    doc.add_child(e.clone());
                }
            }
            SetComponent::Delete(name) => {
                doc.children.retain(|n| {
                    !matches!(n, ogsa_xml::Node::Element(el) if &*el.name.local == name.as_str())
                });
            }
        }
    }
}

/// Apply `QueryResourceProperties`: evaluate the XPath against the RP doc.
#[allow(clippy::result_large_err)]
pub fn query(
    rp_doc: &Element,
    expression: &str,
    now: SimInstant,
) -> Result<Vec<Element>, BaseFault> {
    let xp = XPath::compile(expression)
        .map_err(|e| BaseFault::new(now, format!("invalid query expression: {e}")))?;
    match xp.evaluate(rp_doc, &XPathContext::new()) {
        Ok(ogsa_xml::XPathValue::Nodes(nodes)) => Ok(nodes.into_iter().cloned().collect()),
        Ok(ogsa_xml::XPathValue::Strings(strings)) => Ok(strings
            .into_iter()
            .map(|s| Element::text_element(q("QueryResult"), s))
            .collect()),
        Ok(other) => Ok(vec![Element::text_element(
            q("QueryResult"),
            other.string_value(),
        )]),
        Err(e) => Err(BaseFault::new(now, format!("query failed: {e}"))),
    }
}

/// Extract the dialect + expression from a `QueryResourceProperties` body.
pub fn parse_query_request(body: &Element) -> Option<(String, String)> {
    let qe = body.child_local("QueryExpression")?;
    Some((
        qe.attr_local("Dialect").unwrap_or_default().to_owned(),
        qe.text(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rp_doc() -> Element {
        Element::new("CounterProperties")
            .with_child(Element::text_element("cv", "5"))
            .with_child(Element::text_element("owner", "alice"))
            .with_child(Element::text_element("tag", "a"))
            .with_child(Element::text_element("tag", "b"))
    }

    #[test]
    fn get_property_returns_all_matches() {
        let doc = rp_doc();
        let hits = get_property(&doc, "tag", SimInstant(0)).unwrap();
        assert_eq!(hits.len(), 2);
        let hits = get_property(&doc, "cv", SimInstant(0)).unwrap();
        assert_eq!(hits[0].text(), "5");
    }

    #[test]
    fn get_unknown_property_faults() {
        let doc = rp_doc();
        let fault = get_property(&doc, "ghost", SimInstant(0)).unwrap_err();
        assert!(fault.is(ns::WSRF_RP, "InvalidResourcePropertyQNameFault"));
    }

    #[test]
    fn set_update_replaces_all_same_named() {
        let mut doc = rp_doc();
        apply_set(
            &mut doc,
            &[SetComponent::Update(vec![Element::text_element(
                "tag", "z",
            )])],
        );
        let tags: Vec<_> = doc
            .child_elements()
            .filter(|e| &*e.name.local == "tag")
            .map(|e| e.text())
            .collect();
        assert_eq!(tags, ["z"]);
    }

    #[test]
    fn set_insert_appends() {
        let mut doc = rp_doc();
        apply_set(
            &mut doc,
            &[SetComponent::Insert(vec![Element::text_element(
                "tag", "c",
            )])],
        );
        assert_eq!(
            doc.child_elements()
                .filter(|e| &*e.name.local == "tag")
                .count(),
            3
        );
    }

    #[test]
    fn set_delete_removes_all() {
        let mut doc = rp_doc();
        apply_set(&mut doc, &[SetComponent::Delete("tag".into())]);
        assert_eq!(
            doc.child_elements()
                .filter(|e| &*e.name.local == "tag")
                .count(),
            0
        );
        assert!(doc.child_text("cv").is_some());
    }

    #[test]
    fn set_request_roundtrip() {
        let components = vec![
            SetComponent::Insert(vec![Element::text_element("x", "1")]),
            SetComponent::Update(vec![Element::text_element("cv", "9")]),
            SetComponent::Delete("owner".into()),
        ];
        let body = set_properties_request(&components);
        assert_eq!(parse_set_request(&body), components);
    }

    #[test]
    fn query_selects_nodes() {
        let doc = rp_doc();
        let out = query(&doc, "/CounterProperties/tag", SimInstant(0)).unwrap();
        assert_eq!(out.len(), 2);
        let out = query(&doc, "count(/CounterProperties/tag)", SimInstant(0)).unwrap();
        assert_eq!(out[0].text(), "2");
    }

    #[test]
    fn bad_query_faults() {
        let doc = rp_doc();
        assert!(query(&doc, "///", SimInstant(0)).is_err());
    }

    #[test]
    fn query_request_roundtrip() {
        let body = query_request("/a/b");
        let (dialect, expr) = parse_query_request(&body).unwrap();
        assert_eq!(dialect, XPATH_DIALECT);
        assert_eq!(expr, "/a/b");
    }

    #[test]
    fn get_multiple_request_shape() {
        let body = get_multiple_request(&["cv", "owner"]);
        let names: Vec<_> = body.child_elements().map(|e| e.text()).collect();
        assert_eq!(names, ["cv", "owner"]);
    }
}
