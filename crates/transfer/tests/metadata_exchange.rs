//! WS-MetadataExchange over WS-Transfer: the §3.2 schema-discovery fix,
//! end to end.

use std::sync::Arc;

use ogsa_container::{InvokeError, Testbed};
use ogsa_security::SecurityPolicy;
use ogsa_transfer::{DefaultTransferLogic, ResourceSchema, TransferProxy, TransferService};
use ogsa_xml::Element;

fn counter_schema() -> ResourceSchema {
    ResourceSchema::new("counter").with_field("value", "integer")
}

#[test]
fn client_discovers_schema_instead_of_hardcoding() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) = TransferService::deploy_with_metadata(
        &container,
        "/services/Counter",
        Arc::new(DefaultTransferLogic),
        vec![counter_schema()],
    );
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);

    // Discovery replaces the paper's "hard-coding of common schemas within
    // the client and service".
    let schemas = proxy.get_metadata(&factory).unwrap();
    assert_eq!(schemas.len(), 1);
    let schema = &schemas[0];
    assert_eq!(schema.root, "counter");

    // Build a conforming representation *from the discovered schema*.
    let rep = Element::new(schema.root.as_str()).with_child(Element::text_element("value", "7"));
    schema.validate(&rep).expect("conforms");
    let (resource, _) = proxy.create(&factory, rep).unwrap();

    // And validate what comes back.
    let fetched = proxy.get(&resource).unwrap();
    schema
        .validate(&fetched)
        .expect("server representation conforms");
}

#[test]
fn drift_is_detected_before_it_corrupts_state() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) = TransferService::deploy_with_metadata(
        &container,
        "/services/Counter",
        Arc::new(DefaultTransferLogic),
        vec![counter_schema()],
    );
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);
    let schema = &proxy.get_metadata(&factory).unwrap()[0];

    // The drifted representation from `crud_flow.rs`'s silent-drift test is
    // now caught *client-side, before the wire*.
    let drifted = Element::new("acct").with_child(Element::text_element("bal", "10"));
    assert!(schema.validate(&drifted).is_err());
}

#[test]
fn services_without_metadata_keep_the_papers_behaviour() {
    // A bare WS-Transfer service still has "no elegant mechanism".
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) = TransferService::deploy(
        &container,
        "/services/Plain",
        Arc::new(DefaultTransferLogic),
    );
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let err = TransferProxy::new(&client)
        .get_metadata(&factory)
        .unwrap_err();
    assert!(matches!(err, InvokeError::Fault(f) if f.reason.contains("does not define")));
}

#[test]
fn multiple_resource_types_advertise_multiple_schemas() {
    // The unified-service style (§2.3) with one schema per resource type.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) = TransferService::deploy_with_metadata(
        &container,
        "/services/Unified",
        Arc::new(DefaultTransferLogic),
        vec![
            counter_schema(),
            ResourceSchema::new("job")
                .with_field("application", "string")
                .with_optional("priority", "integer"),
        ],
    );
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let schemas = TransferProxy::new(&client).get_metadata(&factory).unwrap();
    let roots: Vec<_> = schemas.iter().map(|s| s.root.as_str()).collect();
    assert_eq!(roots, ["counter", "job"]);
}
