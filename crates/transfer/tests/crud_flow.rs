//! End-to-end WS-Transfer tests over the simulated wire.

use std::sync::Arc;

use ogsa_addressing::EndpointReference;
use ogsa_container::{InvokeError, Operation, OperationContext, Testbed};
use ogsa_security::SecurityPolicy;
use ogsa_sim::DetRng;
use ogsa_soap::Fault;
use ogsa_transfer::{
    CreateOutcome, DefaultTransferLogic, TransferLogic, TransferProxy, TransferService,
};
use ogsa_xml::Element;
use ogsa_xmldb::Collection;

fn default_setup() -> (Testbed, EndpointReference) {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (epr, _store) = TransferService::deploy(
        &container,
        "/services/Store",
        Arc::new(DefaultTransferLogic),
    );
    (tb, epr)
}

#[test]
fn crud_lifecycle_over_the_wire() {
    let (tb, factory) = default_setup();
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);

    let (resource, modified) = proxy
        .create(&factory, Element::text_element("counter", "0"))
        .unwrap();
    // Default logic stores the representation unmodified.
    assert!(modified.is_none());
    // The minted name is a GUID embedded in the EPR.
    let id = resource.resource_id().unwrap();
    assert_eq!(id.len(), 36);

    let rep = proxy.get(&resource).unwrap();
    assert_eq!(rep.text(), "0");

    proxy
        .put(&resource, Element::text_element("counter", "41"))
        .unwrap();
    assert_eq!(proxy.get(&resource).unwrap().text(), "41");

    proxy.delete(&resource).unwrap();
    assert!(matches!(proxy.get(&resource), Err(InvokeError::Fault(_))));
    // Delete of a deleted resource faults too.
    assert!(matches!(
        proxy.delete(&resource),
        Err(InvokeError::Fault(_))
    ));
}

#[test]
fn put_performs_the_extra_read() {
    // The paper: "setting the counter's value, causes the old representation
    // ... to be read from the database and updated ... before being stored."
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) = TransferService::deploy(
        &container,
        "/services/Store",
        Arc::new(DefaultTransferLogic),
    );
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);
    let (resource, _) = proxy
        .create(&factory, Element::text_element("c", "0"))
        .unwrap();

    let reads_before = tb.db("host-a").stats().reads();
    let updates_before = tb.db("host-a").stats().updates();
    proxy
        .put(&resource, Element::text_element("c", "1"))
        .unwrap();
    assert_eq!(tb.db("host-a").stats().reads(), reads_before + 1);
    assert_eq!(tb.db("host-a").stats().updates(), updates_before + 1);
}

#[test]
fn fifth_operation_is_undefined() {
    let (tb, factory) = default_setup();
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let err = client
        .invoke(&factory, "urn:custom/Rename", Element::new("Rename"))
        .unwrap_err();
    assert!(matches!(err, InvokeError::Fault(f) if f.reason.contains("does not define")));
}

/// Logic whose Create modifies the representation (assigns a server-side
/// serial) and that serves an out-of-band resource.
struct CustomLogic;

impl TransferLogic for CustomLogic {
    fn create(
        &self,
        representation: Element,
        _op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
        rng: &DetRng,
    ) -> Result<CreateOutcome, Fault> {
        let id = rng.guid();
        let stored = representation.with_attr("serial", "srv-1");
        store
            .insert(&id, stored.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(CreateOutcome {
            id,
            stored: stored.clone(),
            modified: Some(stored),
        })
    }

    fn out_of_band(&self, id: &str, _ctx: &OperationContext) -> Option<Element> {
        (id == "legacy-7").then(|| Element::text_element("legacy", "out-of-band"))
    }
}

#[test]
fn create_may_modify_the_representation() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) =
        TransferService::deploy(&container, "/services/Custom", Arc::new(CustomLogic));
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);

    let (_resource, modified) = proxy.create(&factory, Element::new("thing")).unwrap();
    // The service returned the modified representation, per §3.2.
    assert_eq!(modified.unwrap().attr_local("serial"), Some("srv-1"));
}

#[test]
fn out_of_band_resources_are_gettable() {
    // "Our service-side implementation had to be a little more sophisticated
    // to deal with legitimate operations on resources ... for which a
    // corresponding Create() had not been previously issued" (§3.2).
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) =
        TransferService::deploy(&container, "/services/Custom", Arc::new(CustomLogic));
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);

    // Never Created through the service, yet addressable by EPR.
    let epr = EndpointReference::resource(factory.address.clone(), "legacy-7");
    assert_eq!(proxy.get(&epr).unwrap().text(), "out-of-band");
    // But unknown ids still fault.
    let ghost = EndpointReference::resource(factory.address.clone(), "legacy-8");
    assert!(proxy.get(&ghost).is_err());
}

#[test]
fn no_schema_means_drift_is_a_runtime_surprise() {
    // §3.2: clients hard-code schemas; a service that changes the element
    // names breaks clients only when they try to read the content.
    let (tb, factory) = default_setup();
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);

    // Client A writes a representation with one schema...
    let (resource, _) = proxy
        .create(
            &factory,
            Element::new("account").with_child(Element::text_element("balance", "10")),
        )
        .unwrap();
    // ...client B (another team) replaces it with a different shape; the
    // service (xsd:any) happily accepts.
    proxy
        .put(
            &resource,
            Element::new("acct").with_child(Element::text_element("bal", "10")),
        )
        .unwrap();
    // Client A's hard-coded accessor now silently returns nothing.
    let rep = proxy.get(&resource).unwrap();
    assert_eq!(rep.child_text("balance"), None);
}

#[test]
fn works_under_https_and_x509() {
    for policy in [SecurityPolicy::Https, SecurityPolicy::X509Sign] {
        let tb = Testbed::free();
        let container = tb.container("host-a", policy);
        let (factory, _) = TransferService::deploy(
            &container,
            "/services/Store",
            Arc::new(DefaultTransferLogic),
        );
        let client = tb.client("host-b", "CN=alice", policy);
        let proxy = TransferProxy::new(&client);
        let (resource, _) = proxy
            .create(&factory, Element::text_element("c", "5"))
            .unwrap();
        assert_eq!(proxy.get(&resource).unwrap().text(), "5");
        proxy.delete(&resource).unwrap();
    }
}

#[test]
fn multiple_resource_types_can_coexist_in_one_service() {
    // "WS-Transfer is silent on this issue, potentially allowing multiple
    // types of resources to be associated with a single service" (§2.3).
    let (tb, factory) = default_setup();
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let proxy = TransferProxy::new(&client);

    let (counter, _) = proxy
        .create(&factory, Element::text_element("counter", "1"))
        .unwrap();
    let (job, _) = proxy
        .create(
            &factory,
            Element::new("job").with_child(Element::text_element("app", "blast")),
        )
        .unwrap();
    assert_eq!(&*proxy.get(&counter).unwrap().name.local, "counter");
    assert_eq!(&*proxy.get(&job).unwrap().name.local, "job");
}
