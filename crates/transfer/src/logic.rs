//! The service-side semantics hooks.
//!
//! WS-Transfer deliberately leaves semantics to the service: "The service
//! may or may not modify the XML-based resource representation (parameter)
//! sent by the client" and "Depending on the semantic of Get(), it may run
//! query on database or pull out an overall document" (§3.2). The
//! [`TransferLogic`] trait is that extension surface; the
//! [`DefaultTransferLogic`] is the paper's default behaviour where "the
//! resource and its representation are equivalent".

use std::sync::Arc;

use ogsa_container::{Operation, OperationContext};
use ogsa_sim::DetRng;
use ogsa_soap::Fault;
use ogsa_xml::Element;
use ogsa_xmldb::Collection;

/// Result of a `Create`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateOutcome {
    /// The minted resource id (embedded into the returned EPR as a
    /// reference property).
    pub id: String,
    /// What to store.
    pub stored: Element,
    /// The representation to return, if modified from the client's input.
    pub modified: Option<Element>,
}

/// Per-service semantics for the four operations. All methods have
/// defaults implementing resource == representation over the store.
pub trait TransferLogic: Send + Sync + 'static {
    /// Mint an id for a new resource. Default: GUID ("by default, GUID",
    /// §3.2).
    fn mint_id(&self, _representation: &Element, rng: &DetRng) -> String {
        rng.guid()
    }

    /// Create semantics. Default: store the representation unmodified.
    fn create(
        &self,
        representation: Element,
        _op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
        rng: &DetRng,
    ) -> Result<CreateOutcome, Fault> {
        let id = self.mint_id(&representation, rng);
        store
            .insert(&id, representation.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(CreateOutcome {
            id,
            stored: representation,
            modified: None,
        })
    }

    /// Supply a representation for a resource that was never `Create`d
    /// through this service ("a resource ... created by an out of band
    /// mechanism. It can still be identified by EPR in Get(), Set(), and
    /// Delete()"). Default: none.
    fn out_of_band(&self, _id: &str, _ctx: &OperationContext) -> Option<Element> {
        None
    }

    /// Get semantics. Default: return the stored document verbatim.
    fn get(
        &self,
        id: &str,
        _op: &Operation,
        ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<Element, Fault> {
        match store.get(id) {
            Some(doc) => Ok(doc),
            None => self
                .out_of_band(id, ctx)
                .ok_or_else(|| Fault::client(format!("no resource `{id}`"))),
        }
    }

    /// Put semantics. The default reproduces the paper's unoptimised path:
    /// read the old representation from the database, then store the
    /// replacement — the extra read WSRF.NET's cache avoids.
    fn put(
        &self,
        id: &str,
        replacement: Element,
        _op: &Operation,
        ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<Option<Element>, Fault> {
        let _old = match store.get(id) {
            Some(doc) => doc,
            None => self
                .out_of_band(id, ctx)
                .ok_or_else(|| Fault::client(format!("no resource `{id}`")))?,
        };
        store.upsert(id, replacement);
        Ok(None)
    }

    /// Delete semantics. Default: remove the document. Services managing
    /// active entities decide here whether deleting the representation also
    /// terminates the entity (§3.2's Delete ambiguity).
    fn delete(
        &self,
        id: &str,
        _op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<(), Fault> {
        store
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| Fault::client(format!("no resource `{id}`")))
    }
}

/// Resource == representation, GUID naming — the paper's default.
pub struct DefaultTransferLogic;

impl TransferLogic for DefaultTransferLogic {}
