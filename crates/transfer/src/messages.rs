//! WS-Transfer message formats.

use ogsa_addressing::EndpointReference;
use ogsa_xml::{ns, Element, QName};

fn q(local: &str) -> QName {
    QName::new(ns::WXF, local)
}

/// WS-Addressing actions for the four operations.
pub mod actions {
    pub const GET: &str = "http://schemas.xmlsoap.org/ws/2004/09/transfer/Get";
    pub const PUT: &str = "http://schemas.xmlsoap.org/ws/2004/09/transfer/Put";
    pub const DELETE: &str = "http://schemas.xmlsoap.org/ws/2004/09/transfer/Delete";
    pub const CREATE: &str = "http://schemas.xmlsoap.org/ws/2004/09/transfer/Create";
}

/// `Get` has an empty body — the resource is named entirely by the EPR.
pub fn get_request() -> Element {
    Element::new(q("Get"))
}

/// `Put` carries the replacement representation.
pub fn put_request(representation: Element) -> Element {
    Element::new(q("Put")).with_child(representation)
}

/// `Delete` has an empty body.
pub fn delete_request() -> Element {
    Element::new(q("Delete"))
}

/// `Create` carries the initial representation (to the resource factory).
pub fn create_request(representation: Element) -> Element {
    Element::new(q("Create")).with_child(representation)
}

/// `CreateResponse`: the new resource's EPR, plus the representation if the
/// service modified it ("Create() returns a new resource representation to
/// the client if the resource representation is modified from the user's
/// input", §3.2).
pub fn create_response(epr: &EndpointReference, modified: Option<Element>) -> Element {
    let mut e =
        Element::new(q("CreateResponse")).with_child(epr.to_element_named(q("ResourceCreated")));
    if let Some(rep) = modified {
        e.add_child(Element::new(q("Representation")).with_child(rep));
    }
    e
}

/// Parse a `CreateResponse` into (EPR, optional modified representation).
pub fn parse_create_response(e: &Element) -> Option<(EndpointReference, Option<Element>)> {
    let epr = EndpointReference::from_element(e.child_local("ResourceCreated")?).ok()?;
    let rep = e
        .child_local("Representation")
        .and_then(|r| r.child_elements().next().cloned());
    Some((epr, rep))
}

/// Wrap a representation in a `GetResponse`.
pub fn get_response(representation: Element) -> Element {
    Element::new(q("GetResponse")).with_child(representation)
}

/// Unwrap a `GetResponse` (the representation is the single child).
pub fn parse_get_response(e: &Element) -> Option<Element> {
    e.child_elements().next().cloned()
}

/// `PutResponse`, optionally carrying the (possibly service-modified) new
/// representation.
pub fn put_response(modified: Option<Element>) -> Element {
    let mut e = Element::new(q("PutResponse"));
    if let Some(rep) = modified {
        e.add_child(rep);
    }
    e
}

/// `DeleteResponse` (empty).
pub fn delete_response() -> Element {
    Element::new(q("DeleteResponse"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_response_roundtrip_with_modification() {
        let epr = EndpointReference::resource("http://h/s", "r-1");
        let rep = Element::text_element("counter", "0");
        let resp = create_response(&epr, Some(rep.clone()));
        let (back_epr, back_rep) = parse_create_response(&resp).unwrap();
        assert_eq!(back_epr, epr);
        assert_eq!(back_rep, Some(rep));
    }

    #[test]
    fn create_response_roundtrip_unmodified() {
        let epr = EndpointReference::resource("http://h/s", "r-2");
        let resp = create_response(&epr, None);
        let (back_epr, back_rep) = parse_create_response(&resp).unwrap();
        assert_eq!(back_epr, epr);
        assert!(back_rep.is_none());
    }

    #[test]
    fn get_response_unwraps() {
        let rep = Element::text_element("doc", "x");
        assert_eq!(parse_get_response(&get_response(rep.clone())), Some(rep));
    }

    #[test]
    fn request_bodies_have_spec_names() {
        assert_eq!(&*get_request().name.local, "Get");
        assert!(get_request().name.in_ns(ns::WXF));
        assert_eq!(&*put_request(Element::new("r")).name.local, "Put");
        assert_eq!(&*create_request(Element::new("r")).name.local, "Create");
        assert_eq!(&*delete_request().name.local, "Delete");
    }
}
