//! # ogsa-transfer
//!
//! WS-Transfer (§2.2, §3.2): four operations — Create, Get, Put, Delete —
//! over resources addressed by EPR, with best-effort semantics and no
//! lifetime management ("there is no lifetime management functionality
//! since it is not defined in the spec").
//!
//! Faithful to the paper's implementation choices:
//!
//! * resources are XML documents in the Xindice-analogue database, named by
//!   a GUID minted at Create (overridable — the Grid-in-a-Box services name
//!   resources by user DN and filename);
//! * `Put` re-reads the old representation before storing the new one —
//!   the unoptimised path that makes WS-Transfer `Set` slower than
//!   WSRF.NET's cached `Set` in Figure 2;
//! * services may distinguish the *resource* from its *representation*
//!   (a running process vs its XML description) via [`TransferLogic`]
//!   hooks, including out-of-band resources that were never `Create`d
//!   through the service;
//! * there is no input/output schema: bodies are `xsd:any`, so clients
//!   hard-code expected shapes and drift is a runtime surprise, not a
//!   compile-time error (§3.2's third issue — exercised in the tests).

pub mod logic;
pub mod messages;
pub mod metadata;
pub mod proxy;
pub mod service;

pub use logic::{CreateOutcome, DefaultTransferLogic, TransferLogic};
pub use messages::actions;
pub use metadata::ResourceSchema;
pub use proxy::TransferProxy;
pub use service::TransferService;
