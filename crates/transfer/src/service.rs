//! The deployable WS-Transfer service.

use std::sync::Arc;

use ogsa_addressing::EndpointReference;
use ogsa_container::{Container, Operation, OperationContext, WebService};
use ogsa_sim::DetRng;
use ogsa_soap::Fault;
use ogsa_xml::Element;
use ogsa_xmldb::Collection;

use crate::logic::TransferLogic;
use crate::messages;

/// A WS-Transfer service: the four operations dispatched onto a
/// [`TransferLogic`]. Unlike the WSRF host there is no resource cache and no
/// lifetime management — matching the paper's implementation. Optionally
/// answers WS-MetadataExchange `GetMetadata` with its resource schemas
/// (the §3.2 discoverability extension).
pub struct TransferService<L: TransferLogic> {
    logic: Arc<L>,
    store: Arc<Collection>,
    rng: DetRng,
    schemas: Vec<crate::metadata::ResourceSchema>,
}

impl<L: TransferLogic> TransferService<L> {
    /// Deploy at `path` in `container`; resources live in the collection
    /// `wxf:{path}`. Returns (service EPR, resource collection).
    pub fn deploy(
        container: &Container,
        path: &str,
        logic: Arc<L>,
    ) -> (EndpointReference, Arc<Collection>) {
        Self::deploy_with_metadata(container, path, logic, Vec::new())
    }

    /// Deploy with WS-MetadataExchange schemas advertised via `GetMetadata`.
    pub fn deploy_with_metadata(
        container: &Container,
        path: &str,
        logic: Arc<L>,
        schemas: Vec<crate::metadata::ResourceSchema>,
    ) -> (EndpointReference, Arc<Collection>) {
        let store = container.db().collection(&format!("wxf:{path}"));
        let service = TransferService {
            logic,
            store: store.clone(),
            rng: DetRng::seeded(0x7746 ^ path.len() as u64),
            schemas,
        };
        let epr = container.deploy(path, Arc::new(service));
        (epr, store)
    }
}

impl<L: TransferLogic> WebService for TransferService<L> {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault> {
        match op.action_name() {
            "Create" => {
                // The factory receives the initial representation as the
                // single child of the Create body.
                let representation = op
                    .body
                    .child_elements()
                    .next()
                    .cloned()
                    .ok_or_else(|| Fault::client("Create without a representation"))?;
                let outcome = self
                    .logic
                    .create(representation, op, ctx, &self.store, &self.rng)?;
                let epr = ctx.own_resource_epr(&outcome.id);
                Ok(messages::create_response(&epr, outcome.modified))
            }
            "Get" => {
                let id = op.require_resource_id()?;
                let rep = self.logic.get(id, op, ctx, &self.store)?;
                Ok(messages::get_response(rep))
            }
            "Put" => {
                let id = op.require_resource_id()?;
                let replacement = op
                    .body
                    .child_elements()
                    .next()
                    .cloned()
                    .ok_or_else(|| Fault::client("Put without a replacement representation"))?;
                let modified = self.logic.put(id, replacement, op, ctx, &self.store)?;
                Ok(messages::put_response(modified))
            }
            "Delete" => {
                let id = op.require_resource_id()?;
                self.logic.delete(id, op, ctx, &self.store)?;
                Ok(messages::delete_response())
            }
            // WS-MetadataExchange: only when the deployment advertised
            // schemas; a bare WS-Transfer service keeps the paper's
            // "no elegant mechanism" behaviour.
            "Request" | "GetMetadata" if !self.schemas.is_empty() => {
                Ok(crate::metadata::metadata_response(&self.schemas))
            }
            other => Err(Fault::client(format!(
                "WS-Transfer service does not define `{other}`"
            ))),
        }
    }
}
