//! Client-side WS-Transfer proxy.
//!
//! "Since WS-Transfer deals in terms of raw XML, the arguments and return
//! values for the WS-Transfer proxy methods are arrays of XML elements"
//! (§4.1.3) — so, unlike the WSRF proxy, nothing here
//! deserialises into typed values: callers get [`Element`]s and must know
//! the schema out-of-band.

use ogsa_addressing::EndpointReference;
use ogsa_container::{ClientAgent, InvokeError};
use ogsa_soap::Fault;
use ogsa_xml::Element;

use crate::messages::{self, actions};

/// A WS-Transfer proxy bound to one client agent.
pub struct TransferProxy<'a> {
    agent: &'a ClientAgent,
}

impl<'a> TransferProxy<'a> {
    pub fn new(agent: &'a ClientAgent) -> Self {
        TransferProxy { agent }
    }

    /// `Create` against a resource factory; returns the new resource's EPR
    /// and the representation if the service modified it.
    pub fn create(
        &self,
        factory: &EndpointReference,
        representation: Element,
    ) -> Result<(EndpointReference, Option<Element>), InvokeError> {
        let resp = self.agent.invoke(
            factory,
            actions::CREATE,
            messages::create_request(representation),
        )?;
        messages::parse_create_response(&resp)
            .ok_or_else(|| InvokeError::Fault(Fault::server("malformed CreateResponse")))
    }

    /// `Get` a one-time snapshot of the representation.
    pub fn get(&self, resource: &EndpointReference) -> Result<Element, InvokeError> {
        let resp = self
            .agent
            .invoke(resource, actions::GET, messages::get_request())?;
        messages::parse_get_response(&resp)
            .ok_or_else(|| InvokeError::Fault(Fault::server("empty GetResponse")))
    }

    /// `Put` a replacement representation.
    pub fn put(
        &self,
        resource: &EndpointReference,
        replacement: Element,
    ) -> Result<Option<Element>, InvokeError> {
        let resp = self
            .agent
            .invoke(resource, actions::PUT, messages::put_request(replacement))?;
        let modified = resp.child_elements().next().cloned();
        Ok(modified)
    }

    /// `Delete` the resource.
    pub fn delete(&self, resource: &EndpointReference) -> Result<(), InvokeError> {
        self.agent
            .invoke(resource, actions::DELETE, messages::delete_request())?;
        Ok(())
    }

    /// WS-MetadataExchange `GetMetadata`: discover the service's resource
    /// schemas (empty if the service does not advertise any).
    pub fn get_metadata(
        &self,
        service: &EndpointReference,
    ) -> Result<Vec<crate::metadata::ResourceSchema>, InvokeError> {
        let resp = self.agent.invoke(
            service,
            crate::metadata::GET_METADATA_ACTION,
            Element::new(ogsa_xml::QName::new(crate::metadata::MEX_NS, "GetMetadata")),
        )?;
        Ok(crate::metadata::parse_metadata_response(&resp))
    }
}
