//! WS-MetadataExchange for WS-Transfer services — the paper's own
//! suggestion (§3.2): "We determined no elegant mechanism by which the
//! client could easily discover the schemas (although emerging
//! specifications like WS-MetadataExchange do seem promising)."
//!
//! A transfer service deployed with [`ResourceSchema`] metadata answers
//! `GetMetadata` with a declarative description of the representations it
//! understands; clients can fetch it once and [`ResourceSchema::validate`]
//! representations before (or after) the wire, turning §3.2's silent
//! schema drift into an explicit error.

use ogsa_xml::Element;

/// The WS-MetadataExchange (September 2004) namespace.
pub const MEX_NS: &str = "http://schemas.xmlsoap.org/ws/2004/09/mex";

/// The `GetMetadata` action URI.
pub const GET_METADATA_ACTION: &str =
    "http://schemas.xmlsoap.org/ws/2004/09/mex/GetMetadata/Request";

/// A field of a resource representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaField {
    /// Child element local name.
    pub name: String,
    /// `"string"` | `"integer"` | `"boolean"` — enough for the paper's
    /// payloads.
    pub datatype: String,
    pub required: bool,
}

/// A declarative schema for one resource type: root element name plus its
/// expected children. Deliberately much simpler than XSD — the point is
/// *discoverability*, not type-system completeness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSchema {
    pub root: String,
    pub fields: Vec<SchemaField>,
}

impl ResourceSchema {
    pub fn new(root: &str) -> Self {
        ResourceSchema {
            root: root.to_owned(),
            fields: Vec::new(),
        }
    }

    /// Add a required field (builder style).
    pub fn with_field(mut self, name: &str, datatype: &str) -> Self {
        self.fields.push(SchemaField {
            name: name.to_owned(),
            datatype: datatype.to_owned(),
            required: true,
        });
        self
    }

    /// Add an optional field (builder style).
    pub fn with_optional(mut self, name: &str, datatype: &str) -> Self {
        self.fields.push(SchemaField {
            name: name.to_owned(),
            datatype: datatype.to_owned(),
            required: false,
        });
        self
    }

    /// Check a representation against this schema.
    pub fn validate(&self, representation: &Element) -> Result<(), String> {
        if &*representation.name.local != self.root.as_str() {
            return Err(format!(
                "expected root <{}>, found <{}>",
                self.root, representation.name.local
            ));
        }
        for f in &self.fields {
            match representation.child_text(&f.name) {
                None if f.required => return Err(format!("missing required element <{}>", f.name)),
                None => {}
                Some(text) => {
                    let ok = match f.datatype.as_str() {
                        "integer" => text.trim().parse::<i64>().is_ok(),
                        "boolean" => text.trim().parse::<bool>().is_ok(),
                        _ => true,
                    };
                    if !ok {
                        return Err(format!(
                            "element <{}> is not a valid {}: `{text}`",
                            f.name, f.datatype
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serialise into the mex `Metadata` envelope body.
    pub fn to_element(&self) -> Element {
        let mut schema = Element::new("ResourceSchema").with_attr("root", self.root.clone());
        for f in &self.fields {
            schema.add_child(
                Element::new("Field")
                    .with_attr("name", f.name.clone())
                    .with_attr("type", f.datatype.clone())
                    .with_attr("required", f.required.to_string()),
            );
        }
        schema
    }

    pub fn from_element(e: &Element) -> Option<Self> {
        let root = e.attr_local("root")?.to_owned();
        let mut fields = Vec::new();
        for f in e.child_elements().filter(|c| &*c.name.local == "Field") {
            fields.push(SchemaField {
                name: f.attr_local("name")?.to_owned(),
                datatype: f.attr_local("type").unwrap_or("string").to_owned(),
                required: f.attr_local("required").unwrap_or("true") == "true",
            });
        }
        Some(ResourceSchema { root, fields })
    }
}

/// Build the `mex:Metadata` response body from a set of schemas.
pub fn metadata_response(schemas: &[ResourceSchema]) -> Element {
    let mut out = Element::new(ogsa_xml::QName::new(MEX_NS, "Metadata"));
    for s in schemas {
        out.add_child(
            Element::new(ogsa_xml::QName::new(MEX_NS, "MetadataSection"))
                .with_attr("Dialect", "urn:ogsa-grid:resource-schema")
                .with_child(s.to_element()),
        );
    }
    out
}

/// Parse schemas back out of a `mex:Metadata` body.
pub fn parse_metadata_response(e: &Element) -> Vec<ResourceSchema> {
    e.child_elements()
        .filter(|s| &*s.name.local == "MetadataSection")
        .filter_map(|s| s.child_elements().next())
        .filter_map(ResourceSchema::from_element)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_schema() -> ResourceSchema {
        ResourceSchema::new("counter")
            .with_field("value", "integer")
            .with_optional("label", "string")
    }

    #[test]
    fn schema_roundtrip() {
        let s = counter_schema();
        let back = ResourceSchema::from_element(&s.to_element()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn validation_accepts_conforming_documents() {
        let s = counter_schema();
        let ok = Element::new("counter").with_child(Element::text_element("value", "42"));
        assert!(s.validate(&ok).is_ok());
        let with_opt = Element::new("counter")
            .with_child(Element::text_element("value", "0"))
            .with_child(Element::text_element("label", "mine"));
        assert!(s.validate(&with_opt).is_ok());
    }

    #[test]
    fn validation_rejects_drift() {
        let s = counter_schema();
        // §3.2's drift scenarios, now loud instead of silent:
        let wrong_root = Element::new("acct").with_child(Element::text_element("value", "1"));
        assert!(s.validate(&wrong_root).unwrap_err().contains("root"));
        let missing = Element::new("counter");
        assert!(s.validate(&missing).unwrap_err().contains("value"));
        let wrong_type = Element::new("counter").with_child(Element::text_element("value", "lots"));
        assert!(s.validate(&wrong_type).unwrap_err().contains("integer"));
    }

    #[test]
    fn metadata_response_roundtrip() {
        let schemas = vec![
            counter_schema(),
            ResourceSchema::new("job").with_field("application", "string"),
        ];
        let body = metadata_response(&schemas);
        assert_eq!(parse_metadata_response(&body), schemas);
    }
}
