//! Admin-client tests: VO administration on both stacks, including the
//! authorisation boundary ("can be called only from the administrative
//! client").

use ogsa_container::Testbed;
use ogsa_gridbox::{GridScenario, TransferAdminClient, TransferGrid, WsrfAdminClient, WsrfGrid};
use ogsa_security::SecurityPolicy;

const ADMIN: &str = "CN=admin,O=UVA-VO";
const ALICE: &str = "CN=alice,O=UVA-VO";

#[test]
fn wsrf_admin_manages_accounts() {
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], &["blast"], &[]);
    let admin = WsrfAdminClient::new(&grid, tb.client("vo-host", ADMIN, SecurityPolicy::None));

    assert!(!admin.account_exists(ALICE).unwrap());
    admin.add_account(ALICE, &["submit"]).unwrap();
    assert!(admin.account_exists(ALICE).unwrap());

    // With an account, Alice can now reserve.
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    s.make_reservation().unwrap();

    admin.remove_account(ALICE).unwrap();
    assert!(!admin.account_exists(ALICE).unwrap());
}

#[test]
fn wsrf_admin_registers_additional_sites() {
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], &["blast"], &[ALICE]);
    let admin = WsrfAdminClient::new(&grid, tb.client("vo-host", ADMIN, SecurityPolicy::None));

    // Register a second (fictional) site offering a new application.
    admin
        .register_site(
            "site-x",
            "site-x-host",
            &["render"],
            &grid.sites[0].exec_epr,
            &grid.sites[0].data_epr,
        )
        .unwrap();
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    assert!(s.get_available_resource("render").is_ok());
}

#[test]
fn transfer_admin_manages_accounts_via_crud() {
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], &["blast"], &[]);
    let admin = TransferAdminClient::new(&grid, tb.client("vo-host", ADMIN, SecurityPolicy::None));

    assert!(!admin.account_exists(ALICE));
    let epr = admin.add_account(ALICE, &["submit", "stage"]).unwrap();
    // "the EPR containing the X509 DN of the user."
    assert_eq!(epr.resource_id(), Some(ALICE));
    assert!(admin.account_exists(ALICE));
    assert_eq!(admin.privileges(ALICE).unwrap(), ["submit", "stage"]);

    admin.remove_account(ALICE).unwrap();
    assert!(!admin.account_exists(ALICE));
}

#[test]
fn transfer_non_admin_cannot_administrate() {
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], &["blast"], &[ALICE]);
    // Alice impersonates an admin client object but carries her own DN.
    let not_admin =
        TransferAdminClient::new(&grid, tb.client("client-1", ALICE, SecurityPolicy::None));
    assert!(not_admin.add_account("CN=eve", &["submit"]).is_err());
    assert!(not_admin.remove_account(ALICE).is_err());
    assert!(not_admin
        .register_site("rogue", "h", &["blast"], "http://h/e", "http://h/d")
        .is_err());
}

#[test]
fn transfer_admin_site_lifecycle() {
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], &["blast"], &[ALICE]);
    let admin = TransferAdminClient::new(&grid, tb.client("vo-host", ADMIN, SecurityPolicy::None));

    // Add a site offering a new application...
    admin
        .register_site(
            "site-x",
            "site-a",
            &["render"],
            &grid.sites[0].exec_epr.address,
            &grid.sites[0].data_epr.address,
        )
        .unwrap();
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    assert!(s.get_available_resource("render").is_ok());

    // ...then permanently remove it ("Delete() permanently removes a
    // computing site from the database").
    admin.unregister_site("site-x").unwrap();
    let mut s2 = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    assert!(s2.get_available_resource("render").is_err());
}

#[test]
fn signed_admin_identity_is_authenticated_not_asserted() {
    // Under X.509 the service trusts the signature, not the body: a client
    // claiming admin in the body but signing as alice is refused.
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(
        &tb,
        SecurityPolicy::X509Sign,
        &["site-a"],
        &["blast"],
        &[ALICE],
    );
    let masquerader = TransferAdminClient::new(
        &grid,
        tb.client("client-1", ALICE, SecurityPolicy::X509Sign),
    );
    // add_account writes `owner = agent DN` into the body, but even a
    // hand-crafted body cannot help: the signer DN wins.
    assert!(masquerader.add_account("CN=eve", &["submit"]).is_err());

    let real_admin =
        TransferAdminClient::new(&grid, tb.client("vo-host", ADMIN, SecurityPolicy::X509Sign));
    assert!(real_admin
        .add_account("CN=eve,O=UVA-VO", &["submit"])
        .is_ok());
}
