//! Full Grid-in-a-Box scenarios against both VO implementations: the
//! Figure-5 flow end to end, plus the qualitative behaviours §4.2 calls out.

use std::time::Duration;

use ogsa_container::{InvokeError, Testbed};
use ogsa_gridbox::{GridScenario, ScenarioError, TransferGrid, WsrfGrid};
use ogsa_security::SecurityPolicy;
use ogsa_sim::SimDuration;

const WAIT: Duration = Duration::from_secs(3);
const HOSTS: &[&str] = &["site-a", "site-b"];
const APPS: &[&str] = &["blast", "render"];
const ALICE: &str = "CN=alice,O=UVA-VO";
const BOB: &str = "CN=bob,O=UVA-VO";

fn run_full_flow(s: &mut dyn GridScenario) {
    s.get_available_resource("blast").expect("discover");
    s.make_reservation().expect("reserve");
    s.upload_file("input.dat", 8 * 1024).expect("upload");
    s.instantiate_job(SimDuration::from_millis(500.0))
        .expect("start");
    let exit = s.finish_job(WAIT).expect("finish");
    assert_eq!(exit, 0);
    s.delete_file("input.dat").expect("delete file");
    s.unreserve_resource().expect("unreserve");
}

#[test]
fn wsrf_full_flow() {
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, HOSTS, APPS, &[ALICE, BOB]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    run_full_flow(&mut s);
    assert!(s.unreserve_is_automatic());
}

#[test]
fn transfer_full_flow() {
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, HOSTS, APPS, &[ALICE, BOB]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    run_full_flow(&mut s);
    assert!(!s.unreserve_is_automatic());
}

#[test]
fn both_flows_work_signed() {
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::X509Sign, HOSTS, APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::X509Sign));
    run_full_flow(&mut s);

    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::X509Sign, HOSTS, APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::X509Sign));
    run_full_flow(&mut s);
}

#[test]
fn reservation_requires_an_account() {
    // Mallory has no VO account: makeReservation must fail on both stacks.
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, HOSTS, APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", "CN=mallory", SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    assert!(matches!(
        s.make_reservation(),
        Err(ScenarioError::Invoke(InvokeError::Fault(_)))
    ));

    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, HOSTS, APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", "CN=mallory", SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    assert!(s.make_reservation().is_err());
}

#[test]
fn job_requires_a_reservation() {
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, HOSTS, APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    // Skip make_reservation: instantiate must be refused.
    assert!(s.instantiate_job(SimDuration::from_millis(10.0)).is_err());

    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, HOSTS, APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    assert!(s.instantiate_job(SimDuration::from_millis(10.0)).is_err());
}

#[test]
fn reserved_sites_disappear_from_availability() {
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, HOSTS, APPS, &[ALICE, BOB]);
    let mut alice = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    let mut bob = grid.scenario(tb.client("client-2", BOB, SecurityPolicy::None));

    alice.get_available_resource("blast").unwrap();
    alice.make_reservation().unwrap();
    // Bob still finds the second site...
    bob.get_available_resource("blast").unwrap();
    bob.make_reservation().unwrap();
    // ...but a third user finds nothing.
    let mut carol_agent =
        grid.scenario(tb.client("client-3", "CN=carol,O=UVA-VO", SecurityPolicy::None));
    assert!(matches!(
        carol_agent.get_available_resource("blast"),
        Err(ScenarioError::State(_))
    ));

    // After Alice unreserves, capacity returns.
    alice.unreserve_resource().unwrap();
    assert!(carol_agent.get_available_resource("blast").is_ok());
}

#[test]
fn transfer_unreserve_leak_blocks_the_site() {
    // §4.2.3: "A failure to destroy a reservation after a job is finished
    // would prevent the subsequent use of that execution resource."
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], APPS, &[ALICE, BOB]);
    let mut alice = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    alice.get_available_resource("blast").unwrap();
    alice.make_reservation().unwrap();
    alice.upload_file("in.dat", 1024).unwrap();
    alice
        .instantiate_job(SimDuration::from_millis(10.0))
        .unwrap();
    alice.finish_job(WAIT).unwrap();
    // Alice forgets to unreserve. Bob is locked out indefinitely.
    let mut bob = grid.scenario(tb.client("client-2", BOB, SecurityPolicy::None));
    assert!(bob.get_available_resource("blast").is_err());
}

#[test]
fn wsrf_reservation_autodestroys_after_job() {
    // Same situation on WSRF: the ExecService destroyed the claimed
    // reservation at job completion, so the site frees itself.
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], APPS, &[ALICE, BOB]);
    let mut alice = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    alice.get_available_resource("blast").unwrap();
    alice.make_reservation().unwrap();
    alice.upload_file("in.dat", 1024).unwrap();
    alice
        .instantiate_job(SimDuration::from_millis(10.0))
        .unwrap();
    alice.finish_job(WAIT).unwrap();
    // No explicit unreserve — the site is free anyway.
    let mut bob = grid.scenario(tb.client("client-2", BOB, SecurityPolicy::None));
    assert!(bob.get_available_resource("blast").is_ok());
}

#[test]
fn wsrf_unclaimed_reservation_expires_by_scheduled_termination() {
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], APPS, &[ALICE, BOB]);
    let mut alice = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    alice.get_available_resource("blast").unwrap();
    alice.make_reservation().unwrap();

    // Bob is blocked now...
    let mut bob = grid.scenario(tb.client("client-2", BOB, SecurityPolicy::None));
    assert!(bob.get_available_resource("blast").is_err());

    // ...but Alice never claims it: after the administrator delta the
    // scheduled termination destroys the reservation.
    tb.clock()
        .advance(ogsa_gridbox::wsrf_gib::RESERVATION_DELTA + SimDuration::from_millis(1.0));
    assert!(bob.get_available_resource("blast").is_ok());
}

#[test]
fn transfer_job_representation_outlives_the_process() {
    // §3.2: "The representation of the resource may remain even when the
    // resource (e.g., process) does not exist anymore."
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    s.make_reservation().unwrap();
    s.upload_file("in.dat", 512).unwrap();
    s.instantiate_job(SimDuration::from_millis(5.0)).unwrap();
    assert_eq!(s.job_status().unwrap(), "running");
    s.finish_job(WAIT).unwrap();
    // The process is gone; the representation still answers Get.
    assert_eq!(s.job_status().unwrap(), "exited");
}

#[test]
fn wsrf_job_status_resource_properties() {
    let tb = Testbed::free();
    let grid = WsrfGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    s.make_reservation().unwrap();
    s.upload_file("in.dat", 512).unwrap();
    s.instantiate_job(SimDuration::from_millis(5.0)).unwrap();
    assert_eq!(s.job_status().unwrap(), "running");
    s.finish_job(WAIT).unwrap();
    assert_eq!(s.job_status().unwrap(), "exited");
}

#[test]
fn file_lifecycle_listing_and_download() {
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    s.make_reservation().unwrap();
    s.upload_file("a.dat", 100).unwrap();
    s.upload_file("b.dat", 200).unwrap();

    // Listing: the trailing-`/` Get mode.
    let client = tb.client("client-1", ALICE, SecurityPolicy::None);
    let proxy = ogsa_transfer::TransferProxy::new(&client);
    let listing_epr = ogsa_addressing::EndpointReference::resource(
        grid.sites[0].data_epr.address.clone(),
        format!("{ALICE}/"),
    );
    let listing = proxy.get(&listing_epr).unwrap();
    let names: Vec<_> = listing.child_elements().map(|e| e.text()).collect();
    assert_eq!(names, ["a.dat", "b.dat"]);

    // Download: the plain Get mode.
    let file = proxy.get(&s.file_epr("a.dat").unwrap()).unwrap();
    assert_eq!(file.text().len(), 100);

    s.delete_file("a.dat").unwrap();
    assert!(proxy.get(&s.file_epr("a.dat").unwrap()).is_err());
}

#[test]
fn exit_codes_propagate_through_notifications() {
    // Use the scenario plumbing but a failing job.
    let tb = Testbed::free();
    let grid = TransferGrid::deploy(&tb, SecurityPolicy::None, &["site-a"], APPS, &[ALICE]);
    let mut s = grid.scenario(tb.client("client-1", ALICE, SecurityPolicy::None));
    s.get_available_resource("blast").unwrap();
    s.make_reservation().unwrap();
    s.upload_file("in.dat", 64).unwrap();
    // instantiate_job uses exit code 0; exercise a nonzero path directly
    // via a second job created with a custom spec.
    s.instantiate_job(SimDuration::from_millis(5.0)).unwrap();
    assert_eq!(s.finish_job(WAIT).unwrap(), 0);
}
