//! The WSRF/WS-Notification Grid-in-a-Box (§4.2.1): five services.
//!
//! * **AccountService** — *not* resource-based: "interactions with the
//!   Account and ResourceAllocation services are not mapped to the CRUD
//!   operations (instead opting for operations like addAccount,
//!   accountExists, etc.)".
//! * **ResourceAllocationService** — also not resource-based; answers
//!   "what resources are available for my application?" in concert with
//!   the ReservationService.
//! * **ReservationService** — WS-Resources are reservations; created with
//!   `now + administrator delta` scheduled termination; *claimed* by the
//!   ExecService lengthening the termination time to infinity; destroyed
//!   automatically when the job completes (Figure 6's free "unreserve").
//! * **DataService** — WS-Resources are directories; the file list is a
//!   dynamically-computed resource property; `Destroy` removes the
//!   directory from the host filesystem.
//! * **ExecService** — WS-Resources are jobs; `start` verifies and claims
//!   the reservation and checks the data directory (the outcalls that
//!   dominate Figure 6's InstantiateJob); job exit raises a
//!   WS-Notification carrying the job EPR.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ogsa_addressing::EndpointReference;
use ogsa_container::{ClientAgent, InvokeError, Operation, OperationContext, Testbed, WebService};
use ogsa_security::SecurityPolicy;
use ogsa_sim::SimDuration;
use ogsa_soap::Fault;
use ogsa_wsn::base::{actions as wsn_actions, SubscribeRequest};
use ogsa_wsn::consumer::Delivery;
use ogsa_wsn::manager::SubscriptionManagerService;
use ogsa_wsn::{NotificationConsumer, NotificationProducer, TopicExpression, TopicPath};
use ogsa_wsrf::service_base::{PortType, ServiceBase, WsrfService, WsrfServiceHost};
use ogsa_wsrf::{ResourceDocument, TerminationTime, WsrfProxy};
use ogsa_xml::Element;

use crate::api::{GridScenario, ScenarioError};
use crate::hostfs::HostFs;
use crate::job::JobSpec;
use crate::procsim::{ProcStatus, ProcessTable};

/// Topic raised when a job exits.
pub const JOB_EXITED_TOPIC: &str = "jobs/exited";

/// Administrator-configured initial reservation lifetime ("e.g. 4 hours").
pub const RESERVATION_DELTA: SimDuration = SimDuration(4 * 3600 * 1_000_000);

fn owner_of(op: &Operation) -> Result<String, Fault> {
    // Signed deployments authenticate the DN; unsigned ones trust the body.
    if let Some(dn) = &op.signer_dn {
        return Ok(dn.clone());
    }
    op.body
        .child_text("owner")
        .map(str::to_owned)
        .ok_or_else(|| Fault::client("request carries no identity"))
}

// ===================================================== AccountService ====

/// addAccount / accountExists / removeAccount over a plain collection.
struct AccountService;

impl WebService for AccountService {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault> {
        let accounts = ctx.db().collection("gib:accounts");
        match op.action_name() {
            "addAccount" => {
                let dn = op
                    .body
                    .child_text("dn")
                    .ok_or_else(|| Fault::client("addAccount without dn"))?;
                let mut doc = Element::new("account").with_attr("dn", dn);
                for p in op
                    .body
                    .child_elements()
                    .filter(|e| &*e.name.local == "privilege")
                {
                    doc.add_child(p.clone());
                }
                accounts.upsert(dn, doc);
                Ok(Element::new("addAccountResponse"))
            }
            "accountExists" => {
                let dn = op
                    .body
                    .child_text("dn")
                    .ok_or_else(|| Fault::client("accountExists without dn"))?;
                let exists = accounts.contains(dn);
                Ok(Element::text_element(
                    "accountExistsResponse",
                    exists.to_string(),
                ))
            }
            "removeAccount" => {
                let dn = op
                    .body
                    .child_text("dn")
                    .ok_or_else(|| Fault::client("removeAccount without dn"))?;
                accounts.remove(dn);
                Ok(Element::new("removeAccountResponse"))
            }
            other => Err(Fault::client(format!("AccountService has no `{other}`"))),
        }
    }
}

// ============================================ ResourceAllocationService ====

/// registerSite / getAvailableResources; consults the ReservationService.
struct ResourceAllocationService {
    reservation_epr: OnceLock<EndpointReference>,
}

impl WebService for ResourceAllocationService {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault> {
        let sites = ctx.db().collection("gib:sites");
        match op.action_name() {
            "registerSite" => {
                let name = op
                    .body
                    .child_text("name")
                    .ok_or_else(|| Fault::client("registerSite without name"))?;
                sites.upsert(name, op.body.clone());
                Ok(Element::new("registerSiteResponse"))
            }
            "getAvailableResources" => {
                let app = op
                    .body
                    .child_text("application")
                    .ok_or_else(|| Fault::client("getAvailableResources without application"))?
                    .to_owned();
                // In concert with the ReservationService: which sites are
                // currently reserved?
                let reservation_epr = self
                    .reservation_epr
                    .get()
                    .ok_or_else(|| Fault::server("ReservationService not wired"))?;
                let resp = ctx
                    .agent()
                    .invoke(
                        reservation_epr,
                        "urn:gib/listReservedSites",
                        Element::new("listReservedSites"),
                    )
                    .map_err(|e| Fault::server(format!("reservation lookup failed: {e}")))?;
                let reserved: Vec<String> = resp.child_elements().map(|e| e.text()).collect();

                let xp = ogsa_xml::XPath::compile("/registerSite").expect("static");
                let docs = sites
                    .query(&xp, &ogsa_xml::XPathContext::new())
                    .map_err(|e| Fault::server(e.to_string()))?;
                let mut out = Element::new("getAvailableResourcesResponse");
                for (name, doc) in docs {
                    if reserved.contains(&name) {
                        continue;
                    }
                    let offers_app = doc
                        .child_elements()
                        .any(|e| &*e.name.local == "application" && e.text() == app);
                    if offers_app {
                        out.add_child(doc);
                    }
                }
                Ok(out)
            }
            other => Err(Fault::client(format!(
                "ResourceAllocationService has no `{other}`"
            ))),
        }
    }
}

// ================================================== ReservationService ====

/// WS-Resources are reservations {site, owner}.
struct ReservationService {
    account_epr: OnceLock<EndpointReference>,
}

impl WsrfService for ReservationService {
    fn handle_custom(
        &self,
        op: &Operation,
        ctx: &OperationContext,
        base: &ServiceBase,
    ) -> Result<Element, Fault> {
        match op.action_name() {
            "makeReservation" => {
                let site = op
                    .body
                    .child_text("site")
                    .ok_or_else(|| Fault::client("makeReservation without site"))?
                    .to_owned();
                let owner = owner_of(op)?;
                // "Does this user have an account in this VO?" — outcall.
                let account_epr = self
                    .account_epr
                    .get()
                    .ok_or_else(|| Fault::server("AccountService not wired"))?;
                let resp = ctx
                    .agent()
                    .invoke(
                        account_epr,
                        "urn:gib/accountExists",
                        Element::new("accountExists")
                            .with_child(Element::text_element("dn", owner.clone())),
                    )
                    .map_err(|e| Fault::server(format!("account check failed: {e}")))?;
                if resp.text() != "true" {
                    return Err(Fault::client(format!("no VO account for `{owner}`")));
                }

                let doc = Element::new("ReservationResource")
                    .with_child(Element::text_element("site", site))
                    .with_child(Element::text_element("owner", owner));
                let res = base.create(ctx, doc)?;
                // Scheduled termination: now + administrator delta.
                base.schedule_termination(
                    ctx,
                    &res.id,
                    TerminationTime::At(ctx.clock().now().plus(RESERVATION_DELTA)),
                );
                let epr = base.resource_epr(ctx, &res.id);
                Ok(Element::new("makeReservationResponse").with_child(epr.to_element()))
            }
            "listReservedSites" => {
                let xp = ogsa_xml::XPath::compile("/ReservationResource/site").expect("static");
                let sites = base
                    .store()
                    .collection()
                    .select(&xp, &ogsa_xml::XPathContext::new())
                    .map_err(|e| Fault::server(e.to_string()))?;
                Ok(Element::new("listReservedSitesResponse").with_children(sites))
            }
            other => Err(Fault::client(format!(
                "ReservationService has no `{other}`"
            ))),
        }
    }
}

// ========================================================= DataService ====

/// WS-Resources are directories; files are dynamic resource properties.
struct DataService {
    fs: HostFs,
}

impl WsrfService for DataService {
    fn handle_custom(
        &self,
        op: &Operation,
        ctx: &OperationContext,
        base: &ServiceBase,
    ) -> Result<Element, Fault> {
        match op.action_name() {
            // Clients create directory resources "although do not name
            // them" (§4.2.1).
            "createDirectory" => {
                let doc = Element::new("DirectoryResource");
                let res = base.create(ctx, doc)?;
                self.fs.create_dir(&res.id);
                base.schedule_termination(ctx, &res.id, TerminationTime::Never);
                let epr = base.resource_epr(ctx, &res.id);
                Ok(Element::new("createDirectoryResponse").with_child(epr.to_element()))
            }
            "upload" => {
                let id = op.require_resource_id()?;
                let _res = base.load(ctx, id)?;
                let name = op
                    .body
                    .child_text("fileName")
                    .ok_or_else(|| Fault::client("upload without fileName"))?
                    .to_owned();
                let content = op
                    .body
                    .child_text("content")
                    .unwrap_or("")
                    .as_bytes()
                    .to_vec();
                self.fs.write_file(id, &name, content);
                Ok(Element::new("uploadResponse"))
            }
            "deleteFile" => {
                let id = op.require_resource_id()?;
                let _res = base.load(ctx, id)?;
                let name = op
                    .body
                    .child_text("fileName")
                    .ok_or_else(|| Fault::client("deleteFile without fileName"))?;
                if !self.fs.delete_file(id, name) {
                    return Err(Fault::client(format!("no file `{name}`")));
                }
                Ok(Element::new("deleteFileResponse"))
            }
            other => Err(Fault::client(format!("DataService has no `{other}`"))),
        }
    }

    /// "No information for individual files is actually stored as
    /// resources, instead these resource properties are generated
    /// dynamically by examining the contents directory" (§4.2.3).
    fn resource_properties(&self, res: &ResourceDocument, _ctx: &OperationContext) -> Element {
        let mut doc = res.doc.clone();
        if let Some(files) = self.fs.list_dir(&res.id) {
            for f in files {
                doc.add_child(Element::text_element("file", f));
            }
        }
        doc
    }

    /// Destroy removes the directory and its contents from the filesystem.
    fn on_destroy(&self, res: &ResourceDocument, _ctx: &OperationContext) {
        self.fs.delete_dir(&res.id);
    }
}

// ========================================================= ExecService ====

/// WS-Resources are jobs.
struct ExecService {
    procs: ProcessTable,
    site_name: String,
    producer: OnceLock<NotificationProducer>,
    account_epr: OnceLock<EndpointReference>,
}

impl ExecService {
    fn job_status(&self, res: &ResourceDocument) -> (String, Option<i32>) {
        let pid = res.member_parse::<u64>("pid").unwrap_or(0);
        match self.procs.status(pid) {
            Some(ProcStatus::Running) => ("running".into(), None),
            Some(ProcStatus::Exited { code }) => ("exited".into(), Some(code)),
            Some(ProcStatus::Killed) => ("killed".into(), None),
            None => ("unknown".into(), None),
        }
    }
}

impl WsrfService for ExecService {
    fn handle_custom(
        &self,
        op: &Operation,
        ctx: &OperationContext,
        base: &ServiceBase,
    ) -> Result<Element, Fault> {
        match op.action_name() {
            "start" => {
                let owner = owner_of(op)?;
                let spec_elem = op
                    .body
                    .child_local("job")
                    .ok_or_else(|| Fault::client("start without job spec"))?;
                let spec = JobSpec::from_element(spec_elem)
                    .ok_or_else(|| Fault::client("malformed job spec"))?;
                let reservation = EndpointReference::from_element(
                    op.body
                        .child_local("reservation")
                        .and_then(|r| r.child_elements().next())
                        .ok_or_else(|| Fault::client("start without reservation EPR"))?,
                )
                .map_err(|e| Fault::client(format!("bad reservation EPR: {e}")))?;
                let data = EndpointReference::from_element(
                    op.body
                        .child_local("data")
                        .and_then(|d| d.child_elements().next())
                        .ok_or_else(|| Fault::client("start without data EPR"))?,
                )
                .map_err(|e| Fault::client(format!("bad data EPR: {e}")))?;

                let proxy = WsrfProxy::new(ctx.agent());

                // Outcall 1: re-verify VO membership with the
                // AccountService before consuming site resources.
                let account_epr = self
                    .account_epr
                    .get()
                    .ok_or_else(|| Fault::server("AccountService not wired"))?;
                let acct = ctx
                    .agent()
                    .invoke(
                        account_epr,
                        "urn:gib/accountExists",
                        Element::new("accountExists")
                            .with_child(Element::text_element("dn", owner.clone())),
                    )
                    .map_err(|e| Fault::server(format!("account check failed: {e}")))?;
                if acct.text() != "true" {
                    return Err(Fault::client(format!("no VO account for `{owner}`")));
                }

                // Outcall 2: verify the reservation covers this site and
                // this user ("An ExecService uses the reservation EPR to
                // verify that the client has, in fact, reserved that
                // ExecService").
                let rsv_props = proxy
                    .get_properties(&reservation, &["site", "owner"])
                    .map_err(|e| Fault::client(format!("reservation invalid: {e}")))?;
                let site_ok = rsv_props
                    .iter()
                    .any(|p| &*p.name.local == "site" && p.text() == self.site_name);
                let owner_ok = rsv_props
                    .iter()
                    .any(|p| &*p.name.local == "owner" && p.text() == owner);
                if !site_ok || !owner_ok {
                    return Err(Fault::client("reservation does not cover this request"));
                }

                // Outcall 3: claim the reservation by lengthening its
                // lifetime to infinity.
                proxy
                    .set_termination_time(&reservation, TerminationTime::Never)
                    .map_err(|e| Fault::server(format!("claim failed: {e}")))?;

                // Outcall 4: check the staged data directory exists (its
                // file-list property answers).
                proxy.get_property(&data, "file").or_else(|e| match e {
                    // An empty directory is fine; a missing resource is
                    // not — empty dirs raise InvalidResourceProperty.
                    InvokeError::Fault(f) if f.reason.contains("file") => Ok(vec![]),
                    other => Err(Fault::client(format!("data directory invalid: {other}"))),
                })?;

                // Spawn and persist the job resource.
                let pid = self.procs.spawn(spec.runtime, spec.exit_code);
                let doc = Element::new("JobResource")
                    .with_child(Element::text_element(
                        "application",
                        spec.application.clone(),
                    ))
                    .with_child(Element::text_element("owner", owner))
                    .with_child(Element::text_element("pid", pid.to_string()))
                    .with_child(Element::text_element("notified", "false"))
                    .with_child(Element::new("reservation").with_child(reservation.to_element()))
                    .with_child(Element::new("data").with_child(data.to_element()));
                let res = base.create(ctx, doc)?;
                base.schedule_termination(ctx, &res.id, TerminationTime::Never);
                let epr = base.resource_epr(ctx, &res.id);
                Ok(Element::new("startResponse").with_child(epr.to_element()))
            }
            "Subscribe" => {
                let req = SubscribeRequest::from_element(&op.body)
                    .ok_or_else(|| Fault::client("malformed Subscribe"))?;
                let producer = self
                    .producer
                    .get()
                    .ok_or_else(|| Fault::server("producer not wired"))?;
                let epr = producer.store().subscribe(ctx, &req)?;
                Ok(SubscribeRequest::response(&epr))
            }
            // The completion monitor tick (the "Proc Spawn Win Service"):
            // fire notifications for exited jobs and auto-destroy their
            // reservations.
            "pumpCompletions" => {
                let producer = self
                    .producer
                    .get()
                    .ok_or_else(|| Fault::server("producer not wired"))?;
                let xp =
                    ogsa_xml::XPath::compile("/JobResource[notified='false']").expect("static");
                let pending = base
                    .store()
                    .collection()
                    .query(&xp, &ogsa_xml::XPathContext::new())
                    .map_err(|e| Fault::server(e.to_string()))?;
                let mut fired = 0;
                for (id, doc) in pending {
                    let mut res = ResourceDocument::new(id.clone(), doc);
                    let (status, exit) = self.job_status(&res);
                    if status != "exited" {
                        continue;
                    }
                    let job_epr = base.resource_epr(ctx, &id);
                    // "This notification message will contain the job's EPR
                    // so that the client knows which ... has ended."
                    let message = Element::new("JobEnded")
                        .with_attr("job", id.clone())
                        .with_child(Element::text_element(
                            "exitCode",
                            exit.unwrap_or_default().to_string(),
                        ))
                        .with_child(Element::new("jobEPR").with_child(job_epr.to_element()));
                    producer.notify_from(
                        &TopicPath::parse(JOB_EXITED_TOPIC).expect("static"),
                        message,
                        Some(job_epr),
                    );
                    // Automatic unreserve: destroy the claimed reservation.
                    if let Some(rsv) = res
                        .doc
                        .child_local("reservation")
                        .and_then(|r| r.child_elements().next())
                        .and_then(|e| EndpointReference::from_element(e).ok())
                    {
                        let _ = WsrfProxy::new(ctx.agent()).destroy(&rsv);
                    }
                    res.set_member("notified", "true");
                    base.save(ctx, &res)?;
                    fired += 1;
                }
                Ok(Element::text_element(
                    "pumpCompletionsResponse",
                    fired.to_string(),
                ))
            }
            other => Err(Fault::client(format!("ExecService has no `{other}`"))),
        }
    }

    /// Job resources expose status / elapsed / exit code dynamically
    /// ("whether the job is currently running, how long it has been
    /// running, when it exited and the exit code").
    fn resource_properties(&self, res: &ResourceDocument, _ctx: &OperationContext) -> Element {
        let mut doc = res.doc.clone();
        let (status, exit) = self.job_status(res);
        doc.add_child(Element::text_element("status", status));
        if let Some(code) = exit {
            doc.add_child(Element::text_element("exitCode", code.to_string()));
        }
        if let Some(elapsed) = res
            .member_parse::<u64>("pid")
            .and_then(|pid| self.procs.elapsed(pid))
        {
            doc.add_child(Element::text_element(
                "elapsedMicros",
                elapsed.as_micros().to_string(),
            ));
        }
        doc
    }

    /// "WSRF's Destroy method will kill a job if it is running and then
    /// cleanup the information about the process' exit state."
    fn on_destroy(&self, res: &ResourceDocument, _ctx: &OperationContext) {
        if let Some(pid) = res.member_parse::<u64>("pid") {
            self.procs.kill(pid);
            self.procs.reap(pid);
        }
    }
}

// =========================================================== deployment ====

/// One deployed execution site.
pub struct WsrfSite {
    pub name: String,
    pub host: String,
    pub exec_epr: EndpointReference,
    pub data_epr: EndpointReference,
}

/// The deployed WSRF VO.
pub struct WsrfGrid {
    pub account_epr: EndpointReference,
    pub allocation_epr: EndpointReference,
    pub reservation_epr: EndpointReference,
    pub sites: Vec<WsrfSite>,
    admin: ClientAgent,
}

impl WsrfGrid {
    /// Deploy the VO: Account/Allocation/Reservation on `vo-host`, one
    /// Exec+Data pair per entry of `site_hosts`, all offering
    /// `applications`. Accounts are added for `users`.
    pub fn deploy(
        tb: &Testbed,
        policy: SecurityPolicy,
        site_hosts: &[&str],
        applications: &[&str],
        users: &[&str],
    ) -> WsrfGrid {
        let vo = tb.container("vo-host", policy);
        // VO services call site services (and vice versa) on the user's
        // behalf; give those server-to-server invokes a retry budget so a
        // lossy wire doesn't surface as an unretryable fault at the client.
        vo.set_call_retry(Some(ogsa_transport::RetryPolicy::default_call(
            tb.rng().fork("gib-call-retry").seed(),
        )));

        let account_epr = vo.deploy("/services/Account", Arc::new(AccountService));

        let reservation_service = Arc::new(ReservationService {
            account_epr: OnceLock::new(),
        });
        let (reservation_epr, _rsv_base) = WsrfServiceHost::deploy(
            &vo,
            "/services/Reservation",
            reservation_service.clone(),
            PortType::all(),
            true,
        );
        reservation_service
            .account_epr
            .set(account_epr.clone())
            .expect("wired once");

        let allocation_service = Arc::new(ResourceAllocationService {
            reservation_epr: OnceLock::new(),
        });
        let allocation_epr = vo.deploy("/services/ResourceAllocation", allocation_service.clone());
        allocation_service
            .reservation_epr
            .set(reservation_epr.clone())
            .expect("wired once");

        let admin = tb.client("vo-host", "CN=admin,O=VO", policy);
        for user in users {
            admin
                .invoke(
                    &account_epr,
                    "urn:gib/addAccount",
                    Element::new("addAccount")
                        .with_child(Element::text_element("dn", *user))
                        .with_child(Element::text_element("privilege", "submit")),
                )
                .expect("add account");
        }

        let mut sites = Vec::new();
        for (i, host) in site_hosts.iter().enumerate() {
            let site_name = format!("site-{i}");
            let container = tb.container(host, policy);
            // Job-exited notifications are the VO's one must-arrive message:
            // redeliver them when the simulated wire loses them. Seeded off
            // the testbed RNG so runs replay bit-identically.
            container.set_redelivery(Some(ogsa_transport::RetryPolicy::default_redelivery(
                tb.rng().fork("gib-redelivery").seed(),
            )));
            container.set_call_retry(vo.call_retry());
            let fs = HostFs::new(tb.clock().clone(), Arc::new(tb.model().clone()));
            let procs = ProcessTable::new(tb.clock().clone(), Arc::new(tb.model().clone()));

            let (data_epr, _data_base) = WsrfServiceHost::deploy(
                &container,
                "/services/Data",
                Arc::new(DataService { fs }),
                PortType::all(),
                true,
            );

            let (_mgr, store) =
                SubscriptionManagerService::deploy(&container, "/services/Exec/subscriptions");
            let exec_service = Arc::new(ExecService {
                procs,
                site_name: site_name.clone(),
                producer: OnceLock::new(),
                account_epr: OnceLock::new(),
            });
            let (exec_epr, _exec_base) = WsrfServiceHost::deploy(
                &container,
                "/services/Exec",
                exec_service.clone(),
                PortType::all(),
                true,
            );
            exec_service
                .producer
                .set(NotificationProducer::new(store, container.service_agent()))
                .ok()
                .expect("wired once");
            exec_service
                .account_epr
                .set(account_epr.clone())
                .expect("wired once");

            // Register the site with the allocation service.
            let mut reg = Element::new("registerSite")
                .with_child(Element::text_element("name", site_name.clone()))
                .with_child(Element::text_element("host", *host));
            for app in applications {
                reg.add_child(Element::text_element("application", *app));
            }
            reg.add_child(Element::new("execEPR").with_child(exec_epr.to_element()));
            reg.add_child(Element::new("dataEPR").with_child(data_epr.to_element()));
            admin
                .invoke(&allocation_epr, "urn:gib/registerSite", reg)
                .expect("register site");

            sites.push(WsrfSite {
                name: site_name,
                host: host.to_string(),
                exec_epr,
                data_epr,
            });
        }

        WsrfGrid {
            account_epr,
            allocation_epr,
            reservation_epr,
            sites,
            admin,
        }
    }

    /// The admin agent (tests use it for account management).
    pub fn admin(&self) -> &ClientAgent {
        &self.admin
    }

    /// Start a user scenario session.
    pub fn scenario(&self, agent: ClientAgent) -> WsrfGridScenario<'_> {
        WsrfGridScenario {
            grid: self,
            agent,
            chosen: None,
            reservation: None,
            data_dir: None,
            job: None,
            waiter: None,
            job_runtime: SimDuration::ZERO,
        }
    }
}

// ============================================================ scenario ====

struct ChosenSite {
    name: String,
    exec_epr: EndpointReference,
    data_epr: EndpointReference,
}

/// One grid user's session against the WSRF VO.
pub struct WsrfGridScenario<'g> {
    grid: &'g WsrfGrid,
    agent: ClientAgent,
    chosen: Option<ChosenSite>,
    reservation: Option<EndpointReference>,
    data_dir: Option<EndpointReference>,
    job: Option<EndpointReference>,
    waiter: Option<NotificationConsumer>,
    job_runtime: SimDuration,
}

impl WsrfGridScenario<'_> {
    fn chosen(&self) -> Result<&ChosenSite, ScenarioError> {
        self.chosen
            .as_ref()
            .ok_or_else(|| ScenarioError::State("no site chosen yet".into()))
    }

    /// The job EPR, once instantiated.
    pub fn job_epr(&self) -> Option<&EndpointReference> {
        self.job.as_ref()
    }

    /// Poll the job's status resource property.
    pub fn job_status(&self) -> Result<String, ScenarioError> {
        let job = self
            .job
            .as_ref()
            .ok_or_else(|| ScenarioError::State("no job".into()))?;
        Ok(WsrfProxy::new(&self.agent).get_property_text(job, "status")?)
    }
}

impl GridScenario for WsrfGridScenario<'_> {
    fn stack_name(&self) -> &'static str {
        "WSRF.NET"
    }

    fn get_available_resource(&mut self, application: &str) -> Result<(), ScenarioError> {
        let resp = self.agent.invoke(
            &self.grid.allocation_epr,
            "urn:gib/getAvailableResources",
            Element::new("getAvailableResources")
                .with_child(Element::text_element("application", application)),
        )?;
        let site = resp
            .child_elements()
            .next()
            .ok_or_else(|| ScenarioError::State(format!("no site offers `{application}`")))?;
        let name = site.child_text("name").unwrap_or_default().to_owned();
        let exec_epr = site
            .child_local("execEPR")
            .and_then(|e| e.child_elements().next())
            .and_then(|e| EndpointReference::from_element(e).ok())
            .ok_or_else(|| ScenarioError::State("site without exec EPR".into()))?;
        let data_epr = site
            .child_local("dataEPR")
            .and_then(|e| e.child_elements().next())
            .and_then(|e| EndpointReference::from_element(e).ok())
            .ok_or_else(|| ScenarioError::State("site without data EPR".into()))?;
        self.chosen = Some(ChosenSite {
            name,
            exec_epr,
            data_epr,
        });
        Ok(())
    }

    fn make_reservation(&mut self) -> Result<(), ScenarioError> {
        let site = self.chosen()?.name.clone();
        let resp = self.agent.invoke(
            &self.grid.reservation_epr,
            "urn:gib/makeReservation",
            Element::new("makeReservation")
                .with_child(Element::text_element("site", site))
                .with_child(Element::text_element("owner", self.agent.dn())),
        )?;
        let epr = resp
            .child_elements()
            .next()
            .and_then(|e| EndpointReference::from_element(e).ok())
            .ok_or_else(|| ScenarioError::State("makeReservation returned no EPR".into()))?;
        self.reservation = Some(epr);
        Ok(())
    }

    fn upload_file(&mut self, name: &str, size_bytes: usize) -> Result<(), ScenarioError> {
        let data_epr = self.chosen()?.data_epr.clone();
        // First upload creates the directory resource (Figure 5 step 5),
        // later uploads reuse it — "a pair of calls".
        if self.data_dir.is_none() {
            let resp = self.agent.invoke(
                &data_epr,
                "urn:gib/createDirectory",
                Element::new("createDirectory"),
            )?;
            let dir = resp
                .child_elements()
                .next()
                .and_then(|e| EndpointReference::from_element(e).ok())
                .ok_or_else(|| ScenarioError::State("no directory EPR".into()))?;
            self.data_dir = Some(dir);
        }
        let dir = self.data_dir.clone().expect("just set");
        self.agent.invoke(
            &dir,
            "urn:gib/upload",
            Element::new("upload")
                .with_child(Element::text_element("fileName", name))
                .with_child(Element::text_element("content", "x".repeat(size_bytes))),
        )?;
        Ok(())
    }

    fn instantiate_job(&mut self, runtime: SimDuration) -> Result<(), ScenarioError> {
        let chosen_exec = self.chosen()?.exec_epr.clone();
        let reservation = self
            .reservation
            .clone()
            .ok_or_else(|| ScenarioError::State("no reservation".into()))?;
        let data = self
            .data_dir
            .clone()
            .ok_or_else(|| ScenarioError::State("no data directory".into()))?;

        // Client call 1: subscribe to the job-exited topic.
        static CONSUMER_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let consumer = NotificationConsumer::listen(
            &self.agent,
            &format!(
                "/gib-notify/{}",
                CONSUMER_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ),
        );
        let req = SubscribeRequest::new(
            consumer.epr().clone(),
            TopicExpression::concrete(JOB_EXITED_TOPIC),
        );
        self.agent
            .invoke(&chosen_exec, wsn_actions::SUBSCRIBE, req.to_element())?;
        self.waiter = Some(consumer);

        // Client call 2: start (server fans out to Reservation ×2 + Data).
        let spec = JobSpec::new("blast", runtime);
        let resp = self.agent.invoke(
            &chosen_exec,
            "urn:gib/start",
            Element::new("start")
                .with_child(Element::text_element("owner", self.agent.dn()))
                .with_child(spec.to_element())
                .with_child(Element::new("reservation").with_child(reservation.to_element()))
                .with_child(Element::new("data").with_child(data.to_element())),
        )?;
        let job = resp
            .child_elements()
            .next()
            .and_then(|e| EndpointReference::from_element(e).ok())
            .ok_or_else(|| ScenarioError::State("start returned no job EPR".into()))?;
        self.job = Some(job);
        self.job_runtime = runtime;
        Ok(())
    }

    fn delete_file(&mut self, name: &str) -> Result<(), ScenarioError> {
        let dir = self
            .data_dir
            .clone()
            .ok_or_else(|| ScenarioError::State("no data directory".into()))?;
        self.agent.invoke(
            &dir,
            "urn:gib/deleteFile",
            Element::new("deleteFile").with_child(Element::text_element("fileName", name)),
        )?;
        Ok(())
    }

    fn unreserve_resource(&mut self) -> Result<(), ScenarioError> {
        // Automatic in the WSRF version: the ExecService destroyed the
        // reservation when the job completed. Nothing to do.
        self.reservation = None;
        Ok(())
    }

    fn unreserve_is_automatic(&self) -> bool {
        true
    }

    fn finish_job(&mut self, wait: Duration) -> Result<i32, ScenarioError> {
        let chosen_exec = self.chosen()?.exec_epr.clone();
        // Let the job's virtual runtime elapse, then tick the completion
        // monitor.
        self.agent
            .clock()
            .advance(self.job_runtime + SimDuration::from_micros(1));
        self.agent.invoke(
            &chosen_exec,
            "urn:gib/pumpCompletions",
            Element::new("pumpCompletions"),
        )?;
        let waiter = self
            .waiter
            .as_ref()
            .ok_or_else(|| ScenarioError::State("no subscription".into()))?;
        let own_job = self
            .job
            .as_ref()
            .and_then(|j| j.resource_id())
            .unwrap_or_default()
            .to_owned();
        // The notification carries the job EPR "so that the client knows
        // which of the potentially many jobs they are currently running,
        // has ended" — filter to ours.
        let deadline = std::time::Instant::now() + wait;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let body = match waiter.recv_timeout(remaining) {
                Some(Delivery::Wrapped(n)) => n.message,
                Some(Delivery::Raw(body)) => body,
                None => {
                    return Err(ScenarioError::State(
                        "job-exited notification never arrived".into(),
                    ))
                }
            };
            if body.attr_local("job") == Some(&own_job) {
                return Ok(body.child_parse("exitCode").unwrap_or(-1));
            }
        }
    }
}
