//! The WS-Transfer/WS-Eventing Grid-in-a-Box (§4.2.2): four services,
//! everything a resource, every interaction CRUD — with the EPR-structure
//! conventions the paper describes verbatim:
//!
//! * **Account** — Create makes an account whose EPR carries the user's
//!   X.509 DN; Get answers privilege questions; Create/Delete are
//!   admin-only.
//! * **Data** — the resource id is `DN/filename`; the storage directory is
//!   a hash of the DN; a Get whose EPR ends with `/` returns a directory
//!   listing, otherwise a download; Put overwrites; Delete removes the file
//!   permanently.
//! * **ResourceAllocation** — *unified* sites + reservations (WS-Transfer
//!   allows many resource types per service). Get on an id starting `1` is
//!   the available-resources query; any other id asks which user holds the
//!   reservation for that site. Put has three modes selected by the id's
//!   initial symbol: `R` make, `U` remove, `T` change reservation time.
//! * **Execution** — Create instantiates a job (after verifying the
//!   reservation through the allocation service); Get returns the
//!   representation, which outlives the process; Delete both kills a
//!   running process and removes the representation (one resolution of the
//!   spec's resource-vs-representation ambiguity — the other is tested);
//!   exits push WS-Eventing messages over TCP.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use ogsa_addressing::EndpointReference;
use ogsa_container::{ClientAgent, Operation, OperationContext, Testbed};
use ogsa_eventing::messages::{actions as wse_actions, SubscribeRequest};
use ogsa_eventing::{EventConsumer, EventSourceService, NotificationManager};
use ogsa_security::SecurityPolicy;
use ogsa_sim::{DetRng, SimDuration};
use ogsa_soap::Fault;
use ogsa_transfer::{CreateOutcome, TransferLogic, TransferProxy, TransferService};
use ogsa_xml::Element;
use ogsa_xmldb::Collection;

use crate::api::{GridScenario, ScenarioError};
use crate::hostfs::HostFs;
use crate::job::JobSpec;
use crate::procsim::{ProcStatus, ProcessTable};

fn requester_of(op: &Operation) -> Result<String, Fault> {
    // The authenticated signature always wins; unsigned deployments fall
    // back to an `owner` element in the body, and for body-less operations
    // (WS-Transfer Delete) to a `RequesterDN` reference property — the
    // client-constructed-EPR idiom this stack embraces (§2.3).
    if let Some(dn) = &op.signer_dn {
        return Ok(dn.clone());
    }
    if let Some(owner) = op.body.find_local("owner") {
        return Ok(owner.text());
    }
    op.headers
        .reference_properties
        .iter()
        .find(|p| &*p.name.local == "RequesterDN")
        .map(|p| p.text())
        .ok_or_else(|| Fault::client("request carries no identity"))
}

fn is_admin(dn: &str) -> bool {
    dn.starts_with("CN=admin")
}

// ============================================================ Account ====

/// Accounts keyed by DN; Create/Delete admin-only.
struct AccountLogic;

impl TransferLogic for AccountLogic {
    fn create(
        &self,
        representation: Element,
        op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
        _rng: &DetRng,
    ) -> Result<CreateOutcome, Fault> {
        let requester = requester_of(op)?;
        if !is_admin(&requester) {
            return Err(Fault::client(
                "only the administrative client may create accounts",
            ));
        }
        // "the EPR containing the X509 DN of the user" — the account's own
        // DN becomes the resource id.
        let dn = representation
            .child_text("dn")
            .ok_or_else(|| Fault::client("account without dn"))?
            .to_owned();
        store
            .insert(&dn, representation.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(CreateOutcome {
            id: dn,
            stored: representation,
            modified: None,
        })
    }

    fn delete(
        &self,
        id: &str,
        op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<(), Fault> {
        let requester = requester_of(op)?;
        if !is_admin(&requester) {
            return Err(Fault::client(
                "only the administrative client may remove accounts",
            ));
        }
        store
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| Fault::client(format!("no account `{id}`")))
    }
}

// =============================================================== Data ====

/// Files keyed by `DN/filename`; listing via trailing-`/` EPRs.
struct DataLogic {
    fs: HostFs,
    allocation_epr: OnceLock<EndpointReference>,
    site_name: String,
}

impl DataLogic {
    fn verify_reservation(&self, dn: &str, ctx: &OperationContext) -> Result<(), Fault> {
        // RA Get, second mode: "used by the Data service and the Execution
        // service to make sure that the user who wants to use them has a
        // reservation."
        let ra = self
            .allocation_epr
            .get()
            .ok_or_else(|| Fault::server("allocation service not wired"))?;
        let site_epr = EndpointReference::resource(ra.address.clone(), self.site_name.clone());
        let holder = TransferProxy::new(ctx.agent())
            .get(&site_epr)
            .map_err(|e| Fault::client(format!("reservation check failed: {e}")))?;
        if holder.text() != dn {
            return Err(Fault::client(format!("`{dn}` holds no reservation here")));
        }
        Ok(())
    }
}

impl TransferLogic for DataLogic {
    fn create(
        &self,
        representation: Element,
        op: &Operation,
        ctx: &OperationContext,
        store: &Arc<Collection>,
        _rng: &DetRng,
    ) -> Result<CreateOutcome, Fault> {
        let dn = requester_of(op)?;
        self.verify_reservation(&dn, ctx)?;
        let name = representation
            .attr_local("name")
            .ok_or_else(|| Fault::client("file without name"))?
            .to_owned();
        // "The EPR of the resource (file) is in the format user's
        // DN/filename."
        let id = format!("{dn}/{name}");
        let dir = HostFs::dn_directory(&dn);
        self.fs.create_dir(&dir);
        self.fs
            .write_file(&dir, &name, representation.text().into_bytes());
        let meta = Element::new("file")
            .with_attr("name", name)
            .with_attr("owner", dn);
        store
            .insert(&id, meta.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(CreateOutcome {
            id,
            stored: meta,
            modified: None,
        })
    }

    fn get(
        &self,
        id: &str,
        _op: &Operation,
        _ctx: &OperationContext,
        _store: &Arc<Collection>,
    ) -> Result<Element, Fault> {
        // "If the EPR ends with '/', the Get() operation returns a listing
        // of all the files in the directory specified."
        if let Some(dn) = id.strip_suffix('/') {
            let dir = HostFs::dn_directory(dn);
            let files = self.fs.list_dir(&dir).unwrap_or_default();
            let mut out = Element::new("listing").with_attr("owner", dn);
            for f in files {
                out.add_child(Element::text_element("file", f));
            }
            return Ok(out);
        }
        // "Otherwise Get() interprets the request as a download."
        let (dn, name) = id
            .rsplit_once('/')
            .ok_or_else(|| Fault::client("malformed file id"))?;
        let dir = HostFs::dn_directory(dn);
        let contents = self
            .fs
            .read_file(&dir, name)
            .ok_or_else(|| Fault::client(format!("no file `{id}`")))?;
        Ok(Element::new("file")
            .with_attr("name", name)
            .with_text(String::from_utf8_lossy(&contents).into_owned()))
    }

    fn put(
        &self,
        id: &str,
        replacement: Element,
        _op: &Operation,
        _ctx: &OperationContext,
        _store: &Arc<Collection>,
    ) -> Result<Option<Element>, Fault> {
        // "Put() overrides an existing file with a newer version."
        let (dn, name) = id
            .rsplit_once('/')
            .ok_or_else(|| Fault::client("malformed file id"))?;
        let dir = HostFs::dn_directory(dn);
        if self.fs.read_file(&dir, name).is_none() {
            return Err(Fault::client(format!("no file `{id}` to override")));
        }
        self.fs
            .write_file(&dir, name, replacement.text().into_bytes());
        Ok(None)
    }

    fn delete(
        &self,
        id: &str,
        _op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<(), Fault> {
        let (dn, name) = id
            .rsplit_once('/')
            .ok_or_else(|| Fault::client("malformed file id"))?;
        let dir = HostFs::dn_directory(dn);
        if !self.fs.delete_file(&dir, name) {
            return Err(Fault::client(format!("no file `{id}`")));
        }
        store.remove(id);
        Ok(())
    }
}

// ================================================ ResourceAllocation ====

/// Unified sites + reservations.
struct AllocationLogic {
    account_epr: OnceLock<EndpointReference>,
}

impl AllocationLogic {
    fn reservation_key(site: &str) -> String {
        format!("rsv:{site}")
    }
}

impl TransferLogic for AllocationLogic {
    /// Create a computing site (admin).
    fn create(
        &self,
        representation: Element,
        op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
        _rng: &DetRng,
    ) -> Result<CreateOutcome, Fault> {
        let requester = requester_of(op)?;
        if !is_admin(&requester) {
            return Err(Fault::client(
                "only the administrative client may register sites",
            ));
        }
        let name = representation
            .attr_local("name")
            .ok_or_else(|| Fault::client("site without name"))?
            .to_owned();
        store
            .insert(&name, representation.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(CreateOutcome {
            id: name,
            stored: representation,
            modified: None,
        })
    }

    fn get(
        &self,
        id: &str,
        _op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<Element, Fault> {
        // "If the EPR starts with '1', the get is interpreted as a get
        // available resources query" — the rest of the id names the
        // application.
        if let Some(app) = id.strip_prefix('1') {
            let xp = ogsa_xml::XPath::compile("/site").expect("static");
            let docs = store
                .query(&xp, &ogsa_xml::XPathContext::new())
                .map_err(|e| Fault::server(e.to_string()))?;
            let reserved: Vec<String> = store
                .keys()
                .iter()
                .filter_map(|k| k.strip_prefix("rsv:").map(str::to_owned))
                .collect();
            let mut out = Element::new("availableResources").with_attr("application", app);
            for (name, doc) in docs {
                if reserved.contains(&name) {
                    continue;
                }
                if doc
                    .child_elements()
                    .any(|e| &*e.name.local == "application" && e.text() == app)
                {
                    out.add_child(doc);
                }
            }
            return Ok(out);
        }
        // "Otherwise, the Get() is a request to check which user has a
        // reservation to a particular computing site."
        let rsv = store
            .get(&Self::reservation_key(id))
            .ok_or_else(|| Fault::client(format!("site `{id}` is not reserved")))?;
        Ok(Element::text_element(
            "reservationHolder",
            rsv.child_text("owner").unwrap_or_default().to_owned(),
        ))
    }

    /// "Delete() permanently removes a computing site from the database" —
    /// administrative only.
    fn delete(
        &self,
        id: &str,
        op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<(), Fault> {
        let requester = requester_of(op)?;
        if !is_admin(&requester) {
            return Err(Fault::client(
                "only the administrative client may remove computing sites",
            ));
        }
        store
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| Fault::client(format!("no such site `{id}`")))?;
        // A removed site takes its reservation with it.
        store.remove(&Self::reservation_key(id));
        Ok(())
    }

    fn put(
        &self,
        id: &str,
        replacement: Element,
        op: &Operation,
        ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<Option<Element>, Fault> {
        // Three modes "depending on the initial symbol of the EPR".
        let (mode, site) = id.split_at(1);
        match mode {
            // Make a reservation.
            "R" => {
                let owner = requester_of(op)?;
                // Account check via the Account service's Get.
                let account_epr = self
                    .account_epr
                    .get()
                    .ok_or_else(|| Fault::server("account service not wired"))?;
                let acct = EndpointReference::resource(account_epr.address.clone(), owner.clone());
                TransferProxy::new(ctx.agent())
                    .get(&acct)
                    .map_err(|e| Fault::client(format!("no VO account for `{owner}`: {e}")))?;

                if !store.contains(site) {
                    return Err(Fault::client(format!("no such site `{site}`")));
                }
                let key = Self::reservation_key(site);
                if store.contains(&key) {
                    return Err(Fault::client(format!("site `{site}` already reserved")));
                }
                let doc = Element::new("reservation")
                    .with_attr("site", site)
                    .with_child(Element::text_element("owner", owner))
                    .with_child(Element::text_element(
                        "until",
                        replacement.child_text("until").unwrap_or("0").to_owned(),
                    ));
                store
                    .insert(&key, doc)
                    .map_err(|e| Fault::server(e.to_string()))?;
                Ok(None)
            }
            // Remove a reservation — "A failure to destroy a reservation
            // after a job is finished would prevent the subsequent use of
            // that execution resource" (§4.2.3): this is the manual step
            // WSRF gets for free.
            "U" => store
                .remove(&Self::reservation_key(site))
                .map(|_| None)
                .ok_or_else(|| Fault::client(format!("site `{site}` is not reserved"))),
            // Change the time to which a site is reserved.
            "T" => {
                let key = Self::reservation_key(site);
                let mut doc = store
                    .get(&key)
                    .ok_or_else(|| Fault::client(format!("site `{site}` is not reserved")))?;
                let until = replacement
                    .child_text("until")
                    .ok_or_else(|| Fault::client("T-mode Put without until"))?
                    .to_owned();
                doc.remove_children(&"until".into());
                doc.add_child(Element::text_element("until", until));
                store
                    .update(&key, doc)
                    .map_err(|e| Fault::server(e.to_string()))?;
                Ok(None)
            }
            _ => Err(Fault::client(format!(
                "unknown Put mode `{mode}` (expected R/U/T prefix)"
            ))),
        }
    }
}

// ========================================================== Execution ====

/// Jobs; Create verifies the reservation through the allocation service.
pub struct ExecutionLogic {
    procs: ProcessTable,
    site_name: String,
    allocation_epr: OnceLock<EndpointReference>,
    notifier: OnceLock<NotificationManager>,
    job_seq: AtomicU64,
    store: OnceLock<Arc<Collection>>,
    /// §3.2's Delete ambiguity, made explicit: does deleting the
    /// representation also terminate the process?
    pub delete_kills_process: bool,
}

impl ExecutionLogic {
    fn status_fields(&self, doc: &Element) -> (String, Option<i32>) {
        let pid: u64 = doc.child_parse("pid").unwrap_or(0);
        match self.procs.status(pid) {
            Some(ProcStatus::Running) => ("running".into(), None),
            Some(ProcStatus::Exited { code }) => ("exited".into(), Some(code)),
            Some(ProcStatus::Killed) => ("killed".into(), None),
            None => ("unknown".into(), None),
        }
    }

    /// The completion monitor: push events for exited, un-notified jobs.
    pub fn pump_completions(&self) -> usize {
        let (Some(store), Some(notifier)) = (self.store.get(), self.notifier.get()) else {
            return 0;
        };
        let xp = ogsa_xml::XPath::compile("/job[notified='false']").expect("static");
        let Ok(pending) = store.query(&xp, &ogsa_xml::XPathContext::new()) else {
            return 0;
        };
        let mut fired = 0;
        for (id, mut doc) in pending {
            let (status, exit) = self.status_fields(&doc);
            if status != "exited" {
                continue;
            }
            notifier.trigger(
                Element::new("JobEnded")
                    .with_attr("job", id.clone())
                    .with_attr(
                        "owner",
                        doc.child_text("owner").unwrap_or_default().to_owned(),
                    )
                    .with_child(Element::text_element(
                        "exitCode",
                        exit.unwrap_or_default().to_string(),
                    )),
            );
            doc.remove_children(&"notified".into());
            doc.add_child(Element::text_element("notified", "true"));
            let _ = store.update(&id, doc);
            fired += 1;
        }
        fired
    }
}

impl TransferLogic for ExecutionLogic {
    fn create(
        &self,
        representation: Element,
        op: &Operation,
        ctx: &OperationContext,
        store: &Arc<Collection>,
        _rng: &DetRng,
    ) -> Result<CreateOutcome, Fault> {
        let owner = requester_of(op)?;
        let spec = JobSpec::from_element(&representation)
            .ok_or_else(|| Fault::client("malformed job representation"))?;

        // Outcall: verify the reservation (RA Get, second mode).
        let ra = self
            .allocation_epr
            .get()
            .ok_or_else(|| Fault::server("allocation service not wired"))?;
        let site_epr = EndpointReference::resource(ra.address.clone(), self.site_name.clone());
        let holder = TransferProxy::new(ctx.agent())
            .get(&site_epr)
            .map_err(|e| Fault::client(format!("reservation check failed: {e}")))?;
        if holder.text() != owner {
            return Err(Fault::client(format!(
                "`{owner}` holds no reservation here"
            )));
        }

        let pid = self.procs.spawn(spec.runtime, spec.exit_code);
        let id = format!("job-{}", self.job_seq.fetch_add(1, Ordering::Relaxed));
        // The stored representation: the client's spec plus server fields.
        let stored = representation
            .clone()
            .with_child(Element::text_element("owner", owner))
            .with_child(Element::text_element("pid", pid.to_string()))
            .with_child(Element::text_element("notified", "false"));
        store
            .insert(&id, stored.clone())
            .map_err(|e| Fault::server(e.to_string()))?;
        Ok(CreateOutcome {
            id,
            stored,
            modified: None,
        })
    }

    /// "The representation of the resource may remain even when the
    /// resource (e.g., process) does not exist anymore" — Get always
    /// answers from the stored representation, decorated with live status.
    fn get(
        &self,
        id: &str,
        _op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<Element, Fault> {
        let doc = store
            .get(id)
            .ok_or_else(|| Fault::client(format!("no job `{id}`")))?;
        let (status, exit) = self.status_fields(&doc);
        let mut out = doc;
        out.add_child(Element::text_element("status", status));
        if let Some(code) = exit {
            out.remove_children(&"exitCode".into());
            out.add_child(Element::text_element("exitCode", code.to_string()));
        }
        Ok(out)
    }

    fn delete(
        &self,
        id: &str,
        _op: &Operation,
        _ctx: &OperationContext,
        store: &Arc<Collection>,
    ) -> Result<(), Fault> {
        let doc = store
            .get(id)
            .ok_or_else(|| Fault::client(format!("no job `{id}`")))?;
        if self.delete_kills_process {
            if let Some(pid) = doc.child_parse::<u64>("pid") {
                self.procs.kill(pid);
            }
        }
        store.remove(id);
        Ok(())
    }
}

// ========================================================== deployment ====

/// One deployed execution site (transfer flavour).
pub struct TransferSite {
    pub name: String,
    pub host: String,
    pub data_epr: EndpointReference,
    pub exec_epr: EndpointReference,
    pub events_epr: EndpointReference,
    pub exec_logic: Arc<ExecutionLogic>,
}

/// The deployed WS-Transfer VO.
pub struct TransferGrid {
    pub account_epr: EndpointReference,
    pub allocation_epr: EndpointReference,
    pub sites: Vec<TransferSite>,
    admin: ClientAgent,
}

impl TransferGrid {
    /// Deploy: Account + unified ResourceAllocation on `vo-host`, one
    /// Data + Execution (+ event source) per site host.
    pub fn deploy(
        tb: &Testbed,
        policy: SecurityPolicy,
        site_hosts: &[&str],
        applications: &[&str],
        users: &[&str],
    ) -> TransferGrid {
        let vo = tb.container("vo-host", policy);
        // VO services call site services (and vice versa) on the user's
        // behalf; give those server-to-server invokes a retry budget so a
        // lossy wire doesn't surface as an unretryable fault at the client.
        vo.set_call_retry(Some(ogsa_transport::RetryPolicy::default_call(
            tb.rng().fork("gib-call-retry").seed(),
        )));

        let (account_epr, _) =
            TransferService::deploy(&vo, "/services/Account", Arc::new(AccountLogic));

        let allocation_logic = Arc::new(AllocationLogic {
            account_epr: OnceLock::new(),
        });
        let (allocation_epr, _) = TransferService::deploy(
            &vo,
            "/services/ResourceAllocation",
            allocation_logic.clone(),
        );
        allocation_logic
            .account_epr
            .set(account_epr.clone())
            .expect("wired once");

        let admin = tb.client("vo-host", "CN=admin,O=VO", policy);
        let admin_proxy = TransferProxy::new(&admin);
        for user in users {
            admin_proxy
                .create(
                    &account_epr,
                    Element::new("account")
                        .with_child(Element::text_element("dn", *user))
                        .with_child(Element::text_element("privilege", "submit"))
                        .with_child(Element::text_element("owner", admin.dn())),
                )
                .expect("create account");
        }

        let mut sites = Vec::new();
        for (i, host) in site_hosts.iter().enumerate() {
            let site_name = format!("site-{i}");
            let container = tb.container(host, policy);
            // Job-exited events are the VO's one must-arrive message:
            // redeliver them when the simulated wire loses them. Seeded off
            // the testbed RNG so runs replay bit-identically.
            container.set_redelivery(Some(ogsa_transport::RetryPolicy::default_redelivery(
                tb.rng().fork("gib-redelivery").seed(),
            )));
            container.set_call_retry(vo.call_retry());
            let fs = HostFs::new(tb.clock().clone(), Arc::new(tb.model().clone()));
            let procs = ProcessTable::new(tb.clock().clone(), Arc::new(tb.model().clone()));

            let data_logic = Arc::new(DataLogic {
                fs,
                allocation_epr: OnceLock::new(),
                site_name: site_name.clone(),
            });
            let (data_epr, _) =
                TransferService::deploy(&container, "/services/Data", data_logic.clone());
            data_logic
                .allocation_epr
                .set(allocation_epr.clone())
                .expect("wired once");

            let exec_logic = Arc::new(ExecutionLogic {
                procs,
                site_name: site_name.clone(),
                allocation_epr: OnceLock::new(),
                notifier: OnceLock::new(),
                job_seq: AtomicU64::new(0),
                store: OnceLock::new(),
                delete_kills_process: true,
            });
            let (exec_epr, exec_store) =
                TransferService::deploy(&container, "/services/Execution", exec_logic.clone());
            let (events_epr, notifier) =
                EventSourceService::deploy(&container, "/services/ExecutionEvents");
            exec_logic
                .allocation_epr
                .set(allocation_epr.clone())
                .expect("wired once");
            exec_logic.notifier.set(notifier).ok().expect("wired once");
            exec_logic.store.set(exec_store).expect("wired once");

            // Register the computing site.
            let mut site = Element::new("site")
                .with_attr("name", site_name.clone())
                .with_child(Element::text_element("host", *host))
                .with_child(Element::text_element(
                    "execAddress",
                    exec_epr.address.clone(),
                ))
                .with_child(Element::text_element(
                    "dataAddress",
                    data_epr.address.clone(),
                ))
                .with_child(Element::text_element("owner", admin.dn()));
            for app in applications {
                site.add_child(Element::text_element("application", *app));
            }
            admin_proxy
                .create(&allocation_epr, site)
                .expect("register site");

            sites.push(TransferSite {
                name: site_name,
                host: host.to_string(),
                data_epr,
                exec_epr,
                events_epr,
                exec_logic,
            });
        }

        TransferGrid {
            account_epr,
            allocation_epr,
            sites,
            admin,
        }
    }

    pub fn admin(&self) -> &ClientAgent {
        &self.admin
    }

    /// Tick every site's completion monitor.
    pub fn pump_completions(&self) -> usize {
        self.sites
            .iter()
            .map(|s| s.exec_logic.pump_completions())
            .sum()
    }

    /// Start a user scenario session.
    pub fn scenario(&self, agent: ClientAgent) -> TransferGridScenario<'_> {
        TransferGridScenario {
            grid: self,
            agent,
            chosen: None,
            job: None,
            consumer: None,
            job_runtime: SimDuration::ZERO,
        }
    }
}

// ============================================================ scenario ====

struct ChosenSite {
    name: String,
    exec_address: String,
    data_address: String,
    events_address: String,
}

/// One grid user's session against the WS-Transfer VO.
pub struct TransferGridScenario<'g> {
    grid: &'g TransferGrid,
    agent: ClientAgent,
    chosen: Option<ChosenSite>,
    job: Option<EndpointReference>,
    consumer: Option<EventConsumer>,
    job_runtime: SimDuration,
}

impl TransferGridScenario<'_> {
    fn chosen(&self) -> Result<&ChosenSite, ScenarioError> {
        self.chosen
            .as_ref()
            .ok_or_else(|| ScenarioError::State("no site chosen yet".into()))
    }

    /// EPR of a staged file: `DN/filename` (client-constructed — the EPR
    /// opaqueness the paper's §2.3 debates, broken on purpose here).
    pub fn file_epr(&self, name: &str) -> Result<EndpointReference, ScenarioError> {
        let site = self.chosen()?;
        Ok(EndpointReference::resource(
            site.data_address.clone(),
            format!("{}/{name}", self.agent.dn()),
        ))
    }

    /// The job EPR, once instantiated.
    pub fn job_epr(&self) -> Option<&EndpointReference> {
        self.job.as_ref()
    }

    /// Poll job status via Get.
    pub fn job_status(&self) -> Result<String, ScenarioError> {
        let job = self
            .job
            .as_ref()
            .ok_or_else(|| ScenarioError::State("no job".into()))?;
        let rep = TransferProxy::new(&self.agent).get(job)?;
        Ok(rep.child_text("status").unwrap_or("unknown").to_owned())
    }
}

impl GridScenario for TransferGridScenario<'_> {
    fn stack_name(&self) -> &'static str {
        "WS-Transfer / WS-Eventing"
    }

    fn get_available_resource(&mut self, application: &str) -> Result<(), ScenarioError> {
        // Get with a "1"-prefixed id: the available-resources query mode.
        let query_epr = EndpointReference::resource(
            self.grid.allocation_epr.address.clone(),
            format!("1{application}"),
        );
        let resp = TransferProxy::new(&self.agent).get(&query_epr)?;
        let site = resp
            .child_elements()
            .next()
            .ok_or_else(|| ScenarioError::State(format!("no site offers `{application}`")))?;
        let name = site.attr_local("name").unwrap_or_default().to_owned();
        let exec_address = site
            .child_text("execAddress")
            .unwrap_or_default()
            .to_owned();
        let data_address = site
            .child_text("dataAddress")
            .unwrap_or_default()
            .to_owned();
        let events_address = format!("{exec_address}Events");
        self.chosen = Some(ChosenSite {
            name,
            exec_address,
            data_address,
            events_address,
        });
        Ok(())
    }

    fn make_reservation(&mut self) -> Result<(), ScenarioError> {
        let site = self.chosen()?.name.clone();
        // Put, R-mode.
        let epr = EndpointReference::resource(
            self.grid.allocation_epr.address.clone(),
            format!("R{site}"),
        );
        TransferProxy::new(&self.agent).put(
            &epr,
            Element::new("reservation")
                .with_child(Element::text_element("owner", self.agent.dn()))
                .with_child(Element::text_element("until", "0")),
        )?;
        Ok(())
    }

    fn upload_file(&mut self, name: &str, size_bytes: usize) -> Result<(), ScenarioError> {
        let data_address = self.chosen()?.data_address.clone();
        let factory = EndpointReference::service(data_address);
        TransferProxy::new(&self.agent).create(
            &factory,
            Element::new("file")
                .with_attr("name", name)
                .with_child(Element::text_element("owner", self.agent.dn()))
                .with_text("x".repeat(size_bytes)),
        )?;
        Ok(())
    }

    fn instantiate_job(&mut self, runtime: SimDuration) -> Result<(), ScenarioError> {
        let site = self.chosen()?;
        let events = EndpointReference::service(site.events_address.clone());
        let exec = EndpointReference::service(site.exec_address.clone());

        // Client call 1: subscribe (filtered to this user's jobs).
        static CONSUMER_SEQ: AtomicU64 = AtomicU64::new(0);
        let consumer = EventConsumer::listen(
            &self.agent,
            &format!(
                "/gib-events/{}",
                CONSUMER_SEQ.fetch_add(1, Ordering::Relaxed)
            ),
        );
        let req = SubscribeRequest::new(consumer.epr().clone())
            .with_filter(&format!("/JobEnded[@owner='{}']", self.agent.dn()));
        self.agent
            .invoke(&events, wse_actions::SUBSCRIBE, req.to_element())?;
        self.consumer = Some(consumer);

        // Client call 2: Create the job resource (server verifies the
        // reservation via one outcall to the allocation service).
        let spec = JobSpec::new("blast", runtime)
            .to_element()
            .with_child(Element::text_element("owner", self.agent.dn()));
        let (job, _) = TransferProxy::new(&self.agent).create(&exec, spec)?;
        self.job = Some(job);
        self.job_runtime = runtime;
        Ok(())
    }

    fn delete_file(&mut self, name: &str) -> Result<(), ScenarioError> {
        let epr = self.file_epr(name)?;
        TransferProxy::new(&self.agent).delete(&epr)?;
        Ok(())
    }

    fn unreserve_resource(&mut self) -> Result<(), ScenarioError> {
        // Put, U-mode: manual, client-paid — the Figure 6 asymmetry.
        let site = self.chosen()?.name.clone();
        let epr = EndpointReference::resource(
            self.grid.allocation_epr.address.clone(),
            format!("U{site}"),
        );
        TransferProxy::new(&self.agent).put(&epr, Element::new("unreserve"))?;
        Ok(())
    }

    fn unreserve_is_automatic(&self) -> bool {
        false
    }

    fn finish_job(&mut self, wait: Duration) -> Result<i32, ScenarioError> {
        self.agent
            .clock()
            .advance(self.job_runtime + SimDuration::from_micros(1));
        self.grid.pump_completions();
        let consumer = self
            .consumer
            .as_ref()
            .ok_or_else(|| ScenarioError::State("no subscription".into()))?;
        let own_job = self
            .job
            .as_ref()
            .and_then(|j| j.resource_id())
            .unwrap_or_default()
            .to_owned();
        let deadline = std::time::Instant::now() + wait;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let Some(body) = consumer.recv_timeout(remaining) else {
                return Err(ScenarioError::State(
                    "job-exited event never arrived".into(),
                ));
            };
            if body.attr_local("job") == Some(&own_job) {
                return Ok(body.child_parse("exitCode").unwrap_or(-1));
            }
        }
    }
}
