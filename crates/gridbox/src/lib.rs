//! # ogsa-gridbox
//!
//! "Grid-in-a-Box" (§4.2): a single virtual organisation offering remote
//! job execution, "inspired by the OMII 1.0 services", built twice:
//!
//! * [`wsrf_gib`] — the WSRF/WS-Notification version with **five** services
//!   (one resource type per service is a WSRF requirement):
//!   AccountService, ResourceAllocationService, ReservationService,
//!   DataService, ExecService. Directories, reservations and jobs are
//!   WS-Resources; accounts and available resources are *not* (§4.2.1).
//!   Reservations use scheduled termination; claiming a reservation
//!   lengthens its lifetime to infinity; the ExecService destroys it when
//!   the job completes — so un-reserving is automatic.
//! * [`transfer_gib`] — the WS-Transfer/WS-Eventing version with **four**
//!   services: Account, Data, a *unified* ResourceAllocation/Reservation
//!   service (WS-Transfer permits many resource types per service), and
//!   Execution. Everything is a resource; every interaction maps onto
//!   CRUD; EPRs carry client-visible structure (user DNs, `"1"`-prefixed
//!   query modes, trailing-`/` directory listings) — §4.2.2 verbatim.
//!
//! The common substrate ([`procsim`], [`hostfs`], [`job`]) simulates what
//! the paper's testbed provided natively: Win32 process spawning for jobs
//! and a host filesystem for staged data.
//!
//! [`api::GridScenario`] is the uniform surface the Figure-6 harness
//! measures: GetAvailableResource, MakeReservation, UploadFile,
//! InstantiateJob, DeleteFile, UnreserveResource.

pub mod admin;
pub mod api;
pub mod hostfs;
pub mod job;
pub mod procsim;
pub mod transfer_gib;
pub mod wsrf_gib;

pub use admin::{TransferAdminClient, WsrfAdminClient};
pub use api::{GridScenario, ScenarioError};
pub use hostfs::HostFs;
pub use job::JobSpec;
pub use procsim::{ProcStatus, ProcessTable};
pub use transfer_gib::TransferGrid;
pub use wsrf_gib::WsrfGrid;
