//! The simulated process spawner ("Proc Spawn Win Service" in Figure 5).
//!
//! A spawned job runs for a fixed span of *virtual* time and then exits
//! with its scripted exit code. Status is computed lazily against the
//! virtual clock, so "the job finished" becomes true as soon as enough
//! simulated time has been charged by anything in the testbed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ogsa_sim::{CostModel, SimDuration, SimInstant, VirtualClock};
use parking_lot::Mutex;

/// Observable state of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcStatus {
    Running,
    Exited { code: i32 },
    Killed,
}

#[derive(Debug, Clone)]
struct Proc {
    started: SimInstant,
    duration: SimDuration,
    exit_code: i32,
    killed: bool,
}

/// Per-host process table.
#[derive(Clone)]
pub struct ProcessTable {
    clock: VirtualClock,
    model: Arc<CostModel>,
    procs: Arc<Mutex<HashMap<u64, Proc>>>,
    next_pid: Arc<AtomicU64>,
}

impl ProcessTable {
    pub fn new(clock: VirtualClock, model: Arc<CostModel>) -> Self {
        ProcessTable {
            clock,
            model,
            procs: Arc::new(Mutex::new(HashMap::new())),
            next_pid: Arc::new(AtomicU64::new(1000)),
        }
    }

    /// Spawn a process that will exit with `exit_code` after `duration` of
    /// virtual time. Charges the Win32 CreateProcess-class cost.
    pub fn spawn(&self, duration: SimDuration, exit_code: i32) -> u64 {
        self.clock
            .advance(SimDuration::from_micros(self.model.process_spawn_us));
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
        self.procs.lock().insert(
            pid,
            Proc {
                started: self.clock.now(),
                duration,
                exit_code,
                killed: false,
            },
        );
        pid
    }

    /// Current status, computed against the virtual clock.
    pub fn status(&self, pid: u64) -> Option<ProcStatus> {
        let procs = self.procs.lock();
        let p = procs.get(&pid)?;
        Some(if p.killed {
            ProcStatus::Killed
        } else if self.clock.now() >= p.started.plus(p.duration) {
            ProcStatus::Exited { code: p.exit_code }
        } else {
            ProcStatus::Running
        })
    }

    /// Kill a running process; returns false if it already exited (or never
    /// existed).
    pub fn kill(&self, pid: u64) -> bool {
        let now = self.clock.now();
        let mut procs = self.procs.lock();
        match procs.get_mut(&pid) {
            Some(p) if !p.killed && now < p.started.plus(p.duration) => {
                p.killed = true;
                true
            }
            _ => false,
        }
    }

    /// How long the process has been running (or ran).
    pub fn elapsed(&self, pid: u64) -> Option<SimDuration> {
        let procs = self.procs.lock();
        let p = procs.get(&pid)?;
        let end = self.clock.now().min(p.started.plus(p.duration));
        Some(end.since(p.started))
    }

    /// Drop the table entry (job cleanup).
    pub fn reap(&self, pid: u64) -> bool {
        self.procs.lock().remove(&pid).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (VirtualClock, ProcessTable) {
        let clock = VirtualClock::new();
        let t = ProcessTable::new(clock.clone(), Arc::new(CostModel::free()));
        (clock, t)
    }

    #[test]
    fn process_runs_then_exits() {
        let (clock, t) = table();
        let pid = t.spawn(SimDuration::from_millis(10.0), 0);
        assert_eq!(t.status(pid), Some(ProcStatus::Running));
        clock.advance(SimDuration::from_millis(5.0));
        assert_eq!(t.status(pid), Some(ProcStatus::Running));
        clock.advance(SimDuration::from_millis(6.0));
        assert_eq!(t.status(pid), Some(ProcStatus::Exited { code: 0 }));
    }

    #[test]
    fn exit_codes_are_scripted() {
        let (clock, t) = table();
        let pid = t.spawn(SimDuration::ZERO, 42);
        clock.advance(SimDuration::from_micros(1));
        assert_eq!(t.status(pid), Some(ProcStatus::Exited { code: 42 }));
    }

    #[test]
    fn kill_only_works_while_running() {
        let (clock, t) = table();
        let pid = t.spawn(SimDuration::from_millis(10.0), 0);
        assert!(t.kill(pid));
        assert_eq!(t.status(pid), Some(ProcStatus::Killed));
        // Killing again or after exit fails.
        assert!(!t.kill(pid));
        let pid2 = t.spawn(SimDuration::from_millis(1.0), 0);
        clock.advance(SimDuration::from_millis(2.0));
        assert!(!t.kill(pid2));
    }

    #[test]
    fn spawn_charges_the_clock() {
        let clock = VirtualClock::new();
        let model = Arc::new(CostModel::calibrated_2005());
        let t = ProcessTable::new(clock.clone(), model.clone());
        let t0 = clock.now();
        t.spawn(SimDuration::ZERO, 0);
        assert_eq!(
            clock.now().since(t0),
            SimDuration::from_micros(model.process_spawn_us)
        );
    }

    #[test]
    fn elapsed_saturates_at_duration() {
        let (clock, t) = table();
        let pid = t.spawn(SimDuration::from_millis(3.0), 0);
        clock.advance(SimDuration::from_millis(100.0));
        assert_eq!(t.elapsed(pid), Some(SimDuration::from_millis(3.0)));
    }

    #[test]
    fn reap_removes() {
        let (_clock, t) = table();
        let pid = t.spawn(SimDuration::ZERO, 0);
        assert!(t.reap(pid));
        assert!(!t.reap(pid));
        assert_eq!(t.status(pid), None);
    }
}
