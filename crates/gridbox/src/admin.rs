//! The administrative client (§4.2.2 names "two clients (grid user and
//! admin client)"): typed wrappers for VO administration on both stacks —
//! account management and computing-site registration.

use ogsa_addressing::EndpointReference;
use ogsa_container::{ClientAgent, InvokeError};
use ogsa_transfer::TransferProxy;
use ogsa_xml::Element;

use crate::transfer_gib::TransferGrid;
use crate::wsrf_gib::WsrfGrid;

/// Admin operations against the WSRF VO (plain WebMethods on the Account
/// and ResourceAllocation services — not CRUD, per §4.2.1).
pub struct WsrfAdminClient<'g> {
    grid: &'g WsrfGrid,
    agent: ClientAgent,
}

impl<'g> WsrfAdminClient<'g> {
    pub fn new(grid: &'g WsrfGrid, agent: ClientAgent) -> Self {
        WsrfAdminClient { grid, agent }
    }

    /// `addAccount(dn, privileges)`.
    pub fn add_account(&self, dn: &str, privileges: &[&str]) -> Result<(), InvokeError> {
        let mut body = Element::new("addAccount").with_child(Element::text_element("dn", dn));
        for p in privileges {
            body.add_child(Element::text_element("privilege", *p));
        }
        self.agent
            .invoke(&self.grid.account_epr, "urn:gib/addAccount", body)?;
        Ok(())
    }

    /// `accountExists(dn)`.
    pub fn account_exists(&self, dn: &str) -> Result<bool, InvokeError> {
        let resp = self.agent.invoke(
            &self.grid.account_epr,
            "urn:gib/accountExists",
            Element::new("accountExists").with_child(Element::text_element("dn", dn)),
        )?;
        Ok(resp.text() == "true")
    }

    /// `removeAccount(dn)`.
    pub fn remove_account(&self, dn: &str) -> Result<(), InvokeError> {
        self.agent.invoke(
            &self.grid.account_epr,
            "urn:gib/removeAccount",
            Element::new("removeAccount").with_child(Element::text_element("dn", dn)),
        )?;
        Ok(())
    }

    /// Register an additional computing site with the allocation service.
    pub fn register_site(
        &self,
        name: &str,
        host: &str,
        applications: &[&str],
        exec: &EndpointReference,
        data: &EndpointReference,
    ) -> Result<(), InvokeError> {
        let mut body = Element::new("registerSite")
            .with_child(Element::text_element("name", name))
            .with_child(Element::text_element("host", host));
        for app in applications {
            body.add_child(Element::text_element("application", *app));
        }
        body.add_child(Element::new("execEPR").with_child(exec.to_element()));
        body.add_child(Element::new("dataEPR").with_child(data.to_element()));
        self.agent
            .invoke(&self.grid.allocation_epr, "urn:gib/registerSite", body)?;
        Ok(())
    }
}

/// Admin operations against the WS-Transfer VO — everything maps to CRUD:
/// accounts and sites are Created and Deleted like any other resource
/// (§4.2.2: "Create() and Delete() are administrative functions and can be
/// called only from the administrative client").
pub struct TransferAdminClient<'g> {
    grid: &'g TransferGrid,
    agent: ClientAgent,
}

impl<'g> TransferAdminClient<'g> {
    pub fn new(grid: &'g TransferGrid, agent: ClientAgent) -> Self {
        TransferAdminClient { grid, agent }
    }

    /// Create an account resource (id = the user's DN).
    pub fn add_account(
        &self,
        dn: &str,
        privileges: &[&str],
    ) -> Result<EndpointReference, InvokeError> {
        let mut rep = Element::new("account")
            .with_child(Element::text_element("dn", dn))
            .with_child(Element::text_element("owner", self.agent.dn()));
        for p in privileges {
            rep.add_child(Element::text_element("privilege", *p));
        }
        let (epr, _) = TransferProxy::new(&self.agent).create(&self.grid.account_epr, rep)?;
        Ok(epr)
    }

    /// Does an account exist (Get on the DN-keyed EPR)?
    pub fn account_exists(&self, dn: &str) -> bool {
        let epr = EndpointReference::resource(self.grid.account_epr.address.clone(), dn);
        TransferProxy::new(&self.agent).get(&epr).is_ok()
    }

    /// Privileges of an account — the Get mode that "queries the account
    /// service whether a particular user can perform a certain action".
    pub fn privileges(&self, dn: &str) -> Result<Vec<String>, InvokeError> {
        let epr = EndpointReference::resource(self.grid.account_epr.address.clone(), dn);
        let rep = TransferProxy::new(&self.agent).get(&epr)?;
        Ok(rep
            .child_elements()
            .filter(|e| &*e.name.local == "privilege")
            .map(|e| e.text())
            .collect())
    }

    /// Delete — "removes all the privileges of a particular user". The
    /// Delete body is empty, so in unsigned deployments the requester rides
    /// on the EPR as a reference property (signed deployments authenticate
    /// the signature instead).
    pub fn remove_account(&self, dn: &str) -> Result<(), InvokeError> {
        let epr = EndpointReference::resource(self.grid.account_epr.address.clone(), dn)
            .with_ref_property(Element::text_element("RequesterDN", self.agent.dn()));
        TransferProxy::new(&self.agent).delete(&epr)
    }

    /// Register a computing site (Create on the unified allocation service).
    pub fn register_site(
        &self,
        name: &str,
        host: &str,
        applications: &[&str],
        exec_address: &str,
        data_address: &str,
    ) -> Result<EndpointReference, InvokeError> {
        let mut rep = Element::new("site")
            .with_attr("name", name)
            .with_child(Element::text_element("host", host))
            .with_child(Element::text_element("execAddress", exec_address))
            .with_child(Element::text_element("dataAddress", data_address))
            .with_child(Element::text_element("owner", self.agent.dn()));
        for app in applications {
            rep.add_child(Element::text_element("application", *app));
        }
        let (epr, _) = TransferProxy::new(&self.agent).create(&self.grid.allocation_epr, rep)?;
        Ok(epr)
    }

    /// Permanently remove a computing site (Delete).
    pub fn unregister_site(&self, name: &str) -> Result<(), InvokeError> {
        let epr = EndpointReference::resource(self.grid.allocation_epr.address.clone(), name)
            .with_ref_property(Element::text_element("RequesterDN", self.agent.dn()));
        TransferProxy::new(&self.agent).delete(&epr)
    }
}
