//! Job descriptions and status documents, shared by both stacks.

use ogsa_sim::SimDuration;
use ogsa_xml::Element;

/// What a grid user submits: the application, its arguments, and the
/// scripted behaviour of the simulated process.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub application: String,
    pub arguments: Vec<String>,
    /// Virtual runtime of the simulated process.
    pub runtime: SimDuration,
    /// Scripted exit code.
    pub exit_code: i32,
}

impl JobSpec {
    pub fn new(application: &str, runtime: SimDuration) -> Self {
        JobSpec {
            application: application.to_owned(),
            arguments: Vec::new(),
            runtime,
            exit_code: 0,
        }
    }

    pub fn with_args(mut self, args: &[&str]) -> Self {
        self.arguments = args.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_exit_code(mut self, code: i32) -> Self {
        self.exit_code = code;
        self
    }

    /// XML form (the representation submitted to either stack).
    pub fn to_element(&self) -> Element {
        let mut e = Element::new("job");
        e.add_child(Element::text_element(
            "application",
            self.application.clone(),
        ));
        for a in &self.arguments {
            e.add_child(Element::text_element("argument", a.clone()));
        }
        e.add_child(Element::text_element(
            "runtimeMicros",
            self.runtime.as_micros().to_string(),
        ));
        e.add_child(Element::text_element(
            "exitCode",
            self.exit_code.to_string(),
        ));
        e
    }

    pub fn from_element(e: &Element) -> Option<Self> {
        Some(JobSpec {
            application: e.child_text("application")?.to_owned(),
            arguments: e
                .child_elements()
                .filter(|c| &*c.name.local == "argument")
                .map(|c| c.text())
                .collect(),
            runtime: SimDuration::from_micros(e.child_parse("runtimeMicros")?),
            exit_code: e.child_parse("exitCode")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip() {
        let spec = JobSpec::new("blast", SimDuration::from_millis(250.0))
            .with_args(&["-i", "seq.fa"])
            .with_exit_code(3);
        let back = JobSpec::from_element(&spec.to_element()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn missing_fields_are_none() {
        assert!(JobSpec::from_element(&Element::new("job")).is_none());
    }
}
