//! The simulated host filesystem the DataServices stage files on.
//!
//! In-memory directories and files with calibrated I/O costs charged per
//! access; the WS-Transfer DataService's hash-of-DN directory naming
//! (§4.2.2) is provided as a helper.

use std::collections::BTreeMap;
use std::sync::Arc;

use ogsa_sim::{CostModel, VirtualClock};
use parking_lot::Mutex;

/// One staged directory: `file name → contents`.
type Directory = BTreeMap<String, Vec<u8>>;

/// Per-host filesystem: `directory name → (file name → contents)`.
#[derive(Clone)]
pub struct HostFs {
    clock: VirtualClock,
    model: Arc<CostModel>,
    dirs: Arc<Mutex<BTreeMap<String, Directory>>>,
}

impl HostFs {
    pub fn new(clock: VirtualClock, model: Arc<CostModel>) -> Self {
        HostFs {
            clock,
            model,
            dirs: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The WS-Transfer DataService's directory naming: "The directory
    /// created is a hash of the user DN" (§4.2.2).
    pub fn dn_directory(dn: &str) -> String {
        // FNV-1a, stable across runs.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in dn.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("u{h:016x}")
    }

    /// Create a directory (idempotent). Charged as one file op.
    pub fn create_dir(&self, dir: &str) {
        self.clock.advance(self.model.file_time(0));
        self.dirs.lock().entry(dir.to_owned()).or_default();
    }

    pub fn dir_exists(&self, dir: &str) -> bool {
        self.dirs.lock().contains_key(dir)
    }

    /// Write (or overwrite) a file; creates the directory if needed.
    pub fn write_file(&self, dir: &str, name: &str, contents: Vec<u8>) {
        self.clock.advance(self.model.file_time(contents.len()));
        self.dirs
            .lock()
            .entry(dir.to_owned())
            .or_default()
            .insert(name.to_owned(), contents);
    }

    /// Read a file's contents.
    pub fn read_file(&self, dir: &str, name: &str) -> Option<Vec<u8>> {
        let dirs = self.dirs.lock();
        let contents = dirs.get(dir)?.get(name)?.clone();
        drop(dirs);
        self.clock.advance(self.model.file_time(contents.len()));
        Some(contents)
    }

    /// File names in a directory (the DataService's dynamically-computed
    /// file-list resource property).
    pub fn list_dir(&self, dir: &str) -> Option<Vec<String>> {
        self.clock.advance(self.model.file_time(0));
        Some(self.dirs.lock().get(dir)?.keys().cloned().collect())
    }

    /// Delete one file; false if absent.
    pub fn delete_file(&self, dir: &str, name: &str) -> bool {
        self.clock.advance(self.model.file_time(0));
        self.dirs
            .lock()
            .get_mut(dir)
            .map(|d| d.remove(name).is_some())
            .unwrap_or(false)
    }

    /// Remove a directory and its contents (the WSRF DataService's Destroy).
    pub fn delete_dir(&self, dir: &str) -> bool {
        self.clock.advance(self.model.file_time(0));
        self.dirs.lock().remove(dir).is_some()
    }

    /// Size of a file, without charging I/O (metadata).
    pub fn file_size(&self, dir: &str, name: &str) -> Option<usize> {
        self.dirs.lock().get(dir)?.get(name).map(Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> HostFs {
        HostFs::new(VirtualClock::new(), Arc::new(CostModel::free()))
    }

    #[test]
    fn file_lifecycle() {
        let fs = fs();
        fs.write_file("d1", "a.dat", vec![1, 2, 3]);
        assert_eq!(fs.read_file("d1", "a.dat"), Some(vec![1, 2, 3]));
        assert_eq!(fs.file_size("d1", "a.dat"), Some(3));
        assert_eq!(fs.list_dir("d1"), Some(vec!["a.dat".into()]));
        assert!(fs.delete_file("d1", "a.dat"));
        assert!(!fs.delete_file("d1", "a.dat"));
        assert_eq!(fs.list_dir("d1"), Some(vec![]));
    }

    #[test]
    fn overwrite_replaces() {
        let fs = fs();
        fs.write_file("d", "f", vec![1]);
        fs.write_file("d", "f", vec![2, 3]);
        assert_eq!(fs.read_file("d", "f"), Some(vec![2, 3]));
    }

    #[test]
    fn delete_dir_removes_contents() {
        let fs = fs();
        fs.write_file("d", "f", vec![1]);
        assert!(fs.delete_dir("d"));
        assert!(!fs.dir_exists("d"));
        assert!(fs.read_file("d", "f").is_none());
        assert!(!fs.delete_dir("d"));
    }

    #[test]
    fn dn_directory_is_stable_and_distinct() {
        let a1 = HostFs::dn_directory("CN=alice,O=VO");
        let a2 = HostFs::dn_directory("CN=alice,O=VO");
        let b = HostFs::dn_directory("CN=bob,O=VO");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert!(a1.starts_with('u'));
    }

    #[test]
    fn io_charges_scale_with_size() {
        let clock = VirtualClock::new();
        let fs = HostFs::new(clock.clone(), Arc::new(CostModel::calibrated_2005()));
        let t0 = clock.now();
        fs.write_file("d", "small", vec![0; 10]);
        let small = clock.now().since(t0);
        let t1 = clock.now();
        fs.write_file("d", "big", vec![0; 512 * 1024]);
        let big = clock.now().since(t1);
        assert!(big > small * 10);
    }
}
