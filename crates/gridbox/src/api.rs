//! The uniform Grid-in-a-Box scenario surface the Figure-6 harness drives.

use std::time::Duration;

use ogsa_container::InvokeError;
use ogsa_sim::SimDuration;

/// Errors surfaced by scenario steps.
#[derive(Debug)]
pub enum ScenarioError {
    Invoke(InvokeError),
    /// A step ran out of order or a precondition is missing.
    State(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invoke(e) => write!(f, "{e}"),
            ScenarioError::State(s) => write!(f, "scenario state error: {s}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<InvokeError> for ScenarioError {
    fn from(e: InvokeError) -> Self {
        ScenarioError::Invoke(e)
    }
}

/// One grid user's session against a deployed VO — the operations of
/// Figure 6, in their natural order. Implementations keep the scenario
/// state (chosen site, reservation, data directory, running job) so each
/// step can be timed in isolation by the harness.
pub trait GridScenario {
    /// Stack label for reports.
    fn stack_name(&self) -> &'static str;

    /// "What resources are available for my application?" Picks (and
    /// remembers) a site offering `application`. Errors if none.
    fn get_available_resource(&mut self, application: &str) -> Result<(), ScenarioError>;

    /// Reserve the chosen site under the user's DN.
    fn make_reservation(&mut self) -> Result<(), ScenarioError>;

    /// Stage a file into the user's data space on the chosen site.
    fn upload_file(&mut self, name: &str, size_bytes: usize) -> Result<(), ScenarioError>;

    /// Start the job (runtime/exit scripted by `runtime`): verifies the
    /// reservation, claims it, subscribes for completion, spawns.
    fn instantiate_job(&mut self, runtime: SimDuration) -> Result<(), ScenarioError>;

    /// Delete a previously staged file.
    fn delete_file(&mut self, name: &str) -> Result<(), ScenarioError>;

    /// Release the reservation. In the WSRF version this is automatic
    /// (the ExecService destroys the reservation when the job completes),
    /// so the implementation performs no client work and reports so via
    /// [`GridScenario::unreserve_is_automatic`].
    fn unreserve_resource(&mut self) -> Result<(), ScenarioError>;

    /// True if unreserve costs the client nothing (reported as 0 in
    /// Figure 6).
    fn unreserve_is_automatic(&self) -> bool;

    /// Drive the job to completion: advance virtual time past the job's
    /// runtime, pump the exec service's completion monitor, and wait for
    /// the asynchronous job-exited notification. Returns the exit code.
    fn finish_job(&mut self, wait: Duration) -> Result<i32, ScenarioError>;
}
