//! # ogsa-addressing
//!
//! WS-Addressing (2004/08 member submission, as cited by the paper): the
//! [`EndpointReference`] (EPR) construct both stacks use to name resources,
//! and the message-information headers (`wsa:To`, `wsa:Action`,
//! `wsa:MessageID`, `wsa:ReplyTo`, `wsa:RelatesTo`) stamped on every SOAP
//! exchange.
//!
//! The EPR is where the paper's qualitative comparison lives: WSRF treats
//! reference properties as opaque, service-minted names (the WS-Resource
//! Access Pattern), while the WS-Transfer Grid-in-a-Box deliberately leaks
//! structure into them (a user DN, a `"1"` prefix selecting a query mode, a
//! trailing `/` selecting a directory listing). Both styles are expressible
//! here; the application crates exercise both.

pub mod epr;
pub mod headers;

pub use epr::EndpointReference;
pub use headers::{MessageHeaders, ANONYMOUS};
