//! WS-Addressing message information headers.

use ogsa_soap::Envelope;
use ogsa_xml::{ns, Element, QName, XmlError, XmlResult};

use crate::epr::EndpointReference;

/// The anonymous reply address: "respond on the connection".
pub const ANONYMOUS: &str = "http://schemas.xmlsoap.org/ws/2004/08/addressing/role/anonymous";

/// The message-information headers stamped on every exchange: destination,
/// action URI, message id, optional reply-to/relates-to, plus the target
/// EPR's reference properties echoed as first-class headers (the 2004/08
/// binding rule WSRF.NET's "wrapper service" relies on to locate the
/// WS-Resource).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MessageHeaders {
    pub to: String,
    pub action: String,
    pub message_id: String,
    pub reply_to: Option<EndpointReference>,
    pub relates_to: Option<String>,
    /// Reference properties echoed from the target EPR.
    pub reference_properties: Vec<Element>,
}

impl MessageHeaders {
    /// Headers for a request to `target` with the given action URI.
    pub fn request(
        target: &EndpointReference,
        action: impl Into<String>,
        message_id: impl Into<String>,
    ) -> Self {
        MessageHeaders {
            to: target.address.clone(),
            action: action.into(),
            message_id: message_id.into(),
            reply_to: None,
            relates_to: None,
            reference_properties: target
                .reference_properties
                .iter()
                .chain(target.reference_parameters.iter())
                .cloned()
                .collect(),
        }
    }

    /// Headers for the response to `request`.
    pub fn response(request: &MessageHeaders, message_id: impl Into<String>) -> Self {
        MessageHeaders {
            to: request
                .reply_to
                .as_ref()
                .map(|r| r.address.clone())
                .unwrap_or_else(|| ANONYMOUS.to_owned()),
            action: format!("{}Response", request.action),
            message_id: message_id.into(),
            reply_to: None,
            relates_to: Some(request.message_id.clone()),
            reference_properties: Vec::new(),
        }
    }

    /// Set the reply-to EPR (builder style) — used by asynchronous
    /// notification subscriptions.
    pub fn with_reply_to(mut self, epr: EndpointReference) -> Self {
        self.reply_to = Some(epr);
        self
    }

    /// Stamp these headers onto an envelope.
    pub fn apply(&self, mut env: Envelope) -> Envelope {
        let q = |l: &str| QName::new(ns::WSA, l);
        env.headers
            .push(Element::text_element(q("To"), self.to.clone()));
        env.headers
            .push(Element::text_element(q("Action"), self.action.clone()));
        env.headers.push(Element::text_element(
            q("MessageID"),
            self.message_id.clone(),
        ));
        if let Some(r) = &self.reply_to {
            env.headers.push(r.to_element_named(q("ReplyTo")));
        }
        if let Some(r) = &self.relates_to {
            env.headers
                .push(Element::text_element(q("RelatesTo"), r.clone()));
        }
        for p in &self.reference_properties {
            env.headers.push(p.clone());
        }
        env
    }

    /// Extract the addressing headers from an envelope. The leftover headers
    /// (anything not in the wsa namespace) are treated as echoed reference
    /// properties, per the 2004/08 binding.
    pub fn extract(env: &Envelope) -> XmlResult<Self> {
        let q = |l: &str| QName::new(ns::WSA, l);
        let text = |l: &str| env.header(&q(l)).map(|h| h.text());
        let to = text("To").ok_or_else(|| XmlError::Schema("missing wsa:To".into()))?;
        let action = text("Action").ok_or_else(|| XmlError::Schema("missing wsa:Action".into()))?;
        let message_id = text("MessageID").unwrap_or_default();
        let reply_to = env
            .header(&q("ReplyTo"))
            .map(EndpointReference::from_element)
            .transpose()?;
        let relates_to = text("RelatesTo");
        let reference_properties = env
            .headers
            .iter()
            .filter(|h| {
                !h.name.in_ns(ns::WSA)
                    && !h.name.in_ns(ns::WSSE)
                    && !h.name.in_ns(ns::WSU)
                    && !h.name.in_ns(ns::TEL)
            })
            .cloned()
            .collect();
        Ok(MessageHeaders {
            to,
            action,
            message_id,
            reply_to,
            relates_to,
            reference_properties,
        })
    }

    /// The echoed `ResourceID` reference property, if any — how a service
    /// locates the WS-Resource (or WS-Transfer resource) a request targets.
    pub fn resource_id(&self) -> Option<&str> {
        self.reference_properties
            .iter()
            .find(|p| &*p.name.local == crate::epr::RESOURCE_ID)
            .map(|p| {
                p.children
                    .iter()
                    .find_map(|n| match n {
                        ogsa_xml::Node::Text(t) => Some(t.as_str()),
                        _ => None,
                    })
                    .unwrap_or("")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> EndpointReference {
        EndpointReference::resource("http://host-a/services/Counter", "c-7")
    }

    #[test]
    fn request_headers_echo_reference_properties() {
        let h = MessageHeaders::request(&target(), "urn:get", "msg-1");
        assert_eq!(h.resource_id(), Some("c-7"));
        assert_eq!(h.to, "http://host-a/services/Counter");
    }

    #[test]
    fn apply_extract_roundtrip() {
        let h = MessageHeaders::request(&target(), "urn:get", "msg-1")
            .with_reply_to(EndpointReference::service("http://client/notify"));
        let env = h.apply(Envelope::new(Element::new("Get")));
        let back = MessageHeaders::extract(&env).unwrap();
        assert_eq!(back.to, h.to);
        assert_eq!(back.action, "urn:get");
        assert_eq!(back.message_id, "msg-1");
        assert_eq!(back.resource_id(), Some("c-7"));
        assert_eq!(back.reply_to.unwrap().address, "http://client/notify");
    }

    #[test]
    fn response_relates_to_request() {
        let req = MessageHeaders::request(&target(), "urn:get", "msg-9");
        let resp = MessageHeaders::response(&req, "msg-10");
        assert_eq!(resp.relates_to.as_deref(), Some("msg-9"));
        assert_eq!(resp.action, "urn:getResponse");
        assert_eq!(resp.to, ANONYMOUS);
    }

    #[test]
    fn response_targets_reply_to_when_present() {
        let req = MessageHeaders::request(&target(), "urn:a", "m")
            .with_reply_to(EndpointReference::service("http://client/cb"));
        let resp = MessageHeaders::response(&req, "m2");
        assert_eq!(resp.to, "http://client/cb");
    }

    #[test]
    fn extract_requires_to_and_action() {
        let env = Envelope::new(Element::new("X"));
        assert!(MessageHeaders::extract(&env).is_err());
    }

    #[test]
    fn telemetry_headers_are_not_reference_properties() {
        let h = MessageHeaders::request(&target(), "urn:get", "m");
        let mut env = h.apply(Envelope::new(Element::new("Get")));
        env.headers.push(Element::text_element(
            QName::new(ns::TEL, "TraceId"),
            "00ff",
        ));
        env.headers
            .push(Element::text_element(QName::new(ns::TEL, "SpanId"), "00aa"));
        let back = MessageHeaders::extract(&env).unwrap();
        assert_eq!(back.reference_properties.len(), 1);
        assert_eq!(back.resource_id(), Some("c-7"));
    }

    #[test]
    fn security_headers_are_not_reference_properties() {
        let h = MessageHeaders::request(&target(), "urn:get", "m");
        let mut env = h.apply(Envelope::new(Element::new("Get")));
        env.headers
            .push(Element::new(QName::new(ns::WSSE, "Security")));
        let back = MessageHeaders::extract(&env).unwrap();
        assert_eq!(back.reference_properties.len(), 1);
    }
}
