//! Endpoint references.

use ogsa_xml::{ns, Element, QName, XmlError, XmlResult};

/// A WS-Addressing endpoint reference: a transport address plus the opaque
/// reference properties/parameters that, for both stacks, carry resource
/// identity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EndpointReference {
    /// Transport address, e.g. `http://host-a/services/CounterService`.
    pub address: String,
    /// Reference properties (2004/08 style — echoed as SOAP headers).
    pub reference_properties: Vec<Element>,
    /// Reference parameters.
    pub reference_parameters: Vec<Element>,
}

/// The conventional name of the reference property both implementations in
/// the paper used to carry the resource key.
pub const RESOURCE_ID: &str = "ResourceID";

impl EndpointReference {
    /// An EPR with only a transport address (a plain service, no resource).
    pub fn service(address: impl Into<String>) -> Self {
        EndpointReference {
            address: address.into(),
            ..Default::default()
        }
    }

    /// An EPR addressing a resource: the address plus a `ResourceID`
    /// reference property.
    pub fn resource(address: impl Into<String>, resource_id: impl Into<String>) -> Self {
        EndpointReference::service(address).with_resource_id(resource_id)
    }

    /// Add / replace the `ResourceID` reference property.
    pub fn with_resource_id(mut self, id: impl Into<String>) -> Self {
        self.reference_properties
            .retain(|p| &*p.name.local != RESOURCE_ID);
        self.reference_properties
            .push(Element::text_element(RESOURCE_ID, id.into()));
        self
    }

    /// Add an arbitrary reference property (builder style).
    pub fn with_ref_property(mut self, prop: Element) -> Self {
        self.reference_properties.push(prop);
        self
    }

    /// The `ResourceID` reference property, if present.
    pub fn resource_id(&self) -> Option<&str> {
        self.ref_property(RESOURCE_ID)
    }

    /// Text of the first reference property with the given local name.
    pub fn ref_property(&self, local: &str) -> Option<&str> {
        self.reference_properties
            .iter()
            .find(|p| &*p.name.local == local)
            .map(|p| {
                p.children.iter().find_map(|n| match n {
                    ogsa_xml::Node::Text(t) => Some(t.as_str()),
                    _ => None,
                })
            })?
            .or(Some(""))
    }

    // ---- address decomposition -----------------------------------------

    /// URI scheme (`http`, `https`, `tcp`).
    pub fn scheme(&self) -> &str {
        self.address.split("://").next().unwrap_or("")
    }

    /// Host component of the address.
    pub fn host(&self) -> &str {
        let rest = self
            .address
            .split_once("://")
            .map(|(_, r)| r)
            .unwrap_or(&self.address);
        rest.split('/').next().unwrap_or(rest)
    }

    /// Path component (with leading `/`), or `"/"`.
    pub fn path(&self) -> &str {
        let rest = self
            .address
            .split_once("://")
            .map(|(_, r)| r)
            .unwrap_or(&self.address);
        match rest.find('/') {
            Some(i) => &rest[i..],
            None => "/",
        }
    }

    // ---- XML form --------------------------------------------------------

    /// Serialise under the given element name (EPRs appear under many names:
    /// `wsa:EndpointReference`, `wsnt:ConsumerReference`, `wse:NotifyTo`...).
    pub fn to_element_named(&self, name: QName) -> Element {
        let mut e = Element::new(name);
        e.add_child(Element::text_element(
            QName::new(ns::WSA, "Address"),
            self.address.clone(),
        ));
        if !self.reference_properties.is_empty() {
            let mut props = Element::new(QName::new(ns::WSA, "ReferenceProperties"));
            for p in &self.reference_properties {
                props.add_child(p.clone());
            }
            e.add_child(props);
        }
        if !self.reference_parameters.is_empty() {
            let mut params = Element::new(QName::new(ns::WSA, "ReferenceParameters"));
            for p in &self.reference_parameters {
                params.add_child(p.clone());
            }
            e.add_child(params);
        }
        e
    }

    /// Serialise as `wsa:EndpointReference`.
    pub fn to_element(&self) -> Element {
        self.to_element_named(QName::new(ns::WSA, "EndpointReference"))
    }

    /// Parse an EPR from any element with the WS-Addressing shape.
    pub fn from_element(e: &Element) -> XmlResult<Self> {
        let address = e
            .child(&QName::new(ns::WSA, "Address"))
            .or_else(|| e.child_local("Address"))
            .ok_or_else(|| XmlError::Schema("EPR missing wsa:Address".into()))?
            .text();
        let reference_properties = e
            .child(&QName::new(ns::WSA, "ReferenceProperties"))
            .or_else(|| e.child_local("ReferenceProperties"))
            .map(|p| p.child_elements().cloned().collect())
            .unwrap_or_default();
        let reference_parameters = e
            .child(&QName::new(ns::WSA, "ReferenceParameters"))
            .or_else(|| e.child_local("ReferenceParameters"))
            .map(|p| p.child_elements().cloned().collect())
            .unwrap_or_default();
        Ok(EndpointReference {
            address,
            reference_properties,
            reference_parameters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_epr_roundtrip() {
        let epr = EndpointReference::service("http://host-a/services/Account");
        let back = EndpointReference::from_element(&epr.to_element()).unwrap();
        assert_eq!(epr, back);
        assert!(back.resource_id().is_none());
    }

    #[test]
    fn resource_epr_roundtrip() {
        let epr = EndpointReference::resource("http://host-a/services/Counter", "c-42");
        let back = EndpointReference::from_element(&epr.to_element()).unwrap();
        assert_eq!(back.resource_id(), Some("c-42"));
        assert_eq!(back, epr);
    }

    #[test]
    fn with_resource_id_replaces() {
        let epr = EndpointReference::resource("http://h/s", "a").with_resource_id("b");
        assert_eq!(epr.resource_id(), Some("b"));
        assert_eq!(epr.reference_properties.len(), 1);
    }

    #[test]
    fn custom_reference_properties() {
        // The WS-Transfer Grid-in-a-Box embeds a user DN in the EPR (§4.2.2).
        let epr = EndpointReference::service("http://h/data")
            .with_ref_property(Element::text_element("UserDN", "CN=alice,O=UVa"));
        assert_eq!(epr.ref_property("UserDN"), Some("CN=alice,O=UVa"));
        let back = EndpointReference::from_element(&epr.to_element()).unwrap();
        assert_eq!(back.ref_property("UserDN"), Some("CN=alice,O=UVa"));
    }

    #[test]
    fn address_decomposition() {
        let epr = EndpointReference::service("https://host-b/services/Exec");
        assert_eq!(epr.scheme(), "https");
        assert_eq!(epr.host(), "host-b");
        assert_eq!(epr.path(), "/services/Exec");
        let bare = EndpointReference::service("tcp://client-1");
        assert_eq!(bare.scheme(), "tcp");
        assert_eq!(bare.host(), "client-1");
        assert_eq!(bare.path(), "/");
    }

    #[test]
    fn missing_address_is_schema_error() {
        let e = Element::new(QName::new(ns::WSA, "EndpointReference"));
        assert!(EndpointReference::from_element(&e).is_err());
    }

    #[test]
    fn empty_resource_id_reads_as_empty_string() {
        let epr =
            EndpointReference::service("http://h/s").with_ref_property(Element::new(RESOURCE_ID));
        assert_eq!(epr.resource_id(), Some(""));
    }

    #[test]
    fn reference_parameters_roundtrip() {
        let mut epr = EndpointReference::service("http://h/s");
        epr.reference_parameters
            .push(Element::text_element("SessionKey", "xyz"));
        let back = EndpointReference::from_element(&epr.to_element()).unwrap();
        assert_eq!(back.reference_parameters.len(), 1);
    }
}
