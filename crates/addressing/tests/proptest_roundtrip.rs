//! Property tests: EPRs and message headers survive XML round trips with
//! arbitrary addresses and reference properties.

use ogsa_addressing::{EndpointReference, MessageHeaders};
use ogsa_soap::Envelope;
use ogsa_xml::Element;
use proptest::prelude::*;

fn arb_host() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9-]{0,12}").unwrap()
}

fn arb_id() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z0-9 ,=/_.-]{1,40}").unwrap()
}

fn arb_epr() -> impl Strategy<Value = EndpointReference> {
    (
        arb_host(),
        proptest::string::string_regex("[a-z]{1,8}(/[a-z]{1,8}){0,2}").unwrap(),
        proptest::option::of(arb_id()),
        proptest::collection::vec(
            (
                proptest::string::string_regex("[A-Za-z]{1,10}").unwrap(),
                arb_id(),
            ),
            0..3,
        ),
    )
        .prop_map(|(host, path, rid, props)| {
            let mut epr = EndpointReference::service(format!("http://{host}/{path}"));
            if let Some(rid) = rid {
                epr = epr.with_resource_id(rid);
            }
            for (k, v) in props {
                // Avoid colliding with the ResourceID property.
                if k != "ResourceID" {
                    epr = epr.with_ref_property(Element::text_element(k.as_str(), v));
                }
            }
            epr
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn epr_xml_roundtrip(epr in arb_epr()) {
        let back = EndpointReference::from_element(&epr.to_element()).unwrap();
        prop_assert_eq!(epr, back);
    }

    #[test]
    fn epr_survives_the_wire(epr in arb_epr()) {
        // Serialise inside an envelope (as responses embed EPRs), reparse.
        let env = Envelope::new(Element::new("R").with_child(epr.to_element()));
        let back_env = Envelope::from_wire(&env.to_wire()).unwrap();
        let back = EndpointReference::from_element(
            back_env.body.child_elements().next().unwrap(),
        )
        .unwrap();
        prop_assert_eq!(epr, back);
    }

    #[test]
    fn headers_apply_extract_roundtrip(epr in arb_epr(), action in "[a-z:/]{1,30}", msg in "[a-z0-9-]{1,20}") {
        let headers = MessageHeaders::request(&epr, action.clone(), msg.clone());
        let env = headers.apply(Envelope::new(Element::new("B")));
        let wire = Envelope::from_wire(&env.to_wire()).unwrap();
        let back = MessageHeaders::extract(&wire).unwrap();
        prop_assert_eq!(back.resource_id(), epr.resource_id());
        prop_assert_eq!(back.action, action);
        prop_assert_eq!(back.message_id, msg);
        prop_assert_eq!(back.to, epr.address.clone());
    }

    #[test]
    fn host_path_decomposition_reassembles(host in arb_host(), path in "[a-z]{1,8}(/[a-z]{1,8}){0,2}") {
        let address = format!("https://{host}/{path}");
        let epr = EndpointReference::service(address.clone());
        prop_assert_eq!(epr.scheme(), "https");
        prop_assert_eq!(
            format!("{}://{}{}", epr.scheme(), epr.host(), epr.path()),
            address
        );
    }
}
