//! Wall-clock load generator for the serving tier.
//!
//! One thread drives every connection through its own epoll instance
//! (mirroring the server's worker structure), replaying a pre-serialised
//! request template over keep-alive connections. Two modes:
//!
//! * **Closed loop** — each connection keeps exactly one request in
//!   flight; the next is sent the instant the response lands. Measures
//!   peak sustainable throughput.
//! * **Open loop** — requests arrive on a fixed global schedule
//!   regardless of completions, round-robined across connections;
//!   latency is measured from the *scheduled* arrival, so queueing delay
//!   is charged to the server the way an outside observer would see it.
//!
//! Latencies land in a log-bucketed histogram (HDR-style: power-of-two
//! groups split into 32 sub-buckets, ≤ ~3% relative error) so p50/p99/
//! p999 come out of a fixed 2 KB table no matter how many requests run.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// One request in flight per connection, back-to-back.
    Closed,
    /// Fixed arrival rate (requests/second) across all connections.
    Open { rps: f64 },
}

/// One load run against a bound server.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    pub addr: SocketAddr,
    /// Concurrent keep-alive connections to hold open.
    pub connections: usize,
    /// Measured window (after warmup).
    pub duration: Duration,
    /// Requests completed before this much time are not recorded.
    pub warmup: Duration,
    pub mode: LoadMode,
    /// Request target, e.g. `/services/counter`.
    pub target: String,
    /// `Host` header value (picks the container on the network).
    pub host: String,
    /// Pre-serialised request body — signed once, replayed verbatim; the
    /// server still verifies and signs per request.
    pub body: String,
    /// When set, a scraper thread GETs `/metrics` from this admin address
    /// mid-run (halfway through the measured window) and again after the
    /// run, proving the exposition stays parseable under sustained load
    /// and that the server-side request counter squares with the
    /// client-side tally ([`ScrapeCheck`]).
    pub scrape_admin: Option<SocketAddr>,
}

/// What the optional mid-run admin scrape saw.
#[derive(Debug, Clone)]
pub struct ScrapeCheck {
    /// Whether the mid-run exposition parsed and its histograms were
    /// cumulative + consistent.
    pub mid_run_parsed: bool,
    /// `serve_requests` from the mid-run scrape.
    pub mid_run_server_requests: u64,
    /// `serve_requests` from the post-run scrape.
    pub final_server_requests: u64,
}

impl ScrapeCheck {
    /// Server-vs-client consistency: a mid-run scrape must parse, the
    /// server counter must be monotone across scrapes, and the final
    /// server-side count must cover every request the client measured
    /// (the server also counts warmup and foreign traffic, so `>=`).
    pub fn consistent_with(&self, client_requests: u64) -> bool {
        self.mid_run_parsed
            && self.mid_run_server_requests <= self.final_server_requests
            && self.final_server_requests >= client_requests
    }
}

/// What a run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub connections_requested: usize,
    pub connections_established: usize,
    pub requests: u64,
    pub errors: u64,
    pub elapsed: Duration,
    /// Completed requests per wall-clock second over the measured window.
    pub rps: f64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
    pub max_us: u64,
    /// Present when [`LoadConfig::scrape_admin`] was set.
    pub scrape: Option<ScrapeCheck>,
}

// ---- log-bucket latency histogram ------------------------------------------

const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
const BUCKETS: usize = 2048;

/// Fixed-size log-bucket histogram over microsecond values.
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

fn bucket_of(us: u64) -> usize {
    let v = us.max(1);
    let msb = 63 - v.leading_zeros() as u64;
    if msb <= SUB_BITS as u64 {
        v as usize
    } else {
        let shift = msb - SUB_BITS as u64;
        let sub = (v >> shift) & (SUB - 1);
        (((msb - SUB_BITS as u64) << SUB_BITS) + SUB + sub) as usize
    }
}

fn bucket_floor(idx: usize) -> u64 {
    if idx < (2 * SUB as usize) {
        idx as u64
    } else {
        let g = (idx >> SUB_BITS) as u64 - 1;
        let sub = (idx & (SUB as usize - 1)) as u64;
        (SUB + sub) << g
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn record(&mut self, us: u64) {
        self.counts[bucket_of(us).min(BUCKETS - 1)] += 1;
        self.total += 1;
        self.sum += us;
        self.max = self.max.max(us);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn mean_us(&self) -> u64 {
        self.sum.checked_div(self.total).unwrap_or(0)
    }

    pub fn max_us(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in [0, 1]: the floor of the bucket holding
    /// the q-th observation (≤ ~3% below the true value).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max
    }
}

// ---- RLIMIT_NOFILE ---------------------------------------------------------

/// Raise the soft open-file limit toward `want` (capped at the hard
/// limit), returning the resulting soft limit. Thousands of sockets need
/// more than the 1024 default on stock CI runners. No-op off Linux.
#[cfg(target_os = "linux")]
pub fn raise_nofile_limit(want: u64) -> u64 {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    unsafe {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.cur < want {
            let raised = Rlimit {
                cur: want.min(lim.max),
                max: lim.max,
            };
            if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
                return raised.cur;
            }
        }
        lim.cur
    }
}

#[cfg(not(target_os = "linux"))]
pub fn raise_nofile_limit(_want: u64) -> u64 {
    u64::MAX
}

// ---- response framing ------------------------------------------------------

/// Locate one complete HTTP response at the front of `buf`, returning
/// `(total_len, status)`.
fn parse_response(buf: &[u8]) -> Option<(usize, u16)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = &buf[..head_end];
    // "HTTP/1.1 NNN ..."
    if head.len() < 12 || !head.starts_with(b"HTTP/1.") {
        return Some((head_end, 999)); // unframable: force an error
    }
    let status =
        (head[9] - b'0') as u16 * 100 + (head[10] - b'0') as u16 * 10 + (head[11] - b'0') as u16;
    let mut content_length = 0usize;
    for line in head.split(|&b| b == b'\n') {
        let lower_prefix = b"content-length:";
        if line.len() > lower_prefix.len()
            && line[..lower_prefix.len()].eq_ignore_ascii_case(lower_prefix)
        {
            let digits = &line[lower_prefix.len()..];
            content_length = std::str::from_utf8(digits).ok()?.trim().parse().ok()?;
        }
    }
    let total = head_end + content_length;
    if buf.len() >= total {
        Some((total, status))
    } else {
        None
    }
}

// ---- admin scraping --------------------------------------------------------

/// Fetch one `/metrics` body from an admin address over a throwaway
/// connection (blocking; used by the scraper thread, never the hot path).
pub fn scrape_metrics(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut wire = Vec::new();
    crate::http::write_get_request(&mut wire, "/metrics", "loadgen", false);
    stream.write_all(&wire)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    match text.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_owned()),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "admin /metrics did not answer 200",
        )),
    }
}

/// `serve_requests` from an exposition body, when it parses cleanly with
/// consistent histograms.
fn parse_server_requests(body: &str) -> Option<u64> {
    let exp = ogsa_telemetry::prometheus::parse_exposition(body).ok()?;
    exp.check_histograms().ok()?;
    Some(exp.get("serve_requests", &[])?.value as u64)
}

// ---- the generator ---------------------------------------------------------

struct ClientConn {
    stream: TcpStream,
    /// Offset into the template for an in-progress send; `None` = idle.
    wpos: Option<usize>,
    rbuf: Vec<u8>,
    /// Send (closed) or scheduled-arrival (open) instants of in-flight
    /// requests, oldest first.
    inflight: VecDeque<Instant>,
    /// Open loop: arrivals assigned while the connection was busy.
    backlog: u32,
    dead: bool,
}

/// Run one load scenario. The template is built once; every request on
/// every connection replays the same bytes.
pub fn run(config: &LoadConfig) -> io::Result<LoadReport> {
    let mut template = Vec::new();
    crate::http::write_request(
        &mut template,
        &config.target,
        &config.host,
        true,
        &config.body,
    );
    // The scraper rides a separate thread and a separate connection, so
    // a scrape under sustained load is exactly what production sees.
    let scraper = config.scrape_admin.map(|admin| {
        let delay = config.warmup + config.duration / 2;
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            scrape_metrics(admin).ok()
        })
    });
    let mut report = imp::run(config, &template)?;
    if let Some(handle) = scraper {
        let mid = handle
            .join()
            .ok()
            .flatten()
            .as_deref()
            .and_then(parse_server_requests);
        let fin = config
            .scrape_admin
            .and_then(|a| scrape_metrics(a).ok())
            .as_deref()
            .and_then(parse_server_requests);
        report.scrape = Some(ScrapeCheck {
            mid_run_parsed: mid.is_some(),
            mid_run_server_requests: mid.unwrap_or(0),
            final_server_requests: fin.unwrap_or(0),
        });
    }
    Ok(report)
}

fn finish(
    config: &LoadConfig,
    established: usize,
    hist: &LatencyHistogram,
    errors: u64,
    measured: Duration,
) -> LoadReport {
    let secs = measured.as_secs_f64().max(1e-9);
    LoadReport {
        connections_requested: config.connections,
        connections_established: established,
        requests: hist.count(),
        errors,
        elapsed: measured,
        rps: hist.count() as f64 / secs,
        mean_us: hist.mean_us(),
        p50_us: hist.quantile_us(0.50),
        p99_us: hist.quantile_us(0.99),
        p999_us: hist.quantile_us(0.999),
        max_us: hist.max_us(),
        scrape: None,
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use crate::epoll::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    use std::os::fd::AsRawFd;

    pub(super) fn run(config: &LoadConfig, template: &[u8]) -> io::Result<LoadReport> {
        raise_nofile_limit(config.connections as u64 * 2 + 512);
        let ep = Epoll::new()?;
        let mut conns = Vec::with_capacity(config.connections);
        for i in 0..config.connections {
            let stream = TcpStream::connect(config.addr)?;
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
            ep.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, i as u64)?;
            conns.push(ClientConn {
                stream,
                wpos: None,
                rbuf: Vec::new(),
                inflight: VecDeque::new(),
                backlog: 0,
                dead: false,
            });
        }
        let established = conns.len();

        let start = Instant::now();
        let measure_from = start + config.warmup;
        let deadline = measure_from + config.duration;
        let mut hist = LatencyHistogram::new();
        let mut errors = 0u64;

        // Closed loop: prime one request per connection. Open loop: the
        // schedule below issues them.
        let open_interval = match config.mode {
            LoadMode::Closed => {
                for (i, conn) in conns.iter_mut().enumerate() {
                    start_request(&ep, conn, i, template, Instant::now(), &mut errors);
                }
                None
            }
            LoadMode::Open { rps } => Some(Duration::from_secs_f64(1.0 / rps.max(1e-9))),
        };
        let mut next_arrival = start;
        let mut next_conn = 0usize;

        let mut events = [EpollEvent::zeroed(); 256];
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Issue every open-loop arrival that is due, on schedule.
            if let Some(interval) = open_interval {
                while next_arrival <= now {
                    let i = next_conn % conns.len();
                    next_conn += 1;
                    let scheduled = next_arrival;
                    next_arrival += interval;
                    let c = &mut conns[i];
                    if c.dead {
                        errors += 1;
                        continue;
                    }
                    c.inflight.push_back(scheduled);
                    if c.wpos.is_none() && c.inflight.len() == 1 {
                        start_request(&ep, c, i, template, scheduled, &mut errors);
                    } else {
                        c.backlog += 1;
                    }
                }
            }

            let timeout = match open_interval {
                Some(_) => next_arrival
                    .saturating_duration_since(Instant::now())
                    .min(deadline.saturating_duration_since(Instant::now()))
                    .as_millis() as i32,
                None => deadline
                    .saturating_duration_since(Instant::now())
                    .as_millis()
                    .min(100) as i32,
            };
            let n = ep.wait(&mut events, timeout)?;
            for ev in &events[..n] {
                let (token, bits) = ev.parts();
                let i = token as usize;
                let c = &mut conns[i];
                if c.dead {
                    continue;
                }
                if bits & (EPOLLERR | EPOLLHUP) != 0 {
                    kill(&ep, c, &mut errors);
                    continue;
                }
                if bits & EPOLLOUT != 0 {
                    continue_write(&ep, c, i, template, &mut errors);
                }
                if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                    drain_responses(
                        &ep,
                        c,
                        i,
                        template,
                        open_interval.is_some(),
                        measure_from,
                        &mut hist,
                        &mut errors,
                    );
                }
            }
        }
        let measured = Instant::now().saturating_duration_since(measure_from);
        Ok(finish(config, established, &hist, errors, measured))
    }

    fn interest(c: &ClientConn) -> u32 {
        let mut bits = EPOLLIN | EPOLLRDHUP;
        if c.wpos.is_some() {
            bits |= EPOLLOUT;
        }
        bits
    }

    fn kill(ep: &Epoll, c: &mut ClientConn, errors: &mut u64) {
        if !c.dead {
            c.dead = true;
            *errors += 1;
            ep.delete(c.stream.as_raw_fd());
        }
    }

    /// Begin sending one request; `at` is recorded as its start instant.
    fn start_request(
        ep: &Epoll,
        c: &mut ClientConn,
        token: usize,
        template: &[u8],
        at: Instant,
        errors: &mut u64,
    ) {
        if c.inflight.is_empty() {
            c.inflight.push_back(at);
        }
        c.wpos = Some(0);
        continue_write(ep, c, token, template, errors);
    }

    fn continue_write(
        ep: &Epoll,
        c: &mut ClientConn,
        token: usize,
        template: &[u8],
        errors: &mut u64,
    ) {
        let Some(mut pos) = c.wpos else { return };
        loop {
            match c.stream.write(&template[pos..]) {
                Ok(n) => {
                    pos += n;
                    if pos == template.len() {
                        c.wpos = None;
                        let _ = ep.modify(c.stream.as_raw_fd(), interest(c), token as u64);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    c.wpos = Some(pos);
                    let _ = ep.modify(c.stream.as_raw_fd(), interest(c), token as u64);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    kill(ep, c, errors);
                    return;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn drain_responses(
        ep: &Epoll,
        c: &mut ClientConn,
        token: usize,
        template: &[u8],
        open_loop: bool,
        measure_from: Instant,
        hist: &mut LatencyHistogram,
        errors: &mut u64,
    ) {
        // Read everything available.
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match c.stream.read(&mut chunk) {
                Ok(0) => {
                    kill(ep, c, errors);
                    return;
                }
                Ok(n) => c.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    kill(ep, c, errors);
                    return;
                }
            }
        }
        // Account every complete response.
        let mut consumed = 0;
        while let Some((len, status)) = parse_response(&c.rbuf[consumed..]) {
            consumed += len;
            let now = Instant::now();
            let started = c.inflight.pop_front();
            if status == 200 {
                if let Some(t0) = started {
                    if now >= measure_from && t0 >= measure_from {
                        hist.record(now.saturating_duration_since(t0).as_micros() as u64);
                    }
                }
            } else {
                *errors += 1;
            }
            if open_loop {
                if c.backlog > 0 {
                    c.backlog -= 1;
                    // Latency for the queued request still counts from its
                    // scheduled arrival, already at inflight front.
                    c.wpos = Some(0);
                    continue_write(ep, c, token, template, errors);
                }
            } else {
                start_request(ep, c, token, template, now, errors);
            }
            if c.dead {
                return;
            }
        }
        if consumed > 0 {
            c.rbuf.drain(..consumed);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable fallback: one blocking thread per connection. Open loop
    //! paces each thread at `rps / connections` from a per-thread
    //! schedule; queueing is still charged from the scheduled instant.

    use super::*;

    pub(super) fn run(config: &LoadConfig, template: &[u8]) -> io::Result<LoadReport> {
        let start = Instant::now();
        let measure_from = start + config.warmup;
        let deadline = measure_from + config.duration;
        let per_conn_interval = match config.mode {
            LoadMode::Closed => None,
            LoadMode::Open { rps } => Some(Duration::from_secs_f64(
                config.connections as f64 / rps.max(1e-9),
            )),
        };
        let mut threads = Vec::new();
        for _ in 0..config.connections {
            let addr = config.addr;
            let template = template.to_vec();
            threads.push(std::thread::spawn(move || {
                let mut hist = LatencyHistogram::new();
                let mut errors = 0u64;
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    return (hist, 1u64, false);
                };
                let _ = stream.set_nodelay(true);
                let mut rbuf = Vec::new();
                let mut chunk = [0u8; 16 * 1024];
                let mut next = Instant::now();
                loop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let scheduled = if let Some(interval) = per_conn_interval {
                        if next > now {
                            std::thread::sleep(next - now);
                        }
                        let s = next;
                        next += interval;
                        s
                    } else {
                        now
                    };
                    if stream.write_all(&template).is_err() {
                        errors += 1;
                        break;
                    }
                    let total = loop {
                        if let Some((len, status)) = parse_response(&rbuf) {
                            if status != 200 {
                                errors += 1;
                            }
                            break len;
                        }
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => break 0,
                            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                        }
                    };
                    if total == 0 {
                        errors += 1;
                        break;
                    }
                    rbuf.drain(..total);
                    let done = Instant::now();
                    if done >= measure_from && scheduled >= measure_from {
                        hist.record(done.saturating_duration_since(scheduled).as_micros() as u64);
                    }
                }
                (hist, errors, true)
            }));
        }
        let mut hist = LatencyHistogram::new();
        let mut errors = 0u64;
        let mut established = 0usize;
        for t in threads {
            if let Ok((h, e, ok)) = t.join() {
                for (idx, &c) in h.counts.iter().enumerate() {
                    for _ in 0..c {
                        hist.record(super::bucket_floor(idx));
                    }
                }
                hist.max = hist.max.max(h.max);
                errors += e;
                established += ok as usize;
            }
        }
        let measured = Instant::now().saturating_duration_since(measure_from);
        Ok(finish(config, established, &hist, errors, measured))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_consistent() {
        let mut last = 0;
        for v in [1u64, 2, 31, 32, 63, 64, 100, 1000, 65_535, 1 << 20, 1 << 40] {
            let idx = bucket_of(v);
            assert!(idx >= last, "bucket_of not monotone at {v}");
            last = idx;
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // Relative error bound from 5 sub-bucket bits: <= 1/32.
            assert!(
                (v - floor) as f64 <= v as f64 / 32.0 + 1.0,
                "floor {floor} too far below {v}"
            );
        }
    }

    #[test]
    fn quantiles_come_from_the_right_tail() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(100_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 100);
        assert!(h.quantile_us(0.99) <= 100_000);
        let p999 = h.quantile_us(0.999);
        assert!(p999 > 90_000, "p999 {p999} missed the outlier");
        assert_eq!(h.max_us(), 100_000);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn parse_response_frames_exactly() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody";
        assert_eq!(parse_response(wire), Some((wire.len(), 200)));
        assert_eq!(parse_response(&wire[..wire.len() - 1]), None);
        let mut two = wire.to_vec();
        two.extend_from_slice(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
        let (len, status) = parse_response(&two).unwrap();
        assert_eq!((len, status), (wire.len(), 200));
        assert_eq!(parse_response(&two[len..]), Some((two.len() - len, 404)));
    }
}
