//! Zero-copy HTTP/1.1 request-head parsing and response writing.
//!
//! The parser works over the connection's read buffer in place: a parsed
//! [`Head`] holds byte *ranges* into that buffer, never owned strings, so
//! the only per-request allocation on the happy path is the response body
//! (which comes from the SOAP string pool anyway). Only the subset the
//! serving tier needs is implemented: POST with `Content-Length` framing
//! (the SOAP path), bodyless GET (the admin plane), `Host`, `Connection`,
//! and tolerant skipping of everything else. No chunked encoding — the
//! grid clients (and `loadgen`) never send it, and a `Transfer-Encoding`
//! header is rejected up front rather than mis-framed. Whether a given
//! listener *accepts* a method is the dispatcher's decision, not the
//! parser's: the service port answers 405 to GET, the admin port to POST.

/// Hard cap on the request head (start line + headers + blank line).
pub const DEFAULT_MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body; the biggest signed envelope in the
/// benches is ~4 KB, so 1 MiB is generous without letting a hostile
/// Content-Length pin the worker's buffer.
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// The request methods the serving tier understands. Anything else is
/// refused at parse time with 405.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Bodyless reads — the admin plane (`/metrics`, `/healthz`, ...).
    Get,
    /// SOAP request dispatch (Content-Length framed).
    Post,
}

/// A parsed request head. All ranges index into the buffer that was
/// passed to [`parse_head`]; nothing is copied out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Head {
    pub method: Method,
    /// Byte range of the request target (`/services/counter`).
    pub target: (usize, usize),
    /// Byte range of the `Host` header value, if present.
    pub host: Option<(usize, usize)>,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// False when the client sent `Connection: close`.
    pub keep_alive: bool,
    /// Total head length in bytes, including the terminating blank line;
    /// the body starts at this offset.
    pub head_len: usize,
}

/// Why a request was rejected before dispatch. Each variant maps to one
/// HTTP status so the connection can answer precisely and (except for
/// `BodyTooLarge`/`HeadTooLarge`, where the rest of the stream is
/// unframed garbage) keep the connection alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed start line or header syntax.
    BadRequest,
    /// A method the parser does not understand, or one the answering
    /// dispatcher does not serve on its port.
    MethodNotAllowed,
    /// Head grew past [`DEFAULT_MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge,
    /// Declared Content-Length above the body cap.
    BodyTooLarge,
    /// Missing or unparsable Content-Length, or chunked encoding.
    LengthRequired,
}

impl HttpError {
    pub fn status(self) -> u16 {
        match self {
            HttpError::BadRequest => 400,
            HttpError::MethodNotAllowed => 405,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::LengthRequired => 411,
        }
    }

    pub fn reason(self) -> &'static str {
        match self {
            HttpError::BadRequest => "Bad Request",
            HttpError::MethodNotAllowed => "Method Not Allowed",
            HttpError::HeadTooLarge => "Request Header Fields Too Large",
            HttpError::BodyTooLarge => "Payload Too Large",
            HttpError::LengthRequired => "Length Required",
        }
    }

    /// Whether the connection can survive this error. Oversized or
    /// unterminated heads leave the stream unframed, so the only safe
    /// move is to answer and close.
    pub fn recoverable(self) -> bool {
        !matches!(self, HttpError::HeadTooLarge | HttpError::BodyTooLarge)
    }
}

/// Outcome of a parse attempt over the bytes buffered so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadParse {
    /// Not enough bytes yet; read more.
    Incomplete,
    /// A complete head was parsed.
    Parsed(Head),
    /// The request is invalid; `consumed` bytes (the head, if it could be
    /// delimited) should be discarded before answering.
    Invalid { error: HttpError, consumed: usize },
}

/// Find `\r\n\r\n` in `buf`, returning the offset just past it.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn trim(buf: &[u8], mut lo: usize, mut hi: usize) -> (usize, usize) {
    while lo < hi && (buf[lo] == b' ' || buf[lo] == b'\t') {
        lo += 1;
    }
    while hi > lo && (buf[hi - 1] == b' ' || buf[hi - 1] == b'\t') {
        hi -= 1;
    }
    (lo, hi)
}

/// Try to parse one request head from the front of `buf`.
pub fn parse_head(buf: &[u8]) -> HeadParse {
    let head_len = match find_head_end(buf) {
        Some(n) => n,
        None => {
            if buf.len() >= DEFAULT_MAX_HEAD_BYTES {
                return HeadParse::Invalid {
                    error: HttpError::HeadTooLarge,
                    consumed: 0,
                };
            }
            return HeadParse::Incomplete;
        }
    };
    if head_len > DEFAULT_MAX_HEAD_BYTES {
        return HeadParse::Invalid {
            error: HttpError::HeadTooLarge,
            consumed: 0,
        };
    }
    let invalid = |error| HeadParse::Invalid {
        error,
        consumed: head_len,
    };

    // Start line: METHOD SP TARGET SP VERSION CRLF
    let line_end = match buf[..head_len].windows(2).position(|w| w == b"\r\n") {
        Some(n) => n,
        None => return invalid(HttpError::BadRequest),
    };
    let line = &buf[..line_end];
    let sp1 = match line.iter().position(|&b| b == b' ') {
        Some(n) => n,
        None => return invalid(HttpError::BadRequest),
    };
    let sp2 = match line[sp1 + 1..].iter().position(|&b| b == b' ') {
        Some(n) => sp1 + 1 + n,
        None => return invalid(HttpError::BadRequest),
    };
    let method = &line[..sp1];
    let target = (sp1 + 1, sp2);
    let version = &line[sp2 + 1..];
    if target.0 == target.1 {
        return invalid(HttpError::BadRequest);
    }
    if version != b"HTTP/1.1" && version != b"HTTP/1.0" {
        return invalid(HttpError::BadRequest);
    }
    let method = match method {
        b"GET" => Method::Get,
        b"POST" => Method::Post,
        _ => return invalid(HttpError::MethodNotAllowed),
    };

    // Headers.
    let mut host = None;
    let mut content_length: Option<usize> = None;
    let mut keep_alive = version == b"HTTP/1.1";
    let mut pos = line_end + 2;
    while pos + 2 <= head_len {
        let rest = &buf[pos..head_len];
        let eol = match rest.windows(2).position(|w| w == b"\r\n") {
            Some(n) => n,
            None => return invalid(HttpError::BadRequest),
        };
        if eol == 0 {
            break; // blank line: end of headers
        }
        let line = &rest[..eol];
        let colon = match line.iter().position(|&b| b == b':') {
            Some(n) => n,
            None => return invalid(HttpError::BadRequest),
        };
        let name = &line[..colon];
        let (vlo, vhi) = trim(buf, pos + colon + 1, pos + eol);
        if name.eq_ignore_ascii_case(b"host") {
            host = Some((vlo, vhi));
        } else if name.eq_ignore_ascii_case(b"content-length") {
            // RFC 7230 §3.3.2: a message with more than one Content-Length
            // is malformed — repeated headers (even with identical values)
            // are how request-smuggling splits a body between two parsers,
            // so the answer is 400, not last-wins.
            if content_length.is_some() {
                return invalid(HttpError::BadRequest);
            }
            let digits = &buf[vlo..vhi];
            if digits.is_empty() || !digits.iter().all(|b| b.is_ascii_digit()) {
                return invalid(HttpError::LengthRequired);
            }
            let mut n: usize = 0;
            for &d in digits {
                n = match n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add((d - b'0') as usize))
                {
                    Some(n) => n,
                    None => return invalid(HttpError::BodyTooLarge),
                };
            }
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case(b"connection") {
            let v = &buf[vlo..vhi];
            if v.eq_ignore_ascii_case(b"close") {
                keep_alive = false;
            } else if v.eq_ignore_ascii_case(b"keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case(b"transfer-encoding") {
            // Chunked framing is out of scope; refuse rather than mis-frame.
            return invalid(HttpError::LengthRequired);
        }
        pos += eol + 2;
    }

    // GET is bodyless: a missing Content-Length means zero. POST without
    // one is unframed and must be refused.
    let content_length = match (content_length, method) {
        (Some(n), _) => n,
        (None, Method::Get) => 0,
        (None, Method::Post) => return invalid(HttpError::LengthRequired),
    };
    if content_length > DEFAULT_MAX_BODY_BYTES {
        return invalid(HttpError::BodyTooLarge);
    }

    HeadParse::Parsed(Head {
        method,
        target,
        host,
        content_length,
        keep_alive,
        head_len,
    })
}

/// Append a response head + body to `out`. `body` is written verbatim;
/// the head is composed without `format!` so the hot path stays off the
/// allocator once `out` has warmed up.
pub fn write_response(out: &mut Vec<u8>, status: u16, reason: &str, keep_alive: bool, body: &str) {
    write_response_typed(
        out,
        status,
        reason,
        keep_alive,
        "text/xml; charset=utf-8",
        body,
    );
}

/// [`write_response`] with an explicit Content-Type — the admin plane
/// serves `text/plain` (Prometheus exposition) and `application/json`
/// next to the SOAP port's `text/xml`.
pub fn write_response_typed(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    keep_alive: bool,
    content_type: &str,
    body: &str,
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    let mut digits = [0u8; 3];
    digits[0] = b'0' + (status / 100) as u8;
    digits[1] = b'0' + (status / 10 % 10) as u8;
    digits[2] = b'0' + (status % 10) as u8;
    out.extend_from_slice(&digits);
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(itoa(body.len()).as_bytes());
    if keep_alive {
        out.extend_from_slice(b"\r\nConnection: keep-alive\r\n\r\n");
    } else {
        out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    }
    out.extend_from_slice(body.as_bytes());
}

/// Append a minimal request (what `loadgen` replays) to `out`.
pub fn write_request(out: &mut Vec<u8>, target: &str, host: &str, keep_alive: bool, body: &str) {
    out.extend_from_slice(b"POST ");
    out.extend_from_slice(target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\nHost: ");
    out.extend_from_slice(host.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: ");
    out.extend_from_slice(itoa(body.len()).as_bytes());
    if keep_alive {
        out.extend_from_slice(b"\r\n\r\n");
    } else {
        out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    }
    out.extend_from_slice(body.as_bytes());
}

/// Append a bodyless GET request (what the admin scraper sends) to `out`.
pub fn write_get_request(out: &mut Vec<u8>, target: &str, host: &str, keep_alive: bool) {
    out.extend_from_slice(b"GET ");
    out.extend_from_slice(target.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\nHost: ");
    out.extend_from_slice(host.as_bytes());
    if keep_alive {
        out.extend_from_slice(b"\r\n\r\n");
    } else {
        out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    }
}

/// Tiny stack-allocated integer formatter.
struct Itoa {
    buf: [u8; 20],
    start: usize,
}

impl Itoa {
    fn as_bytes(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

fn itoa(mut n: usize) -> Itoa {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    Itoa { buf, start: i }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(body: &str) -> Vec<u8> {
        let mut out = Vec::new();
        write_request(&mut out, "/services/counter", "host-a", true, body);
        out
    }

    #[test]
    fn parses_roundtripped_request() {
        let wire = req("<x/>");
        match parse_head(&wire) {
            HeadParse::Parsed(h) => {
                assert_eq!(&wire[h.target.0..h.target.1], b"/services/counter");
                let (lo, hi) = h.host.unwrap();
                assert_eq!(&wire[lo..hi], b"host-a");
                assert_eq!(h.content_length, 4);
                assert!(h.keep_alive);
                assert_eq!(&wire[h.head_len..], b"<x/>");
            }
            other => panic!("expected parse, got {other:?}"),
        }
    }

    #[test]
    fn incomplete_until_blank_line() {
        let wire = req("<x/>");
        for cut in 1..20 {
            assert_eq!(parse_head(&wire[..cut]), HeadParse::Incomplete);
        }
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let mut out = Vec::new();
        write_request(&mut out, "/s", "h", false, "<x/>");
        match parse_head(&out) {
            HeadParse::Parsed(h) => assert!(!h.keep_alive),
            other => panic!("expected parse, got {other:?}"),
        }
    }

    #[test]
    fn get_parses_without_content_length() {
        let mut wire = Vec::new();
        write_get_request(&mut wire, "/metrics", "h", true);
        match parse_head(&wire) {
            HeadParse::Parsed(h) => {
                assert_eq!(h.method, Method::Get);
                assert_eq!(&wire[h.target.0..h.target.1], b"/metrics");
                assert_eq!(h.content_length, 0);
                assert_eq!(h.head_len, wire.len());
                assert!(h.keep_alive);
            }
            other => panic!("expected parse, got {other:?}"),
        }
    }

    #[test]
    fn unknown_method_is_method_not_allowed() {
        let wire = b"DELETE /s HTTP/1.1\r\nHost: h\r\n\r\n";
        match parse_head(wire) {
            HeadParse::Invalid { error, consumed } => {
                assert_eq!(error, HttpError::MethodNotAllowed);
                assert_eq!(consumed, wire.len());
                assert!(error.recoverable());
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn missing_content_length_is_411() {
        let wire = b"POST /s HTTP/1.1\r\nHost: h\r\n\r\n";
        match parse_head(wire) {
            HeadParse::Invalid { error, .. } => assert_eq!(error, HttpError::LengthRequired),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn oversized_content_length_is_413() {
        let wire = format!(
            "POST /s HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        );
        match parse_head(wire.as_bytes()) {
            HeadParse::Invalid { error, .. } => {
                assert_eq!(error, HttpError::BodyTooLarge);
                assert!(!error.recoverable());
            }
            other => panic!("expected invalid, got {other:?}"),
        }
        // Absurd overflow-scale lengths too.
        let wire = b"POST /s HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n";
        match parse_head(wire) {
            HeadParse::Invalid { error, .. } => assert_eq!(error, HttpError::BodyTooLarge),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_giant_head_is_431() {
        let mut wire = b"POST /s HTTP/1.1\r\n".to_vec();
        wire.resize(DEFAULT_MAX_HEAD_BYTES + 1, b'a');
        match parse_head(&wire) {
            HeadParse::Invalid { error, .. } => {
                assert_eq!(error, HttpError::HeadTooLarge);
                assert!(!error.recoverable());
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn chunked_is_refused() {
        let wire = b"POST /s HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        match parse_head(wire) {
            HeadParse::Invalid { error, .. } => assert_eq!(error, HttpError::LengthRequired),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_content_length_is_400_never_last_wins() {
        // RFC 7230 §3.3.2: conflicting values, repeated identical values,
        // and a valid length shadowed by garbage are all malformed — the
        // smuggling-prone "last value wins" answer is exactly the bug.
        let cases: &[&[u8]] = &[
            b"POST /s HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
            b"POST /s HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n",
            b"POST /s HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: zzz\r\n\r\n",
        ];
        for case in cases {
            match parse_head(case) {
                HeadParse::Invalid { error, .. } => {
                    assert_eq!(
                        error,
                        HttpError::BadRequest,
                        "{}",
                        String::from_utf8_lossy(case)
                    );
                }
                other => panic!("expected invalid, got {other:?}"),
            }
        }
        // A single Content-Length still frames normally.
        let ok = b"POST /s HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        assert!(matches!(parse_head(ok), HeadParse::Parsed(_)));
    }

    #[test]
    fn garbage_start_line_is_400() {
        match parse_head(b"nonsense\r\n\r\n") {
            HeadParse::Invalid { error, .. } => assert_eq!(error, HttpError::BadRequest),
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn response_writer_formats_statuses() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", true, "<ok/>");
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 5\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n<ok/>"));

        let mut out = Vec::new();
        write_response(&mut out, 431, "Request Header Fields Too Large", false, "");
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 431 "));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.contains("Content-Length: 0\r\n"));
    }
}
