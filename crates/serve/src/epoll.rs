//! A minimal raw `epoll` + `eventfd` shim.
//!
//! The build environment is offline, so there is no `mio`/`tokio`/`libc`
//! to lean on; these symbols live in the C runtime the Rust standard
//! library already links. Only what the serving tier and the load
//! generator need is bound: create/ctl/wait on an epoll instance and an
//! eventfd used as a cross-thread wakeup. Everything here is
//! Linux-specific and compiled in only on Linux; the portable fallback
//! server path never touches it.

use std::io;
use std::os::fd::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// Mirror of the kernel's `struct epoll_event`. Packed on x86-64 (the
/// kernel declares it `__attribute__((packed))` there); naturally aligned
/// elsewhere (aarch64 and friends).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

impl EpollEvent {
    pub const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }

    /// Copy the fields out (direct references into a packed struct are
    /// not allowed).
    pub fn parts(&self) -> (u64, u32) {
        let e = *self;
        (e.data, e.events)
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance. Registration is thread-safe (the kernel allows
/// `epoll_ctl` from any thread), but this wrapper is used single-threaded:
/// each worker owns its own instance — the per-worker sharding that keeps
/// dispatch lock-free.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { cvt(epoll_create1(EPOLL_CLOEXEC))? };
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        unsafe { cvt(epoll_ctl(self.fd, op, fd, &mut ev))? };
        Ok(())
    }

    /// Register `fd` under `token` for the given interest set.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Remove a registered fd (harmless if the fd is already closed).
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait up to `timeout_ms` (-1 = forever) and fill `events`. Returns
    /// the number of ready entries. EINTR is retried.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// A nonblocking eventfd used to wake a worker blocked in `epoll_wait`
/// from another thread (the acceptor handing over a fresh connection, or
/// shutdown).
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { cvt(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK))? };
        Ok(EventFd { fd })
    }

    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Post a wakeup (coalesces with any outstanding one).
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            // EAGAIN means the counter is already nonzero: the wakeup is
            // pending, which is all we need.
            let _ = write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Consume pending wakeups.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { while read(self.fd, buf.as_mut_ptr(), 8) == 8 {} }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing pending: times out empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ev.wake();
        ev.wake(); // coalesces
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (token, bits) = events[0].parts();
        assert_eq!(token, 7);
        assert!(bits & EPOLLIN != 0);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readability_surfaces() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
            .unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].parts().0, 42);
        let mut s = server;
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap(), 4);

        // Peer close raises RDHUP/HUP-ish readiness.
        drop(client);
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (_, bits) = events[0].parts();
        assert!(bits & (EPOLLRDHUP | EPOLLHUP | EPOLLIN) != 0);
        ep.delete(s.as_raw_fd());
    }
}
