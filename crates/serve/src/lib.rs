//! Real-socket serving tier for the OGSA container.
//!
//! Everything else in this workspace measures the two stacks on a
//! virtual-time simulation — deterministic, paper-faithful, and immune to
//! host noise. This crate is the wall-clock complement: it puts the same
//! container pipeline behind an actual TCP listener with HTTP/1.1
//! keep-alive and pipelining, so the throughput claims can be checked
//! under real connection concurrency instead of an in-process loop.
//!
//! Layout:
//! * [`epoll`] (Linux) — raw `epoll`/`eventfd` FFI shim; no external deps.
//! * [`http`] — zero-copy request-head parser and response writers.
//! * [`conn`] — per-connection state machine (buffered nonblocking I/O,
//!   pipelined dispatch, precise error answers).
//! * [`server`] — acceptor + per-worker epoll loops dispatching into
//!   [`ogsa_transport::Network`] handlers.
//! * [`admin`] — the live observability plane: `/metrics`, `/healthz`,
//!   `/readyz`, `/vars`, and the `/debug/trace` flight-recorder dump,
//!   served on a dedicated admin port by the same worker loops.
//! * [`loadgen`] — closed/open-loop keep-alive load generator with a
//!   log-bucket latency histogram and an optional mid-run `/metrics`
//!   scrape for server-vs-client cross-checks.
//!
//! The serving tier deliberately charges **no virtual time**: the
//! simulation twin stays the paper-invariant instrument, and nothing here
//! can perturb its figures.

#[cfg(target_os = "linux")]
pub mod epoll;

pub mod admin;
pub mod conn;
pub mod http;
pub mod loadgen;
pub mod server;

pub use admin::{AdminPlane, ObsConfig, ReadyState};
pub use conn::{Advance, Conn, Dispatch, Request};
pub use http::{Head, HeadParse, HttpError, Method};
pub use loadgen::{LatencyHistogram, LoadConfig, LoadMode, LoadReport, ScrapeCheck};
pub use server::{ServeConfig, ServeStats, Server};
