//! The live observability plane for the serving tier.
//!
//! A second listener (the *admin port*) rides on the same acceptor and
//! worker epoll loops as the service port, answering bodyless GETs:
//!
//! * `GET /metrics` — Prometheus text exposition of the merged
//!   [`MetricsRegistry`](ogsa_telemetry::MetricsRegistry) plus the
//!   per-worker wall-clock latency histogram (merged lazily at scrape
//!   time; workers never synchronise on the hot path) with tail-latency
//!   exemplars linking buckets to flight-recorder traces.
//! * `GET /healthz` — liveness: answers 200 while the process serves.
//! * `GET /readyz` — readiness: 200 only after startup completes, until
//!   shutdown begins, and while every registered probe (e.g. the WAL
//!   backend's disk health) passes; 503 otherwise.
//! * `GET /vars` — JSON snapshot of the serving gauges: per-worker queue
//!   depth, connection count, epoll wakeups, and accept-backlog handoffs.
//! * `GET /debug/trace` — JSON dump of the [`FlightRecorder`]: every
//!   retained slow trace plus the fast-traffic reservoir.
//!
//! Everything here is observation, never diversion: scraping merges
//! atomic counters and clones ring buffers, and the flight recorder's
//! span capture copies records that still flow (unchanged) into the
//! deterministic telemetry store, so virtual-time dumps stay
//! byte-identical whether or not the plane is enabled.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use ogsa_telemetry::prometheus::{render, render_wall_histogram};
use ogsa_telemetry::{
    ExemplarStore, FlightRecorder, MetricsSnapshot, ShardedWallHistogram, Telemetry,
};
use parking_lot::Mutex;

use crate::conn::{Dispatch, Request};
use crate::http::{self, Method};

/// Observability knobs for [`crate::ServeConfig`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Master switch. When false no admin listener is bound, no wall
    /// clocks are read, and dispatch runs exactly as before this plane
    /// existed (the "instrumentation-stripped" arm of the obs bench).
    pub enabled: bool,
    /// Admin listener address; port 0 picks a free port.
    pub admin_addr: String,
    /// Requests at or above this wall latency are always retained in
    /// full by the flight recorder and attached as histogram exemplars.
    pub slow_threshold_us: u64,
    /// Capacity of the slow-trace ring.
    pub slow_capacity: usize,
    /// Capacity of the fast-traffic reservoir.
    pub reservoir_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            admin_addr: "127.0.0.1:0".to_owned(),
            slow_threshold_us: ogsa_telemetry::flight::DEFAULT_SLOW_THRESHOLD_US,
            slow_capacity: ogsa_telemetry::flight::DEFAULT_SLOW_CAPACITY,
            reservoir_capacity: ogsa_telemetry::flight::DEFAULT_RESERVOIR_CAPACITY,
        }
    }
}

impl ObsConfig {
    /// The stripped configuration: no admin port, no instrumentation.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }
}

/// Readiness of the serving tier as exposed by `/readyz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReadyState {
    /// Bound but workers not yet confirmed up.
    Starting = 0,
    /// Accepting and dispatching.
    Ready = 1,
    /// Shutdown has begun; new traffic should go elsewhere.
    Draining = 2,
}

/// A pluggable readiness probe: `Ok(())` when healthy, `Err(reason)`
/// otherwise. The durable tier registers one that reports a died WAL
/// disk; anything else the embedding process cares about can join.
pub type ReadyProbe = Box<dyn Fn() -> Result<(), String> + Send + Sync>;

/// Per-worker liveness gauges, updated with relaxed stores from the
/// worker's own loop and read only at scrape time.
#[derive(Debug, Default)]
pub struct WorkerGauges {
    /// Epoll wakeups (returns from `epoll_wait`) in this worker.
    pub wakeups: AtomicU64,
    /// Connections currently registered with this worker.
    pub connections: AtomicU64,
    /// Handoff-queue depth observed at the last inbox drain.
    pub queue_depth: AtomicU64,
    /// Connections sitting in the inbox right now (accept backlog beyond
    /// the kernel's): incremented by the acceptor, zeroed on drain.
    pub pending_handoffs: AtomicU64,
}

/// Shared state of the admin plane: latency shards, exemplars, the
/// flight recorder, readiness, and per-worker gauges. Cloning shares.
#[derive(Clone)]
pub struct AdminPlane {
    inner: Arc<PlaneInner>,
}

struct PlaneInner {
    telemetry: Telemetry,
    hist: ShardedWallHistogram,
    exemplars: ExemplarStore,
    recorder: FlightRecorder,
    state: AtomicU8,
    probes: Mutex<Vec<ReadyProbe>>,
    workers: Vec<WorkerGauges>,
}

impl AdminPlane {
    pub fn new(workers: usize, config: &ObsConfig, telemetry: Telemetry) -> AdminPlane {
        let workers = workers.max(1);
        AdminPlane {
            inner: Arc::new(PlaneInner {
                telemetry,
                hist: ShardedWallHistogram::new(workers),
                exemplars: ExemplarStore::new(),
                recorder: FlightRecorder::new(
                    config.slow_threshold_us,
                    config.slow_capacity,
                    config.reservoir_capacity,
                ),
                state: AtomicU8::new(ReadyState::Starting as u8),
                probes: Mutex::new(Vec::new()),
                workers: (0..workers).map(|_| WorkerGauges::default()).collect(),
            }),
        }
    }

    /// The latency histogram shard worker `i` records into.
    pub fn shard(&self, i: usize) -> Arc<ogsa_telemetry::WallHistogram> {
        self.inner.hist.shard(i)
    }

    /// The merged (all-shards) latency snapshot, as `/metrics` sees it.
    pub fn merged_latency(&self) -> ogsa_telemetry::WallSnapshot {
        self.inner.hist.merged()
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    pub fn exemplars(&self) -> &ExemplarStore {
        &self.inner.exemplars
    }

    pub(crate) fn worker(&self, i: usize) -> &WorkerGauges {
        &self.inner.workers[i % self.inner.workers.len()]
    }

    pub fn set_state(&self, s: ReadyState) {
        self.inner.state.store(s as u8, Ordering::SeqCst);
    }

    pub fn state(&self) -> ReadyState {
        match self.inner.state.load(Ordering::SeqCst) {
            0 => ReadyState::Starting,
            1 => ReadyState::Ready,
            _ => ReadyState::Draining,
        }
    }

    /// Register a readiness probe; `/readyz` fails while any probe fails.
    pub fn add_ready_probe(&self, probe: ReadyProbe) {
        self.inner.probes.lock().push(probe);
    }

    /// Readiness verdict: the lifecycle state must be `Ready` and every
    /// registered probe must pass.
    pub fn ready(&self) -> Result<(), String> {
        match self.state() {
            ReadyState::Ready => {}
            ReadyState::Starting => return Err("starting".to_owned()),
            ReadyState::Draining => return Err("draining".to_owned()),
        }
        for probe in self.inner.probes.lock().iter() {
            probe()?;
        }
        Ok(())
    }

    /// Fold the serving gauges into a gathered metrics snapshot.
    fn fill_gauges(&self, snap: &mut MetricsSnapshot) {
        snap.set_gauge("serve.ready", &[], u64::from(self.ready().is_ok()));
        snap.set_gauge("serve.flight_traces", &[], self.inner.recorder.len() as u64);
        for (i, w) in self.inner.workers.iter().enumerate() {
            let idx = i.to_string();
            let labels: &[(&str, &str)] = &[("worker", idx.as_str())];
            snap.set_gauge(
                "serve.worker_wakeups",
                labels,
                w.wakeups.load(Ordering::Relaxed),
            );
            snap.set_gauge(
                "serve.worker_connections",
                labels,
                w.connections.load(Ordering::Relaxed),
            );
            snap.set_gauge(
                "serve.worker_queue_depth",
                labels,
                w.queue_depth.load(Ordering::Relaxed),
            );
            snap.set_gauge(
                "serve.worker_pending_handoffs",
                labels,
                w.pending_handoffs.load(Ordering::Relaxed),
            );
        }
    }

    /// The full `/metrics` body: registry counters/histograms/gauges plus
    /// the merged request-latency histogram with exemplars.
    pub fn render_metrics(&self) -> String {
        let mut snap = self.inner.telemetry.metrics().gather();
        self.fill_gauges(&mut snap);
        let mut out = render(&snap);
        out.push_str(&render_wall_histogram(
            "serve.request_wall_us",
            &[],
            &self.inner.hist.merged(),
            Some(&self.inner.exemplars.snapshot()),
        ));
        out
    }

    /// The `/vars` body: a JSON snapshot of the live serving gauges.
    pub fn vars_json(&self) -> String {
        let merged = self.inner.hist.merged();
        let mut out = String::with_capacity(512);
        out.push_str("{\"state\":\"");
        out.push_str(match self.state() {
            ReadyState::Starting => "starting",
            ReadyState::Ready => "ready",
            ReadyState::Draining => "draining",
        });
        out.push_str("\",\"ready\":");
        out.push_str(if self.ready().is_ok() {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"requests\":");
        out.push_str(&merged.count.to_string());
        out.push_str(",\"flight_traces\":");
        out.push_str(&self.inner.recorder.len().to_string());
        out.push_str(",\"slow_threshold_us\":");
        out.push_str(&self.inner.recorder.threshold_us().to_string());
        out.push_str(",\"workers\":[");
        for (i, w) in self.inner.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"wakeups\":");
            out.push_str(&w.wakeups.load(Ordering::Relaxed).to_string());
            out.push_str(",\"connections\":");
            out.push_str(&w.connections.load(Ordering::Relaxed).to_string());
            out.push_str(",\"queue_depth\":");
            out.push_str(&w.queue_depth.load(Ordering::Relaxed).to_string());
            out.push_str(",\"pending_handoffs\":");
            out.push_str(&w.pending_handoffs.load(Ordering::Relaxed).to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Debug for AdminPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminPlane")
            .field("state", &self.state())
            .field("workers", &self.inner.workers.len())
            .finish_non_exhaustive()
    }
}

/// Dispatcher for connections accepted on the admin port. GET-only: the
/// admin plane never mutates, so POST gets the mirror-image 405 of the
/// service port's GET refusal.
pub(crate) struct AdminDispatcher {
    plane: AdminPlane,
}

impl AdminDispatcher {
    pub(crate) fn new(plane: AdminPlane) -> AdminDispatcher {
        AdminDispatcher { plane }
    }
}

impl Dispatch for AdminDispatcher {
    fn dispatch(&mut self, req: Request<'_>, keep_alive: bool, out: &mut Vec<u8>) {
        if req.method != Method::Get {
            http::write_response_typed(
                out,
                405,
                "Method Not Allowed",
                keep_alive,
                "text/plain; charset=utf-8",
                "admin plane is GET-only\n",
            );
            return;
        }
        match req.target {
            b"/metrics" => http::write_response_typed(
                out,
                200,
                "OK",
                keep_alive,
                "text/plain; version=0.0.4; charset=utf-8",
                &self.plane.render_metrics(),
            ),
            b"/healthz" => http::write_response_typed(
                out,
                200,
                "OK",
                keep_alive,
                "text/plain; charset=utf-8",
                "ok\n",
            ),
            b"/readyz" => match self.plane.ready() {
                Ok(()) => http::write_response_typed(
                    out,
                    200,
                    "OK",
                    keep_alive,
                    "text/plain; charset=utf-8",
                    "ready\n",
                ),
                Err(reason) => http::write_response_typed(
                    out,
                    503,
                    "Service Unavailable",
                    keep_alive,
                    "text/plain; charset=utf-8",
                    &format!("not ready: {reason}\n"),
                ),
            },
            b"/vars" => http::write_response_typed(
                out,
                200,
                "OK",
                keep_alive,
                "application/json",
                &self.plane.vars_json(),
            ),
            b"/debug/trace" => http::write_response_typed(
                out,
                200,
                "OK",
                keep_alive,
                "application/json",
                &self.plane.recorder().to_json(),
            ),
            _ => http::write_response_typed(
                out,
                404,
                "Not Found",
                keep_alive,
                "text/plain; charset=utf-8",
                "unknown admin endpoint\n",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_tracks_lifecycle_and_probes() {
        let plane = AdminPlane::new(2, &ObsConfig::default(), Telemetry::disabled());
        assert_eq!(plane.ready(), Err("starting".to_owned()));
        plane.set_state(ReadyState::Ready);
        assert_eq!(plane.ready(), Ok(()));

        let healthy = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let h = healthy.clone();
        plane.add_ready_probe(Box::new(move || {
            if h.load(Ordering::SeqCst) {
                Ok(())
            } else {
                Err("disk died".to_owned())
            }
        }));
        assert_eq!(plane.ready(), Ok(()));
        healthy.store(false, Ordering::SeqCst);
        assert_eq!(plane.ready(), Err("disk died".to_owned()));
        healthy.store(true, Ordering::SeqCst);

        plane.set_state(ReadyState::Draining);
        assert_eq!(plane.ready(), Err("draining".to_owned()));
    }

    #[test]
    fn vars_json_counts_recorded_requests() {
        let plane = AdminPlane::new(2, &ObsConfig::default(), Telemetry::disabled());
        plane.shard(0).record(100);
        plane.shard(1).record(20_000);
        plane.worker(1).connections.store(3, Ordering::Relaxed);
        let vars = plane.vars_json();
        assert!(vars.contains("\"requests\":2"), "got: {vars}");
        assert!(vars.contains("\"connections\":3"), "got: {vars}");
        assert!(vars.contains("\"state\":\"starting\""), "got: {vars}");
    }

    #[test]
    fn metrics_render_includes_latency_histogram_and_worker_gauges() {
        let plane = AdminPlane::new(2, &ObsConfig::default(), Telemetry::disabled());
        plane.set_state(ReadyState::Ready);
        plane.shard(0).record(150);
        plane.worker(0).wakeups.store(7, Ordering::Relaxed);
        let text = plane.render_metrics();
        assert!(
            text.contains("# TYPE serve_request_wall_us histogram"),
            "got: {text}"
        );
        assert!(
            text.contains("serve_request_wall_us_count 1"),
            "got: {text}"
        );
        assert!(
            text.contains("serve_worker_wakeups{worker=\"0\"} 7"),
            "got: {text}"
        );
        assert!(text.contains("serve_ready 1"), "got: {text}");
        let exp = ogsa_telemetry::prometheus::parse_exposition(&text).expect("parses");
        exp.check_histograms().expect("consistent");
    }
}
