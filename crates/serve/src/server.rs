//! The serving tier: a real TCP listener in front of the container host.
//!
//! Threading model: one acceptor thread plus a small pool of workers.
//! Each worker owns its own epoll instance, its own connection table, and
//! its own dispatcher scratch buffers — accepted connections are handed
//! over round-robin through a mutex-guarded inbox plus an eventfd wake,
//! and from then on everything about a connection happens on one thread.
//! That per-worker sharding is what keeps the request path lock-free: the
//! only cross-thread touches after accept are the container handler's own
//! internals.
//!
//! Dispatch goes through [`Network::handler_for`]: the serving tier looks
//! up the handler bound at `{scheme}://{Host}{target}` and calls it
//! directly, bypassing the simulated wire. Real-socket serving charges no
//! virtual time and injects no simulated faults — the virtual-time twin
//! stays the paper-invariant instrument, this tier is the wall-clock one.
//!
//! On non-Linux hosts a portable fallback (blocking accept, one thread
//! per connection) provides the same API; the epoll path is the one the
//! benches gate.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use ogsa_soap::Envelope;
use ogsa_telemetry::{wall_now_us, SpanKind, WallHistogram};
use ogsa_transport::Network;

use crate::admin::{AdminDispatcher, AdminPlane, ObsConfig, ReadyState};
use crate::conn::{Conn, Dispatch, Request};
use crate::http;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Local address to listen on; port 0 picks a free port.
    pub addr: String,
    /// Worker event loops. Keep small on small hosts: each worker is a
    /// busy thread under load.
    pub workers: usize,
    /// When false every response carries `Connection: close` — the
    /// serving-tier analogue of running with the paper's socket caching
    /// disabled (§4.1.3).
    pub keep_alive: bool,
    /// Scheme used to reconstruct the bound address (`http` unless the
    /// container was deployed with a TLS policy).
    pub scheme: String,
    /// Live observability plane (admin port, wall-clock latency shards,
    /// flight recorder). On by default; [`ObsConfig::disabled`] is the
    /// instrumentation-stripped ablation.
    pub observe: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            keep_alive: true,
            scheme: "http".to_owned(),
            observe: ObsConfig::default(),
        }
    }
}

/// Wall-clock serving counters, shared across workers.
#[derive(Debug, Default)]
pub struct ServeStats {
    accepted: AtomicU64,
    requests: AtomicU64,
    http_errors: AtomicU64,
    dispatch_panics: AtomicU64,
}

impl ServeStats {
    /// Connections accepted since bind.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Requests that reached dispatch (including ones answered 4xx/5xx).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with an error status.
    pub fn http_errors(&self) -> u64 {
        self.http_errors.load(Ordering::Relaxed)
    }

    /// Handler panics converted into 500s.
    pub fn dispatch_panics(&self) -> u64 {
        self.dispatch_panics.load(Ordering::Relaxed)
    }
}

/// Per-worker observability hooks: the latency shard this worker records
/// into plus shared plane handles. `None` when the plane is disabled —
/// the stripped dispatch path then touches no wall clocks at all.
struct WorkerObs {
    plane: AdminPlane,
    shard: Arc<WallHistogram>,
    /// Scratch copy of the request target, taken before dispatch borrows
    /// the read buffer, so a retained flight trace can own it.
    target_buf: String,
}

/// Turns parsed requests into HTTP responses by calling the container
/// handler bound on the [`Network`]. One per worker: the scratch buffers
/// make the happy path allocation-free once warmed.
struct Dispatcher {
    net: Network,
    scheme: String,
    force_close: bool,
    stats: Arc<ServeStats>,
    obs: Option<WorkerObs>,
    /// Scratch for the reconstructed bound address.
    addr_buf: String,
    /// Pooled response-serialisation buffer (`Envelope::to_wire_into`).
    body_buf: String,
}

impl Dispatcher {
    fn new(
        net: Network,
        config: &ServeConfig,
        stats: Arc<ServeStats>,
        obs: Option<WorkerObs>,
    ) -> Dispatcher {
        Dispatcher {
            net,
            scheme: config.scheme.clone(),
            force_close: !config.keep_alive,
            stats,
            obs,
            addr_buf: String::with_capacity(64),
            body_buf: String::with_capacity(4096),
        }
    }

    fn answer_error(&self, error: http::HttpError, keep_alive: bool, out: &mut Vec<u8>) {
        let status = error.status();
        self.stats.http_errors.fetch_add(1, Ordering::Relaxed);
        self.net
            .telemetry()
            .metrics()
            .inc("serve.http_errors", &[("status", status_label(status))]);
        http::write_response(out, status, error.reason(), keep_alive, "");
    }
}

fn status_label(status: u16) -> &'static str {
    match status {
        400 => "400",
        404 => "404",
        405 => "405",
        411 => "411",
        413 => "413",
        431 => "431",
        500 => "500",
        _ => "other",
    }
}

impl Dispatch for Dispatcher {
    fn dispatch(&mut self, req: Request<'_>, keep_alive: bool, out: &mut Vec<u8>) {
        // The stripped path: exactly the pre-observability dispatch.
        let Some(mut obs) = self.obs.take() else {
            return self.handle(req, keep_alive, out);
        };
        // The instrumented path brackets the handler with a wall-clock
        // read on each side and a span capture; all sinks are per-worker
        // shards or lock-on-retention rings, so nothing here serialises
        // workers against each other.
        obs.target_buf.clear();
        obs.target_buf
            .push_str(std::str::from_utf8(req.target).unwrap_or("?"));
        let tel = self.net.telemetry().clone();
        tel.begin_capture();
        let t0 = wall_now_us();
        self.handle(req, keep_alive, out);
        let latency_us = wall_now_us().saturating_sub(t0);
        let spans = tel.end_capture();
        obs.shard.record(latency_us);
        let slow = latency_us >= obs.plane.recorder().threshold_us();
        if let Some(seq) = obs
            .plane
            .recorder()
            .offer(latency_us, &obs.target_buf, spans)
        {
            // Only threshold-crossing traces become bucket exemplars;
            // reservoir picks stay reachable via /debug/trace.
            if slow {
                obs.plane.exemplars().note(latency_us, seq);
            }
        }
        self.obs = Some(obs);
    }
}

impl Dispatcher {
    fn handle(&mut self, req: Request<'_>, keep_alive: bool, out: &mut Vec<u8>) {
        let tel = self.net.telemetry().clone();
        let mut span = tel.span(SpanKind::Server, "serve:request");
        let metrics = tel.metrics();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        metrics.inc("serve.requests", &[]);
        // Connection-reuse ledger, mirroring the TLS session cache: the
        // first request on a connection is the "handshake", every
        // pipelined/keep-alive follow-up a "resumption".
        if req.first_on_connection {
            metrics.inc("serve.handshakes", &[]);
        } else {
            metrics.inc("serve.resumptions", &[]);
        }
        let keep_alive = keep_alive && !self.force_close;

        // SOAP dispatch is POST-only; GETs belong on the admin port.
        if req.method != http::Method::Post {
            span.set_attr("outcome", "method-not-allowed");
            return self.answer_error(http::HttpError::MethodNotAllowed, keep_alive, out);
        }

        let (Some(host), Ok(target)) = (
            req.host.and_then(|h| std::str::from_utf8(h).ok()),
            std::str::from_utf8(req.target),
        ) else {
            span.set_attr("outcome", "bad-request");
            return self.answer_error(http::HttpError::BadRequest, keep_alive, out);
        };
        self.addr_buf.clear();
        self.addr_buf.push_str(&self.scheme);
        self.addr_buf.push_str("://");
        self.addr_buf.push_str(host);
        self.addr_buf.push_str(target);

        let Some(handler) = self.net.handler_for(&self.addr_buf) else {
            span.set_attr("outcome", "not-found");
            self.stats.http_errors.fetch_add(1, Ordering::Relaxed);
            metrics.inc("serve.http_errors", &[("status", "404")]);
            http::write_response(out, 404, "Not Found", keep_alive, "");
            return;
        };

        let envelope = match std::str::from_utf8(req.body)
            .ok()
            .and_then(|wire| Envelope::from_wire(wire).ok())
        {
            Some(env) => env,
            None => {
                span.set_attr("outcome", "bad-envelope");
                return self.answer_error(http::HttpError::BadRequest, keep_alive, out);
            }
        };

        // The container pipeline nests its own spans under serve:request
        // (it picks up tel.current() on this thread). A panicking handler
        // must not take the worker down with it: answer 500 and move on.
        match catch_unwind(AssertUnwindSafe(|| handler(envelope))) {
            Ok(response) => {
                self.body_buf.clear();
                response.to_wire_into(&mut self.body_buf);
                span.set_attr("outcome", "ok");
                http::write_response(out, 200, "OK", keep_alive, &self.body_buf);
            }
            Err(_) => {
                span.set_attr("outcome", "panic");
                self.stats.dispatch_panics.fetch_add(1, Ordering::Relaxed);
                self.stats.http_errors.fetch_add(1, Ordering::Relaxed);
                metrics.inc("serve.http_errors", &[("status", "500")]);
                http::write_response(out, 500, "Internal Server Error", false, "");
            }
        }
    }
}

/// A running serving tier. Dropping (or calling [`Server::shutdown`])
/// stops the acceptor, drains the workers, and closes every connection.
pub struct Server {
    addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    plane: Option<AdminPlane>,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    platform: platform::Shutdown,
}

impl Server {
    /// Bind the listener and start the acceptor + workers. Handlers are
    /// resolved per request, so services may be deployed on `net` before
    /// or after the server starts.
    pub fn bind(net: &Network, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServeStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let admin = if config.observe.enabled {
            let admin_listener = TcpListener::bind(&config.observe.admin_addr)?;
            let admin_addr = admin_listener.local_addr()?;
            let plane = AdminPlane::new(
                config.workers.max(1),
                &config.observe,
                net.telemetry().clone(),
            );
            // Spans opened while serving carry wall timestamps from here
            // on; the deterministic exporters never render them.
            net.telemetry().set_wall_clock(true);
            Some((admin_listener, admin_addr, plane))
        } else {
            None
        };
        let plane = admin.as_ref().map(|(_, _, p)| p.clone());
        let admin_addr = admin.as_ref().map(|(_, a, _)| *a);
        let (threads, platform) = platform::start(
            net,
            &config,
            listener,
            admin.map(|(l, _, p)| (l, p)),
            stats.clone(),
            shutdown.clone(),
        )?;
        if let Some(p) = &plane {
            p.set_state(ReadyState::Ready);
        }
        Ok(Server {
            addr,
            admin_addr,
            plane,
            stats,
            shutdown,
            threads,
            platform,
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The admin-plane address, when observability is enabled.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin_addr
    }

    /// The live observability plane, when enabled — for registering
    /// readiness probes or inspecting the flight recorder in-process.
    pub fn plane(&self) -> Option<&AdminPlane> {
        self.plane.as_ref()
    }

    /// Wall-clock serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Stop accepting, close every connection, join every thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(p) = &self.plane {
            p.set_state(ReadyState::Draining);
        }
        self.platform.wake_all(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(target_os = "linux")]
mod platform {
    //! Linux: nonblocking acceptor + per-worker epoll event loops.

    use super::*;
    use crate::epoll::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLRDHUP};
    use ogsa_sim::SimDuration;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::net::SocketAddr;
    use std::os::fd::AsRawFd;

    /// Token reserved for each loop's eventfd; connections start above it.
    const WAKE: u64 = 0;
    /// Acceptor tokens for the service and admin listeners.
    const SERVICE_LISTENER: u64 = 1;
    const ADMIN_LISTENER: u64 = 2;

    /// Handles the shutdown path needs to reach from the control thread.
    pub(super) struct Shutdown {
        wakes: Vec<Arc<EventFd>>,
    }

    impl Shutdown {
        pub(super) fn wake_all(&self, _addr: SocketAddr) {
            for w in &self.wakes {
                w.wake();
            }
        }
    }

    struct WorkerShared {
        wake: Arc<EventFd>,
        /// Accepted connections awaiting pickup; the bool marks admin-port
        /// connections, which dispatch to the [`AdminDispatcher`].
        inbox: Mutex<Vec<(TcpStream, bool)>>,
    }

    pub(super) fn start(
        net: &Network,
        config: &ServeConfig,
        listener: TcpListener,
        admin: Option<(TcpListener, AdminPlane)>,
        stats: Arc<ServeStats>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<(Vec<JoinHandle<()>>, Shutdown)> {
        listener.set_nonblocking(true)?;
        let (admin_listener, plane) = match admin {
            Some((l, p)) => {
                l.set_nonblocking(true)?;
                (Some(l), Some(p))
            }
            None => (None, None),
        };
        let workers = config.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        let mut shared = Vec::with_capacity(workers);
        let mut wakes = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let ws = Arc::new(WorkerShared {
                wake: Arc::new(EventFd::new()?),
                inbox: Mutex::new(Vec::new()),
            });
            wakes.push(ws.wake.clone());
            shared.push(ws.clone());
            let obs = plane.as_ref().map(|p| WorkerObs {
                plane: p.clone(),
                shard: p.shard(i),
                target_buf: String::with_capacity(64),
            });
            let dispatcher = Dispatcher::new(net.clone(), config, stats.clone(), obs);
            let admin_dispatcher = plane.as_ref().map(|p| AdminDispatcher::new(p.clone()));
            let worker_plane = plane.clone();
            let shutdown = shutdown.clone();
            let metrics = net.telemetry().metrics().clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ogsa-serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            ws,
                            i,
                            dispatcher,
                            admin_dispatcher,
                            worker_plane,
                            shutdown,
                            metrics,
                        )
                    })?,
            );
        }

        let accept_wake = Arc::new(EventFd::new()?);
        wakes.push(accept_wake.clone());
        {
            let stats = stats.clone();
            let shutdown = shutdown.clone();
            let metrics = net.telemetry().metrics().clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ogsa-serve-accept".into())
                    .spawn(move || {
                        accept_loop(
                            listener,
                            admin_listener,
                            plane,
                            shared,
                            accept_wake,
                            stats,
                            shutdown,
                            metrics,
                        )
                    })?,
            );
        }
        Ok((threads, Shutdown { wakes }))
    }

    /// Drain one listener's accept backlog, handing connections to the
    /// workers round-robin. Returns the advanced round-robin cursor.
    #[allow(clippy::too_many_arguments)]
    fn drain_accepts(
        listener: &TcpListener,
        is_admin: bool,
        workers: &[Arc<WorkerShared>],
        plane: &Option<AdminPlane>,
        stats: &ServeStats,
        metrics: &ogsa_telemetry::MetricsRegistry,
        mut next: usize,
    ) -> usize {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    metrics.inc("serve.accepted", &[]);
                    let idx = next % workers.len();
                    let w = &workers[idx];
                    next += 1;
                    let depth = {
                        let mut inbox = w.inbox.lock();
                        inbox.push((stream, is_admin));
                        inbox.len() as u64
                    };
                    if let Some(p) = plane {
                        p.worker(idx)
                            .pending_handoffs
                            .store(depth, Ordering::Relaxed);
                    }
                    w.wake.wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient per-connection accept failures (e.g.
                // ECONNABORTED, EMFILE) must not kill the acceptor.
                Err(_) => break,
            }
        }
        next
    }

    #[allow(clippy::too_many_arguments)]
    fn accept_loop(
        listener: TcpListener,
        admin_listener: Option<TcpListener>,
        plane: Option<AdminPlane>,
        workers: Vec<Arc<WorkerShared>>,
        wake: Arc<EventFd>,
        stats: Arc<ServeStats>,
        shutdown: Arc<AtomicBool>,
        metrics: ogsa_telemetry::MetricsRegistry,
    ) {
        let Ok(ep) = Epoll::new() else { return };
        if ep
            .add(listener.as_raw_fd(), EPOLLIN, SERVICE_LISTENER)
            .is_err()
        {
            return;
        }
        if let Some(al) = &admin_listener {
            if ep.add(al.as_raw_fd(), EPOLLIN, ADMIN_LISTENER).is_err() {
                return;
            }
        }
        if ep.add(wake.raw(), EPOLLIN, WAKE).is_err() {
            return;
        }
        let mut events = [EpollEvent::zeroed(); 16];
        let mut next = 0usize;
        while !shutdown.load(Ordering::SeqCst) {
            let n = match ep.wait(&mut events, -1) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in &events[..n] {
                match ev.parts().0 {
                    WAKE => {
                        wake.drain();
                    }
                    ADMIN_LISTENER => {
                        if let Some(al) = &admin_listener {
                            next =
                                drain_accepts(al, true, &workers, &plane, &stats, &metrics, next);
                        }
                    }
                    _ => {
                        next = drain_accepts(
                            &listener, false, &workers, &plane, &stats, &metrics, next,
                        );
                    }
                }
            }
        }
    }

    struct Entry {
        conn: Conn,
        wants_write: bool,
        admin: bool,
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        shared: Arc<WorkerShared>,
        index: usize,
        mut dispatcher: Dispatcher,
        mut admin_dispatcher: Option<AdminDispatcher>,
        plane: Option<AdminPlane>,
        shutdown: Arc<AtomicBool>,
        metrics: ogsa_telemetry::MetricsRegistry,
    ) {
        let Ok(ep) = Epoll::new() else { return };
        if ep.add(shared.wake.raw(), EPOLLIN, WAKE).is_err() {
            return;
        }
        let gauges = plane.as_ref().map(|p| p.worker(index));
        let mut conns: HashMap<u64, Entry> = HashMap::new();
        let mut next_token: u64 = 1;
        let mut events = [EpollEvent::zeroed(); 256];
        loop {
            let n = match ep.wait(&mut events, -1) {
                Ok(n) => n,
                Err(_) => return,
            };
            if let Some(g) = gauges {
                g.wakeups.fetch_add(1, Ordering::Relaxed);
            }
            for ev in &events[..n] {
                let (token, bits) = ev.parts();
                if token == WAKE {
                    shared.wake.drain();
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let fresh = std::mem::take(&mut *shared.inbox.lock());
                    // Depth of the hand-off queue at wake: how far the
                    // acceptor ran ahead of this worker.
                    metrics.observe(
                        "serve.queue_depth",
                        &[],
                        SimDuration::from_micros(fresh.len() as u64),
                    );
                    if let Some(g) = gauges {
                        g.queue_depth.store(fresh.len() as u64, Ordering::Relaxed);
                        g.pending_handoffs.store(0, Ordering::Relaxed);
                    }
                    for (stream, admin) in fresh {
                        let Ok(conn) = Conn::new(stream) else {
                            continue;
                        };
                        let token = next_token;
                        next_token += 1;
                        if ep
                            .add(conn.stream().as_raw_fd(), EPOLLIN | EPOLLRDHUP, token)
                            .is_ok()
                        {
                            conns.insert(
                                token,
                                Entry {
                                    conn,
                                    wants_write: false,
                                    admin,
                                },
                            );
                        }
                    }
                    if let Some(g) = gauges {
                        g.connections.store(conns.len() as u64, Ordering::Relaxed);
                    }
                    continue;
                }
                let Some(entry) = conns.get_mut(&token) else {
                    continue;
                };
                if bits & (EPOLLERR | EPOLLHUP) != 0 {
                    let entry = conns.remove(&token).unwrap();
                    ep.delete(entry.conn.stream().as_raw_fd());
                    if let Some(g) = gauges {
                        g.connections.store(conns.len() as u64, Ordering::Relaxed);
                    }
                    continue;
                }
                let advance = match (&mut admin_dispatcher, entry.admin) {
                    (Some(ad), true) => entry.conn.advance(ad),
                    _ => entry.conn.advance(&mut dispatcher),
                };
                match advance {
                    crate::conn::Advance::Closed => {
                        let entry = conns.remove(&token).unwrap();
                        ep.delete(entry.conn.stream().as_raw_fd());
                        if let Some(g) = gauges {
                            g.connections.store(conns.len() as u64, Ordering::Relaxed);
                        }
                    }
                    crate::conn::Advance::Open { wants_write } => {
                        if wants_write != entry.wants_write {
                            entry.wants_write = wants_write;
                            let mut interest = EPOLLIN | EPOLLRDHUP;
                            if wants_write {
                                interest |= crate::epoll::EPOLLOUT;
                            }
                            let _ = ep.modify(entry.conn.stream().as_raw_fd(), interest, token);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod platform {
    //! Portable fallback: blocking accept, one thread per connection.

    use super::*;
    use std::net::SocketAddr;

    pub(super) struct Shutdown {
        admin_addr: Option<SocketAddr>,
    }

    impl Shutdown {
        pub(super) fn wake_all(&self, addr: SocketAddr) {
            // Unblock the acceptors with throwaway connections.
            let _ = TcpStream::connect(addr);
            if let Some(a) = self.admin_addr {
                let _ = TcpStream::connect(a);
            }
        }
    }

    fn serve_blocking(stream: TcpStream, dispatch: &mut impl Dispatch) {
        // A blocking stream makes Conn::advance a read-dispatch-write
        // cycle per call.
        let Ok(mut conn) = Conn::new(stream) else {
            return;
        };
        let _ = conn.stream().set_nonblocking(false);
        loop {
            match conn.advance(dispatch) {
                crate::conn::Advance::Closed => break,
                crate::conn::Advance::Open { .. } => {}
            }
        }
    }

    pub(super) fn start(
        net: &Network,
        config: &ServeConfig,
        listener: TcpListener,
        admin: Option<(TcpListener, AdminPlane)>,
        stats: Arc<ServeStats>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<(Vec<JoinHandle<()>>, Shutdown)> {
        let mut threads = Vec::new();
        let mut admin_addr = None;
        let plane = admin.as_ref().map(|(_, p)| p.clone());
        if let Some((admin_listener, plane)) = admin {
            admin_addr = admin_listener.local_addr().ok();
            let shutdown = shutdown.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("ogsa-serve-admin-accept".into())
                    .spawn(move || {
                        for stream in admin_listener.incoming() {
                            if shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = stream else { continue };
                            let mut dispatcher = AdminDispatcher::new(plane.clone());
                            let _ = std::thread::Builder::new()
                                .name("ogsa-serve-admin-conn".into())
                                .spawn(move || serve_blocking(stream, &mut dispatcher));
                        }
                    })?,
            );
        }
        let net = net.clone();
        let config = config.clone();
        threads.push(
            std::thread::Builder::new()
                .name("ogsa-serve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        stats.accepted.fetch_add(1, Ordering::Relaxed);
                        net.telemetry().metrics().inc("serve.accepted", &[]);
                        let obs = plane.as_ref().map(|p| WorkerObs {
                            plane: p.clone(),
                            shard: p.shard(0),
                            target_buf: String::with_capacity(64),
                        });
                        let mut dispatcher =
                            Dispatcher::new(net.clone(), &config, stats.clone(), obs);
                        let _ = std::thread::Builder::new()
                            .name("ogsa-serve-conn".into())
                            .spawn(move || serve_blocking(stream, &mut dispatcher));
                    }
                })?,
        );
        Ok((threads, Shutdown { admin_addr }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ogsa_xml::Element;
    use std::io::{Read, Write};
    use std::sync::Arc as StdArc;

    fn echo_net() -> Network {
        let net = Network::free();
        net.bind(
            "http://host-a/services/echo",
            StdArc::new(|req: Envelope| Envelope::new(req.body)),
        );
        net.bind(
            "http://host-a/services/boom",
            StdArc::new(|_req: Envelope| panic!("service blew up")),
        );
        net
    }

    fn raw_request(addr: SocketAddr, wire: &[u8]) -> String {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(wire).unwrap();
        c.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let _ = c.shutdown(std::net::Shutdown::Write);
        let mut out = Vec::new();
        let _ = c.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    fn soap_request(target: &str, keep_alive: bool) -> Vec<u8> {
        let env = Envelope::new(Element::text_element("Ping", "hello"));
        let mut wire = Vec::new();
        http::write_request(&mut wire, target, "host-a", keep_alive, &env.to_wire());
        wire
    }

    #[test]
    fn serves_soap_over_a_real_socket() {
        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let text = raw_request(server.addr(), &soap_request("/services/echo", false));
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
        assert!(text.contains("hello"));
        assert_eq!(server.stats().requests(), 1);
        assert_eq!(server.stats().http_errors(), 0);
    }

    #[test]
    fn unknown_service_is_404_and_unparsable_body_400() {
        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let text = raw_request(server.addr(), &soap_request("/services/nope", false));
        assert!(text.starts_with("HTTP/1.1 404 "), "got: {text}");

        let mut wire = Vec::new();
        http::write_request(
            &mut wire,
            "/services/echo",
            "host-a",
            false,
            "not xml at all",
        );
        let text = raw_request(server.addr(), &wire);
        assert!(text.starts_with("HTTP/1.1 400 "), "got: {text}");
        assert_eq!(server.stats().http_errors(), 2);
    }

    #[test]
    fn handler_panic_becomes_500_and_worker_survives() {
        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let text = raw_request(server.addr(), &soap_request("/services/boom", false));
        assert!(text.starts_with("HTTP/1.1 500 "), "got: {text}");
        assert_eq!(server.stats().dispatch_panics(), 1);
        // The pool is still alive and serving.
        let text = raw_request(server.addr(), &soap_request("/services/echo", false));
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
    }

    #[test]
    fn keep_alive_false_forces_connection_close() {
        let net = echo_net();
        let server = Server::bind(
            &net,
            ServeConfig {
                keep_alive: false,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // Client asks for keep-alive; the ablation config overrides.
        let text = raw_request(server.addr(), &soap_request("/services/echo", true));
        assert!(text.contains("Connection: close"), "got: {text}");
    }

    #[test]
    fn keep_alive_charges_one_handshake_for_many_requests() {
        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let wire = soap_request("/services/echo", true);
        let mut buf = vec![0u8; 65536];
        for _ in 0..3 {
            c.write_all(&wire).unwrap();
            let mut got = String::new();
            loop {
                let n = c.read(&mut buf).unwrap();
                assert!(n > 0);
                got.push_str(&String::from_utf8_lossy(&buf[..n]));
                if got.ends_with("Envelope>") {
                    break;
                }
            }
            assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "got: {got}");
        }
        let m = net.telemetry().metrics().snapshot();
        assert_eq!(m.counter("serve.handshakes"), 1);
        assert_eq!(m.counter("serve.resumptions"), 2);
        assert_eq!(m.counter("serve.requests"), 3);
        assert_eq!(server.stats().accepted(), 1);
    }

    fn get_request(target: &str) -> Vec<u8> {
        let mut wire = Vec::new();
        http::write_get_request(&mut wire, target, "admin", false);
        wire
    }

    #[test]
    fn get_on_the_service_port_is_405() {
        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let text = raw_request(server.addr(), &get_request("/services/echo"));
        assert!(text.starts_with("HTTP/1.1 405 "), "got: {text}");
    }

    #[test]
    fn admin_endpoints_answer_over_the_shared_workers() {
        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let admin = server.admin_addr().expect("observability on by default");

        // Generate some traffic so /metrics has latency observations.
        for _ in 0..3 {
            let text = raw_request(server.addr(), &soap_request("/services/echo", false));
            assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
        }

        let health = raw_request(admin, &get_request("/healthz"));
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "got: {health}");

        let ready = raw_request(admin, &get_request("/readyz"));
        assert!(ready.starts_with("HTTP/1.1 200 OK\r\n"), "got: {ready}");
        assert!(ready.contains("ready"), "got: {ready}");

        let metrics = raw_request(admin, &get_request("/metrics"));
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "got: {metrics}");
        let body = metrics.split("\r\n\r\n").nth(1).unwrap();
        let exp = ogsa_telemetry::prometheus::parse_exposition(body).expect("scrape parses");
        exp.check_histograms().expect("histograms consistent");
        let count = exp
            .get("serve_request_wall_us_count", &[])
            .expect("latency histogram present");
        assert!(count.value as u64 >= 3, "got: {}", count.value);
        assert!(exp.get("serve_ready", &[]).unwrap().value as u64 == 1);

        let vars = raw_request(admin, &get_request("/vars"));
        let body = vars.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.starts_with('{'), "got: {body}");
        assert!(body.contains("\"state\":\"ready\""), "got: {body}");
        assert!(body.contains("\"workers\":["), "got: {body}");

        let nope = raw_request(admin, &get_request("/nope"));
        assert!(nope.starts_with("HTTP/1.1 404 "), "got: {nope}");

        // The admin plane is GET-only.
        let post = raw_request(admin, &soap_request("/metrics", false));
        assert!(post.starts_with("HTTP/1.1 405 "), "got: {post}");
    }

    #[test]
    fn slow_requests_are_retained_with_exemplars() {
        let net = echo_net();
        let server = Server::bind(
            &net,
            ServeConfig {
                observe: ObsConfig {
                    // Everything counts as slow: every request must be
                    // retained in full and attached as an exemplar.
                    slow_threshold_us: 0,
                    ..ObsConfig::default()
                },
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let admin = server.admin_addr().unwrap();
        let text = raw_request(server.addr(), &soap_request("/services/echo", false));
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");

        let trace = raw_request(admin, &get_request("/debug/trace"));
        let body = trace.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("\"slow\":true"), "got: {body}");
        assert!(body.contains("/services/echo"), "got: {body}");
        assert!(body.contains("serve:request"), "got: {body}");

        let metrics = raw_request(admin, &get_request("/metrics"));
        let body = metrics.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("# {seq=\""), "no exemplar in: {body}");

        let plane = server.plane().unwrap();
        assert!(!plane.recorder().is_empty());
        assert!(plane.recorder().dump().iter().all(|t| t.slow));
    }

    #[test]
    fn disabled_observability_binds_no_admin_port() {
        let net = echo_net();
        let server = Server::bind(
            &net,
            ServeConfig {
                observe: ObsConfig::disabled(),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert!(server.admin_addr().is_none());
        assert!(server.plane().is_none());
        let text = raw_request(server.addr(), &soap_request("/services/echo", false));
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
    }

    #[test]
    fn readiness_probe_failure_turns_readyz_503() {
        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let admin = server.admin_addr().unwrap();
        let healthy = StdArc::new(AtomicBool::new(true));
        let h = healthy.clone();
        server.plane().unwrap().add_ready_probe(Box::new(move || {
            if h.load(Ordering::SeqCst) {
                Ok(())
            } else {
                Err("wal disk died".to_owned())
            }
        }));
        let ready = raw_request(admin, &get_request("/readyz"));
        assert!(ready.starts_with("HTTP/1.1 200 OK\r\n"), "got: {ready}");
        healthy.store(false, Ordering::SeqCst);
        let ready = raw_request(admin, &get_request("/readyz"));
        assert!(ready.starts_with("HTTP/1.1 503 "), "got: {ready}");
        assert!(ready.contains("wal disk died"), "got: {ready}");
    }

    /// The replication-aware readiness seam: a primary whose replicas fall
    /// more than `max_lag` records behind stops advertising ready, so a
    /// load balancer drains it before the unreplicated window grows.
    #[test]
    fn replica_lag_probe_gates_readyz() {
        use ogsa_xmldb::repl::{LoopbackFabric, ReplConfig, ReplicaNode, Replicator};
        use ogsa_xmldb::wal::WalOp;
        use ogsa_xmldb::{FsyncPolicy, WalObserver};

        let net = echo_net();
        let server = Server::bind(&net, ServeConfig::default()).unwrap();
        let admin = server.admin_addr().unwrap();

        let fabric = LoopbackFabric::new();
        fabric.register("r1", ReplicaNode::new(FsyncPolicy::PerWrite));
        let repl = StdArc::new(Replicator::new(
            "primary",
            &["r1"],
            fabric.clone(),
            ReplConfig {
                quorum: 1,
                max_retries: 2,
            },
        ));
        let probe_repl = repl.clone();
        server
            .plane()
            .unwrap()
            .add_ready_probe(Box::new(move || probe_repl.lag_check(1)));

        let put = |key: &str| WalOp::Put {
            collection: "c".to_owned(),
            key: key.to_owned(),
            doc: ogsa_xml::Element::new("d"),
        };
        // In sync: ready.
        repl.on_append(&put("k1"), true);
        let ready = raw_request(admin, &get_request("/readyz"));
        assert!(ready.starts_with("HTTP/1.1 200 OK\r\n"), "got: {ready}");

        // Partition the replica; writes pile up past the lag budget.
        fabric.sever("primary", "r1");
        repl.on_append(&put("k2"), true);
        repl.on_append(&put("k3"), true);
        let ready = raw_request(admin, &get_request("/readyz"));
        assert!(ready.starts_with("HTTP/1.1 503 "), "got: {ready}");
        assert!(ready.contains("lag"), "got: {ready}");

        // Heal and catch up: ready again.
        fabric.heal("primary", "r1");
        assert!(repl.catch_up("r1"));
        let ready = raw_request(admin, &get_request("/readyz"));
        assert!(ready.starts_with("HTTP/1.1 200 OK\r\n"), "got: {ready}");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let net = echo_net();
        let mut server = Server::bind(&net, ServeConfig::default()).unwrap();
        let addr = server.addr();
        let text = raw_request(addr, &soap_request("/services/echo", false));
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        server.shutdown();
        // Idempotent.
        server.shutdown();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly into a dead backlog; a write or
                // read must then fail fast.
                let mut c = TcpStream::connect(addr).unwrap();
                c.set_read_timeout(Some(std::time::Duration::from_secs(2)))
                    .unwrap();
                let _ = c.write_all(b"POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
                let mut b = [0u8; 16];
                matches!(c.read(&mut b), Ok(0) | Err(_))
            }
        );
    }
}
