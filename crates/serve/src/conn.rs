//! Per-connection state machine: buffered nonblocking reads, pipelined
//! request parsing, and buffered nonblocking writes.
//!
//! The read buffer is the zero-copy hand-off point: a complete request's
//! body is passed to the dispatcher as a borrowed slice of `rbuf`, the
//! dispatcher appends the full HTTP response into `wbuf`, and only then
//! are the consumed bytes drained. Pipelined requests (several queued in
//! one read) are answered back-to-back in arrival order, which HTTP/1.1
//! requires.
//!
//! Error policy: any malformed request gets a precise status answer with
//! `Connection: close`, then the connection is torn down after the write
//! buffer drains. Re-synchronising a stream after a framing error is
//! guesswork; closing is the only answer that can't amplify the damage.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::http::{self, HeadParse, HttpError, Method};

/// How much to grow the read buffer by per read call.
const READ_CHUNK: usize = 16 * 1024;

/// A request borrowed out of the connection's read buffer.
pub struct Request<'a> {
    pub method: Method,
    /// Request target, e.g. `/services/counter`.
    pub target: &'a [u8],
    /// `Host` header value, if the client sent one.
    pub host: Option<&'a [u8]>,
    /// The raw body bytes (the SOAP envelope on the happy path).
    pub body: &'a [u8],
    /// True for the first request on this connection — the serving-tier
    /// analogue of a TLS handshake (subsequent requests are "resumptions"
    /// in the paper's socket-caching sense).
    pub first_on_connection: bool,
}

/// Something that turns a request into a full HTTP response appended to
/// `out`. Implemented by the server's container dispatcher; tests plug in
/// closures via the blanket impl.
pub trait Dispatch {
    fn dispatch(&mut self, req: Request<'_>, keep_alive: bool, out: &mut Vec<u8>);
}

impl<F: FnMut(Request<'_>, bool, &mut Vec<u8>)> Dispatch for F {
    fn dispatch(&mut self, req: Request<'_>, keep_alive: bool, out: &mut Vec<u8>) {
        self(req, keep_alive, out)
    }
}

/// What the event loop should do with the connection after an advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// Keep it registered; `wants_write` says whether EPOLLOUT interest
    /// is needed (the write buffer did not fully drain).
    Open { wants_write: bool },
    /// Done — deregister and drop.
    Closed,
}

pub struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// How much of `wbuf` has already been written to the socket.
    wpos: usize,
    /// Set once a close-worthy condition is seen (error answered, client
    /// sent `Connection: close`, or EOF); the connection closes as soon
    /// as `wbuf` drains.
    closing: bool,
    /// Whether the first request has been seen (drives the
    /// handshake-vs-resumption accounting).
    handshaken: bool,
    /// Requests fully answered on this connection.
    requests: u64,
}

impl Conn {
    pub fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
            handshaken: false,
            requests: 0,
        })
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Drive the connection forward after a readiness event: read what's
    /// available, answer every complete request, flush what fits.
    pub fn advance(&mut self, dispatch: &mut impl Dispatch) -> Advance {
        if !self.closing {
            match self.fill() {
                Ok(eof) => {
                    self.process(dispatch);
                    if eof {
                        // Clean only if no partial request was buffered;
                        // either way there is nothing more to answer
                        // beyond what's already in wbuf.
                        self.closing = true;
                    }
                }
                Err(_) => return Advance::Closed,
            }
        }
        match self.flush() {
            Ok(()) => {
                if self.pending_write() == 0 && self.closing {
                    Advance::Closed
                } else {
                    Advance::Open {
                        wants_write: self.pending_write() > 0,
                    }
                }
            }
            Err(_) => Advance::Closed,
        }
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Read until WouldBlock or EOF. Returns whether EOF was seen.
    fn fill(&mut self) -> io::Result<bool> {
        loop {
            let old_len = self.rbuf.len();
            self.rbuf.resize(old_len + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[old_len..]) {
                Ok(0) => {
                    self.rbuf.truncate(old_len);
                    return Ok(true);
                }
                Ok(n) => {
                    self.rbuf.truncate(old_len + n);
                    // A short read usually means the socket is drained;
                    // loop once more to be sure only if it was full.
                    if n < READ_CHUNK {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(old_len);
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(old_len);
                }
                Err(e) => {
                    self.rbuf.truncate(old_len);
                    return Err(e);
                }
            }
        }
    }

    /// Parse and answer every complete request sitting in `rbuf`.
    fn process(&mut self, dispatch: &mut impl Dispatch) {
        let mut consumed = 0;
        while !self.closing {
            match http::parse_head(&self.rbuf[consumed..]) {
                HeadParse::Incomplete => break,
                HeadParse::Parsed(head) => {
                    let body_start = consumed + head.head_len;
                    let body_end = body_start + head.content_length;
                    if self.rbuf.len() < body_end {
                        break; // body still in flight
                    }
                    let first = !self.handshaken;
                    self.handshaken = true;
                    let keep_alive = head.keep_alive;
                    let base = consumed;
                    let req = Request {
                        method: head.method,
                        target: &self.rbuf[base + head.target.0..base + head.target.1],
                        host: head.host.map(|(lo, hi)| &self.rbuf[base + lo..base + hi]),
                        body: &self.rbuf[body_start..body_end],
                        first_on_connection: first,
                    };
                    dispatch.dispatch(req, keep_alive, &mut self.wbuf);
                    self.requests += 1;
                    consumed = body_end;
                    if !keep_alive {
                        self.closing = true;
                    }
                }
                HeadParse::Invalid { error, .. } => {
                    self.answer_error(error);
                    self.closing = true;
                }
            }
        }
        if consumed > 0 {
            self.rbuf.drain(..consumed);
        }
    }

    fn answer_error(&mut self, error: HttpError) {
        http::write_response(&mut self.wbuf, error.status(), error.reason(), false, "");
    }

    /// Write as much of `wbuf` as the socket accepts.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, Conn::new(server).unwrap())
    }

    fn echo(req: Request<'_>, keep_alive: bool, out: &mut Vec<u8>) {
        let body = String::from_utf8(req.body.to_vec()).unwrap();
        http::write_response(out, 200, "OK", keep_alive, &body);
    }

    #[test]
    fn answers_two_pipelined_requests_in_order() {
        let (mut client, mut conn) = pair();
        let mut wire = Vec::new();
        http::write_request(&mut wire, "/a", "h", true, "<one/>");
        http::write_request(&mut wire, "/b", "h", true, "<two/>");
        client.write_all(&wire).unwrap();

        let mut firsts = Vec::new();
        let mut d = |req: Request<'_>, ka: bool, out: &mut Vec<u8>| {
            firsts.push(req.first_on_connection);
            echo(req, ka, out)
        };
        // Poll until both responses are out (loopback may need a retry).
        for _ in 0..100 {
            match conn.advance(&mut d) {
                Advance::Open { .. } => {}
                Advance::Closed => panic!("closed early"),
            }
            if conn.requests() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(conn.requests(), 2);
        assert_eq!(firsts, vec![true, false]);

        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 4096];
        while !String::from_utf8_lossy(&got).contains("<two/>") {
            let n = client.read(&mut buf).unwrap();
            assert!(n > 0);
            got.extend_from_slice(&buf[..n]);
        }
        let text = String::from_utf8(got).unwrap();
        let one = text.find("<one/>").unwrap();
        let two = text.find("<two/>").unwrap();
        assert!(one < two, "pipelined responses out of order");
    }

    #[test]
    fn malformed_request_answers_and_closes() {
        let (mut client, mut conn) = pair();
        client.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut d = echo;
        let mut state = Advance::Open { wants_write: false };
        for _ in 0..100 {
            state = conn.advance(&mut d);
            if state == Advance::Closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(state, Advance::Closed);
        drop(conn);
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            match client.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(_) => break,
            }
        }
        let text = String::from_utf8_lossy(&got);
        assert!(text.starts_with("HTTP/1.1 400 "), "got: {text}");
        assert!(text.contains("Connection: close"));
    }

    #[test]
    fn eof_mid_body_closes_without_response() {
        let (mut client, mut conn) = pair();
        // Head promises 100 bytes; send only 3 then disconnect.
        client
            .write_all(b"POST /s HTTP/1.1\r\nContent-Length: 100\r\n\r\nabc")
            .unwrap();
        drop(client);
        let mut calls = 0usize;
        let mut d = |req: Request<'_>, ka: bool, out: &mut Vec<u8>| {
            calls += 1;
            echo(req, ka, out)
        };
        let mut state = Advance::Open { wants_write: false };
        for _ in 0..100 {
            state = conn.advance(&mut d);
            if state == Advance::Closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(state, Advance::Closed);
        assert_eq!(calls, 0, "partial request must never reach dispatch");
    }
}
