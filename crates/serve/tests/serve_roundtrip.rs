//! Socket-level round-trip: a signed WSRF `GetResourceProperty` and a
//! WS-Transfer `Get` over one real loopback keep-alive connection. Two
//! requests, one connection — exactly one serving-tier handshake charged
//! in telemetry, the second request a resumption, mirroring the paper's
//! socket-caching semantics.

use std::io::{Read, Write};
use std::net::TcpStream;

use ogsa_container::Testbed;
use ogsa_counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_security::SecurityPolicy;
use ogsa_serve::{ServeConfig, Server};

/// Split a bound address like `http://host-a/services/X` into
/// (`host-a`, `/services/X`).
fn split_address(address: &str) -> (&str, &str) {
    let rest = address
        .strip_prefix("http://")
        .expect("serving tier test uses http addresses");
    let slash = rest.find('/').expect("address has a path");
    (&rest[..slash], &rest[slash..])
}

/// Read exactly one HTTP response off the stream; returns (status, body).
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
            let status: u16 = head[9..12].parse().expect("status code");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase()
                        .strip_prefix("content-length:")
                        .map(str::trim)
                        .map(String::from)
                })
                .and_then(|v| v.parse().ok())
                .expect("Content-Length header");
            let body_start = head_end + 4;
            while buf.len() < body_start + content_length {
                let n = stream.read(&mut chunk).expect("read body");
                assert!(n > 0, "peer closed mid-body");
                buf.extend_from_slice(&chunk[..n]);
            }
            let body =
                String::from_utf8(buf[body_start..body_start + content_length].to_vec()).unwrap();
            buf.drain(..body_start + content_length);
            assert!(buf.is_empty(), "unexpected pipelined bytes");
            return (status, body);
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "peer closed mid-head");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn signed_wsrf_and_transfer_round_trip_one_keep_alive_connection() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::X509Sign);
    let wsrf = WsrfCounter::deploy(&container);
    let wxf = TransferCounter::deploy(&container);
    let agent = tb.client("host-b", "CN=socket-client,O=VO", SecurityPolicy::X509Sign);

    // Create one resource per stack over the simulated wire, then talk to
    // both through the real socket.
    let wsrf_counter = wsrf.client(agent.clone()).create().expect("wsrf create");
    let wxf_counter = wxf.client(agent.clone()).create().expect("wxf create");
    wsrf.client(agent.clone()).set(&wsrf_counter, 7).unwrap();
    wxf.client(agent.clone()).set(&wxf_counter, 9).unwrap();

    let (wsrf_addr, wsrf_wire) = agent.prepare_wire(
        &wsrf_counter,
        ogsa_wsrf::proxy::actions::GET_RP,
        ogsa_wsrf::properties::get_property_request("cv"),
    );
    let (wxf_addr, wxf_wire) = agent.prepare_wire(
        &wxf_counter,
        ogsa_transfer::messages::actions::GET,
        ogsa_transfer::messages::get_request(),
    );

    let server = Server::bind(tb.network(), ServeConfig::default()).expect("bind serving tier");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();

    // Request 1: WSRF GetResourceProperty.
    let (host, target) = split_address(&wsrf_addr);
    let mut req = Vec::new();
    ogsa_serve::http::write_request(&mut req, target, host, true, &wsrf_wire);
    stream.write_all(&req).unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "wsrf response: {body}");
    let resp = agent
        .decode_response(&body)
        .expect("verified wsrf response");
    let value = resp.child_elements().next().expect("property value");
    assert_eq!(value.text().trim(), "7");

    // Request 2: WS-Transfer Get, same connection.
    let (host, target) = split_address(&wxf_addr);
    let mut req = Vec::new();
    ogsa_serve::http::write_request(&mut req, target, host, true, &wxf_wire);
    stream.write_all(&req).unwrap();
    let (status, body) = read_response(&mut stream);
    assert_eq!(status, 200, "wxf response: {body}");
    let resp = agent.decode_response(&body).expect("verified wxf response");
    let representation =
        ogsa_transfer::messages::parse_get_response(&resp).expect("GetResponse representation");
    assert_eq!(representation.child_text("value"), Some("9"));

    // One connection, two requests: exactly one handshake, one resumption.
    let metrics = tb.telemetry().metrics().snapshot();
    assert_eq!(metrics.counter("serve.handshakes"), 1);
    assert_eq!(metrics.counter("serve.resumptions"), 1);
    assert_eq!(metrics.counter("serve.requests"), 2);
    assert_eq!(metrics.counter("serve.accepted"), 1);
    assert_eq!(server.stats().accepted(), 1);
    assert_eq!(server.stats().requests(), 2);
    assert_eq!(server.stats().http_errors(), 0);

    // The serving tier nests the container pipeline under its own span.
    let spans = tb.telemetry().finished_spans();
    let serve_spans: Vec<_> = spans.iter().filter(|s| s.name == "serve:request").collect();
    assert_eq!(serve_spans.len(), 2);
    assert!(spans.iter().any(|s| {
        s.name == "container:pipeline" && serve_spans.iter().any(|p| s.parent == Some(p.id))
    }));
}

#[test]
fn closing_connection_and_reconnecting_charges_a_second_handshake() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::X509Sign);
    let wxf = TransferCounter::deploy(&container);
    let agent = tb.client("host-b", "CN=socket-client,O=VO", SecurityPolicy::X509Sign);
    let counter = wxf.client(agent.clone()).create().expect("create");
    let (addr, wire) = agent.prepare_wire(
        &counter,
        ogsa_transfer::messages::actions::GET,
        ogsa_transfer::messages::get_request(),
    );
    let (host, target) = split_address(&addr);

    let server = Server::bind(tb.network(), ServeConfig::default()).expect("bind");
    for _ in 0..2 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let mut req = Vec::new();
        ogsa_serve::http::write_request(&mut req, target, host, false, &wire);
        stream.write_all(&req).unwrap();
        let (status, _) = read_response(&mut stream);
        assert_eq!(status, 200);
    }
    let metrics = tb.telemetry().metrics().snapshot();
    assert_eq!(metrics.counter("serve.handshakes"), 2);
    assert_eq!(metrics.counter("serve.resumptions"), 0);
}
