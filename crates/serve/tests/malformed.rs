//! Malformed-HTTP robustness: truncated heads, oversized Content-Length,
//! mid-body disconnects, and the PR-1 fault-plan garble corpus as
//! payloads. Every case must produce a clean error answer or a clean
//! close — never a panicked worker — and the server must keep serving
//! well-formed traffic afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ogsa_serve::{ServeConfig, Server};
use ogsa_soap::Envelope;
use ogsa_transport::{FaultPlan, Network};
use ogsa_xml::Element;

fn echo_network() -> Network {
    let net = Network::free();
    net.bind(
        "http://host-a/services/echo",
        std::sync::Arc::new(|req: Envelope| Envelope::new(req.body)),
    );
    net
}

fn well_formed_request() -> Vec<u8> {
    let env = Envelope::new(Element::text_element("Ping", "ok"));
    let mut wire = Vec::new();
    ogsa_serve::http::write_request(&mut wire, "/services/echo", "host-a", false, &env.to_wire());
    wire
}

/// Send raw bytes, read whatever comes back until close.
fn exchange(server: &Server, bytes: &[u8], half_close: bool) -> String {
    let mut c = TcpStream::connect(server.addr()).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.write_all(bytes).expect("write");
    if half_close {
        let _ = c.shutdown(std::net::Shutdown::Write);
    }
    let mut out = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        match c.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The server must still answer a well-formed request (i.e. no worker
/// died handling the garbage before it).
fn assert_still_serving(server: &Server) {
    let text = exchange(server, &well_formed_request(), true);
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "server no longer serving: {text}"
    );
}

#[test]
fn truncated_heads_get_answers_or_clean_closes() {
    let net = echo_network();
    let server = Server::bind(&net, ServeConfig::default()).expect("bind");
    let full = well_formed_request();
    // Cut the request off at various points inside the head: the server
    // must close cleanly (half-close signals no more bytes are coming).
    for cut in [1usize, 5, 17, 40] {
        let text = exchange(&server, &full[..cut.min(full.len())], true);
        assert!(
            text.is_empty() || text.starts_with("HTTP/1.1 4"),
            "cut at {cut}: unexpected reply {text}"
        );
    }
    assert_still_serving(&server);
}

#[test]
fn oversized_content_length_is_rejected_not_buffered() {
    let net = echo_network();
    let server = Server::bind(&net, ServeConfig::default()).expect("bind");
    let huge = format!(
        "POST /services/echo HTTP/1.1\r\nHost: host-a\r\nContent-Length: {}\r\n\r\n",
        usize::MAX
    );
    let text = exchange(&server, huge.as_bytes(), false);
    assert!(text.starts_with("HTTP/1.1 413 "), "got: {text}");
    assert!(text.contains("Connection: close"));
    assert_still_serving(&server);
}

#[test]
fn unterminated_giant_head_is_431() {
    let net = echo_network();
    let server = Server::bind(&net, ServeConfig::default()).expect("bind");
    let mut junk = b"POST /services/echo HTTP/1.1\r\n".to_vec();
    junk.resize(64 * 1024, b'x');
    let text = exchange(&server, &junk, false);
    assert!(text.starts_with("HTTP/1.1 431 "), "got: {text}");
    assert_still_serving(&server);
}

#[test]
fn mid_body_disconnect_is_a_clean_close() {
    let net = echo_network();
    let server = Server::bind(&net, ServeConfig::default()).expect("bind");
    let full = well_formed_request();
    let head_end = full.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    // Head plus half the body, then disconnect.
    let cut = head_end + (full.len() - head_end) / 2;
    let text = exchange(&server, &full[..cut], true);
    assert!(
        text.is_empty(),
        "partial request must not be answered: {text}"
    );
    assert_eq!(server.stats().dispatch_panics(), 0);
    assert_still_serving(&server);
}

#[test]
fn garbled_envelope_corpus_yields_400s_not_panics() {
    let net = echo_network();
    let server = Server::bind(&net, ServeConfig::default()).expect("bind");
    let env = Envelope::new(Element::text_element("Ping", "ok"));
    let clean = env.to_wire();
    // PR-1's deterministic garble corpus: truncate at a seeded point and
    // append bytes that cannot parse as XML.
    let plan = FaultPlan::seeded(0xC0FFEE).with_garbles(1.0);
    for seq in 0..24u64 {
        let garbled = plan.garble_wire(&clean, seq);
        let mut wire = Vec::new();
        ogsa_serve::http::write_request(&mut wire, "/services/echo", "host-a", false, &garbled);
        let text = exchange(&server, &wire, false);
        assert!(
            text.starts_with("HTTP/1.1 400 "),
            "garble #{seq} should be a 400: {text}"
        );
    }
    assert_eq!(server.stats().dispatch_panics(), 0);
    assert_eq!(server.stats().http_errors(), 24);
    assert_still_serving(&server);
}

#[test]
fn duplicate_content_length_is_400_on_the_wire() {
    let net = echo_network();
    let server = Server::bind(&net, ServeConfig::default()).expect("bind");
    // RFC 7230 §3.3.2: two differing values, two identical values, and a
    // real value followed by garbage are all 400 — never last-wins framing
    // (the request-smuggling shape).
    let cases: &[&[u8]] = &[
        b"POST /services/echo HTTP/1.1\r\nHost: host-a\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\n<a/>",
        b"POST /services/echo HTTP/1.1\r\nHost: host-a\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n<a/>",
        b"POST /services/echo HTTP/1.1\r\nHost: host-a\r\nContent-Length: 4\r\nContent-Length: gar\r\n\r\n<a/>",
    ];
    for (i, case) in cases.iter().enumerate() {
        let text = exchange(&server, case, true);
        assert!(
            text.starts_with("HTTP/1.1 400 "),
            "case {i}: expected 400, got {text}"
        );
        assert_still_serving(&server);
    }
}

#[test]
fn garbage_bytes_on_the_wire_never_kill_workers() {
    let net = echo_network();
    // One worker, so every piece of garbage lands on the same event loop.
    let server = Server::bind(
        &net,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let cases: &[&[u8]] = &[
        b"\x00\x01\x02\x03\x04\xff\xfe\xfd",
        b"GET / HTTP/1.1\r\nHost: host-a\r\n\r\n",
        b"POST /services/echo HTTP/1.1\r\nContent-Length: nonsense\r\n\r\n",
        b"POST /services/echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        b"completely unframed text with no CRLFCRLF terminator",
        b"\r\n\r\n",
    ];
    for (i, case) in cases.iter().enumerate() {
        let text = exchange(&server, case, true);
        assert!(
            text.is_empty() || text.starts_with("HTTP/1.1 4"),
            "case {i}: unexpected reply {text}"
        );
        assert_still_serving(&server);
    }
    assert_eq!(server.stats().dispatch_panics(), 0);
}
