//! The metrics registry: monotonic counters and virtual-time latency
//! histograms, keyed by name plus sorted labels.
//!
//! Keys render to the conventional `name{k=v,...}` form and live in
//! `BTreeMap`s, so snapshots iterate in a deterministic order — two runs of
//! the same seed serialise to identical JSON.

use std::collections::BTreeMap;
use std::sync::Arc;

use ogsa_sim::SimDuration;
use parking_lot::Mutex;

/// Histogram bucket upper bounds, in virtual microseconds. Chosen to bracket
/// the paper's operation range: sub-millisecond cache hits up to multi-second
/// X.509 grid steps.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket latency histogram over virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    /// One count per bound in [`LATENCY_BUCKETS_US`], plus an overflow slot.
    pub buckets: [u64; LATENCY_BUCKETS_US.len() + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            buckets: [0; LATENCY_BUCKETS_US.len() + 1],
        }
    }
}

impl Histogram {
    fn observe(&mut self, us: u64) {
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx] += 1;
    }

    /// Mean observation in virtual milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1000.0
        }
    }
}

/// A point-in-time copy of every counter and histogram.
///
/// `gauges` is populated only by [`MetricsRegistry::gather`] (set gauges +
/// registered collectors): the deterministic [`MetricsRegistry::snapshot`]
/// path never touches live-observability state, so same-seed metric dumps
/// stay byte-identical whether or not an admin plane is scraping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
    pub gauges: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Value of one rendered counter key (`name{k=v,...}`), 0 if absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of every counter series with this metric name, across all label
    /// sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        let prefix = format!("{name}{{");
        self.counters
            .iter()
            .filter(|(k, _)| k.as_str() == name || k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Value of one rendered gauge key, 0 if absent (gauges only exist on
    /// [`MetricsRegistry::gather`] snapshots).
    pub fn gauge(&self, key: &str) -> u64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Record a gauge value directly on this snapshot — how registered
    /// collectors contribute.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.gauges.insert(series_key(name, labels), value);
    }
}

/// A scrape-time callback contributing gauges (or late counters) to a
/// [`MetricsRegistry::gather`] snapshot — the seam through which xmldb shard
/// stats and serve worker state appear in `/metrics` without those crates
/// depending on each other.
pub type Collector = Box<dyn Fn(&mut MetricsSnapshot) + Send + Sync>;

/// Shared registry of counters and histograms. Cloning shares the store.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<MetricsInner>,
}

#[derive(Default)]
struct MetricsInner {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    /// Last-write-wins point-in-time values; only surfaced by `gather`.
    gauges: Mutex<BTreeMap<String, u64>>,
    /// Scrape-time contributors; only run by `gather`.
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for MetricsInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsInner")
            .field("counters", &self.counters)
            .field("histograms", &self.histograms)
            .field("gauges", &self.gauges)
            .field("collectors", &self.collectors.lock().len())
            .finish()
    }
}

/// `name{k=v,...}` with labels sorted by key — the canonical series key.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort();
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1 to a counter series.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Add `delta` to a counter series.
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .inner
            .counters
            .lock()
            .entry(series_key(name, labels))
            .or_insert(0) += delta;
    }

    /// Current value of a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner
            .counters
            .lock()
            .get(&series_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Record one virtual-time observation in a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        self.inner
            .histograms
            .lock()
            .entry(series_key(name, labels))
            .or_default()
            .observe(d.as_micros());
    }

    /// Current state of a histogram series, if it has observations.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        self.inner
            .histograms
            .lock()
            .get(&series_key(name, labels))
            .cloned()
    }

    /// Set a gauge series to a point-in-time value (last write wins).
    /// Gauges are live-observability state: they appear only on
    /// [`MetricsRegistry::gather`] snapshots, never on deterministic
    /// [`MetricsRegistry::snapshot`]s.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.inner
            .gauges
            .lock()
            .insert(series_key(name, labels), value);
    }

    /// Register a scrape-time collector run by every
    /// [`MetricsRegistry::gather`] call.
    pub fn register_collector(&self, f: impl Fn(&mut MetricsSnapshot) + Send + Sync + 'static) {
        self.inner.collectors.lock().push(Box::new(f));
    }

    /// A deterministic-order copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Take both locks before copying either map so the snapshot is a
        // single consistent cut, not two cuts a writer can slip between.
        let counters = self.inner.counters.lock();
        let histograms = self.inner.histograms.lock();
        MetricsSnapshot {
            counters: counters.clone(),
            histograms: histograms.clone(),
            gauges: BTreeMap::new(),
        }
    }

    /// The scrape view: [`MetricsRegistry::snapshot`] plus set gauges plus
    /// every registered collector's contribution. This is what `/metrics`
    /// renders; the deterministic snapshot path is untouched by it.
    pub fn gather(&self) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        snap.gauges = self.inner.gauges.lock().clone();
        // Collectors run outside the data locks: they may read other
        // subsystems (db stats, worker state) and re-enter set_gauge.
        let collectors = self.inner.collectors.lock();
        for f in collectors.iter() {
            f(&mut snap);
        }
        snap
    }

    /// Drop every series (a fresh measurement window).
    pub fn clear(&self) {
        let mut counters = self.inner.counters.lock();
        let mut histograms = self.inner.histograms.lock();
        counters.clear();
        histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keys_sort_labels() {
        assert_eq!(series_key("hits", &[]), "hits");
        assert_eq!(
            series_key("hits", &[("z", "1"), ("a", "2")]),
            "hits{a=2,z=1}"
        );
        assert_eq!(
            series_key("hits", &[("a", "2"), ("z", "1")]),
            "hits{a=2,z=1}"
        );
    }

    #[test]
    fn counters_accumulate_per_series() {
        let m = MetricsRegistry::new();
        m.inc("msgs", &[("stack", "wsrf")]);
        m.inc("msgs", &[("stack", "wsrf")]);
        m.add("msgs", &[("stack", "wxf")], 5);
        assert_eq!(m.counter("msgs", &[("stack", "wsrf")]), 2);
        assert_eq!(m.counter("msgs", &[("stack", "wxf")]), 5);
        assert_eq!(m.counter("msgs", &[]), 0);
        assert_eq!(m.snapshot().counter_total("msgs"), 7);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let m = MetricsRegistry::new();
        for us in [50, 900, 2_000_000] {
            m.observe("lat", &[], SimDuration::from_micros(us));
        }
        let h = m.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min_us, 50);
        assert_eq!(h.max_us, 2_000_000);
        assert_eq!(h.buckets[0], 1); // <=100
        assert_eq!(h.buckets[3], 1); // <=1000
        assert_eq!(h.buckets[LATENCY_BUCKETS_US.len()], 1); // overflow
        assert!((h.mean_ms() - (2_000_950.0 / 3.0 / 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_deterministic_and_clear_resets() {
        let m = MetricsRegistry::new();
        m.inc("b", &[]);
        m.inc("a", &[("x", "1")]);
        let keys: Vec<_> = m.snapshot().counters.keys().cloned().collect();
        assert_eq!(keys, ["a{x=1}", "b"]);
        m.clear();
        assert!(m.snapshot().counters.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        m.clone().inc("n", &[]);
        assert_eq!(m.counter("n", &[]), 1);
    }

    #[test]
    fn gauges_and_collectors_appear_only_on_gather() {
        let m = MetricsRegistry::new();
        m.inc("hits", &[]);
        m.set_gauge("queue.depth", &[("worker", "0")], 7);
        m.register_collector(|snap| snap.set_gauge("db.shards", &[], 4));

        let det = m.snapshot();
        assert!(
            det.gauges.is_empty(),
            "deterministic snapshot has no gauges"
        );

        let live = m.gather();
        assert_eq!(live.gauge("queue.depth{worker=0}"), 7);
        assert_eq!(live.gauge("db.shards"), 4);
        assert_eq!(live.counter("hits"), 1, "counters ride along");
        // Last write wins.
        m.set_gauge("queue.depth", &[("worker", "0")], 2);
        assert_eq!(m.gather().gauge("queue.depth{worker=0}"), 2);
    }
}
