//! The metrics registry: monotonic counters and virtual-time latency
//! histograms, keyed by name plus sorted labels.
//!
//! Keys render to the conventional `name{k=v,...}` form and live in
//! `BTreeMap`s, so snapshots iterate in a deterministic order — two runs of
//! the same seed serialise to identical JSON.

use std::collections::BTreeMap;
use std::sync::Arc;

use ogsa_sim::SimDuration;
use parking_lot::Mutex;

/// Histogram bucket upper bounds, in virtual microseconds. Chosen to bracket
/// the paper's operation range: sub-millisecond cache hits up to multi-second
/// X.509 grid steps.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket latency histogram over virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    /// One count per bound in [`LATENCY_BUCKETS_US`], plus an overflow slot.
    pub buckets: [u64; LATENCY_BUCKETS_US.len() + 1],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            buckets: [0; LATENCY_BUCKETS_US.len() + 1],
        }
    }
}

impl Histogram {
    fn observe(&mut self, us: u64) {
        self.count += 1;
        self.sum_us += us;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx] += 1;
    }

    /// Mean observation in virtual milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1000.0
        }
    }
}

/// A point-in-time copy of every counter and histogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Value of one rendered counter key (`name{k=v,...}`), 0 if absent.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of every counter series with this metric name, across all label
    /// sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        let prefix = format!("{name}{{");
        self.counters
            .iter()
            .filter(|(k, _)| k.as_str() == name || k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

/// Shared registry of counters and histograms. Cloning shares the store.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// `name{k=v,...}` with labels sorted by key — the canonical series key.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort();
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1 to a counter series.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Add `delta` to a counter series.
    pub fn add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .inner
            .counters
            .lock()
            .entry(series_key(name, labels))
            .or_insert(0) += delta;
    }

    /// Current value of a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner
            .counters
            .lock()
            .get(&series_key(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Record one virtual-time observation in a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], d: SimDuration) {
        self.inner
            .histograms
            .lock()
            .entry(series_key(name, labels))
            .or_default()
            .observe(d.as_micros());
    }

    /// Current state of a histogram series, if it has observations.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        self.inner
            .histograms
            .lock()
            .get(&series_key(name, labels))
            .cloned()
    }

    /// A deterministic-order copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Take both locks before copying either map so the snapshot is a
        // single consistent cut, not two cuts a writer can slip between.
        let counters = self.inner.counters.lock();
        let histograms = self.inner.histograms.lock();
        MetricsSnapshot {
            counters: counters.clone(),
            histograms: histograms.clone(),
        }
    }

    /// Drop every series (a fresh measurement window).
    pub fn clear(&self) {
        let mut counters = self.inner.counters.lock();
        let mut histograms = self.inner.histograms.lock();
        counters.clear();
        histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keys_sort_labels() {
        assert_eq!(series_key("hits", &[]), "hits");
        assert_eq!(
            series_key("hits", &[("z", "1"), ("a", "2")]),
            "hits{a=2,z=1}"
        );
        assert_eq!(
            series_key("hits", &[("a", "2"), ("z", "1")]),
            "hits{a=2,z=1}"
        );
    }

    #[test]
    fn counters_accumulate_per_series() {
        let m = MetricsRegistry::new();
        m.inc("msgs", &[("stack", "wsrf")]);
        m.inc("msgs", &[("stack", "wsrf")]);
        m.add("msgs", &[("stack", "wxf")], 5);
        assert_eq!(m.counter("msgs", &[("stack", "wsrf")]), 2);
        assert_eq!(m.counter("msgs", &[("stack", "wxf")]), 5);
        assert_eq!(m.counter("msgs", &[]), 0);
        assert_eq!(m.snapshot().counter_total("msgs"), 7);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let m = MetricsRegistry::new();
        for us in [50, 900, 2_000_000] {
            m.observe("lat", &[], SimDuration::from_micros(us));
        }
        let h = m.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min_us, 50);
        assert_eq!(h.max_us, 2_000_000);
        assert_eq!(h.buckets[0], 1); // <=100
        assert_eq!(h.buckets[3], 1); // <=1000
        assert_eq!(h.buckets[LATENCY_BUCKETS_US.len()], 1); // overflow
        assert!((h.mean_ms() - (2_000_950.0 / 3.0 / 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_deterministic_and_clear_resets() {
        let m = MetricsRegistry::new();
        m.inc("b", &[]);
        m.inc("a", &[("x", "1")]);
        let keys: Vec<_> = m.snapshot().counters.keys().cloned().collect();
        assert_eq!(keys, ["a{x=1}", "b"]);
        m.clear();
        assert!(m.snapshot().counters.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        m.clone().inc("n", &[]);
        assert_eq!(m.counter("n", &[]), 1);
    }
}
