//! Trace-context propagation over the simulated wire.
//!
//! The active (trace, span) pair rides every outgoing envelope as two `tel:`
//! SOAP headers next to the WS-Addressing `MessageID`/`RelatesTo` headers,
//! so a receiving container — possibly on the one-way delivery worker
//! thread — can re-join the sender's causal tree. Values are fixed-width
//! hex ([`TraceId::to_hex`]) so the wire size of a message does not depend
//! on how many spans a run happened to allocate first: byte counts, and the
//! size-derived SOAP/sign/wire costs, stay identical across runs.

use ogsa_soap::Envelope;
use ogsa_xml::{ns, Element, QName};

use crate::span::{SpanId, TraceId};

fn trace_qname() -> QName {
    QName::new(ns::TEL, "TraceId")
}

fn span_qname() -> QName {
    QName::new(ns::TEL, "SpanId")
}

/// Stamp the context onto an envelope (before signing: the headers are
/// covered by the WS-Security digest like any addressing header).
pub fn inject(env: Envelope, trace: TraceId, span: SpanId) -> Envelope {
    env.with_header(Element::text_element(trace_qname(), trace.to_hex()))
        .with_header(Element::text_element(span_qname(), span.to_hex()))
}

/// Read the propagated context, if present and well-formed.
pub fn extract(env: &Envelope) -> Option<(TraceId, SpanId)> {
    let trace = TraceId::from_hex(&env.header(&trace_qname())?.text())?;
    let span = SpanId::from_hex(&env.header(&span_qname())?.text())?;
    Some((trace, span))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_extract_roundtrip_survives_the_wire() {
        let env = Envelope::new(Element::text_element("Ping", "x"));
        let env = inject(env, TraceId(0xBEEF), SpanId(7));
        let back = Envelope::from_wire(&env.to_wire()).unwrap();
        assert_eq!(extract(&back), Some((TraceId(0xBEEF), SpanId(7))));
    }

    #[test]
    fn missing_or_malformed_headers_extract_none() {
        let env = Envelope::new(Element::new("Ping"));
        assert_eq!(extract(&env), None);
        let env = env.with_header(Element::text_element(trace_qname(), "zz"));
        assert_eq!(extract(&env), None);
    }

    #[test]
    fn wire_size_is_invariant_in_the_ids() {
        let env = |t: u64, s: u64| {
            inject(
                Envelope::new(Element::text_element("Ping", "x")),
                TraceId(t),
                SpanId(s),
            )
            .wire_size()
        };
        assert_eq!(env(1, 2), env(u64::MAX, u64::MAX - 9));
    }
}
