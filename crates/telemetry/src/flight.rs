//! The always-on flight recorder: a bounded record of recently completed
//! request traces, kept cheap enough to leave running in production.
//!
//! Retention policy (threshold + reservoir):
//! * any request slower than the configured threshold is **always**
//!   retained in full (a bounded ring — oldest slow trace evicted first),
//!   and its sequence number is handed back so the caller can attach it
//!   as an exemplar to the latency histogram bucket it landed in;
//! * fast requests are **reservoir-sampled** (Algorithm R over every fast
//!   offer since the last drain) so the recorder always holds a uniform
//!   picture of normal traffic to contrast an outlier against.
//!
//! The hot path for a fast, unsampled request is one atomic increment and
//! one xorshift draw; mutexes are touched only when a trace is actually
//! retained. Dumps render as JSON for `GET /debug/trace`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::export::json_escape;
use crate::span::SpanRecord;
use crate::wallclock::wall_now_us;

/// Default latency threshold above which a request is always retained.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;
/// Default capacity of the slow-trace ring.
pub const DEFAULT_SLOW_CAPACITY: usize = 64;
/// Default size of the fast-traffic reservoir.
pub const DEFAULT_RESERVOIR_CAPACITY: usize = 32;

/// One retained request trace.
#[derive(Debug, Clone)]
pub struct FlightTrace {
    /// Monotonically increasing retention sequence number (shared across
    /// slow and sampled traces); exemplars reference this.
    pub seq: u64,
    /// End-to-end request latency, wall microseconds.
    pub latency_us: u64,
    /// Retained because it crossed the slow threshold (else: reservoir).
    pub slow: bool,
    /// Request target (e.g. the HTTP path).
    pub target: String,
    /// [`wall_now_us`] stamp at retention.
    pub at_wall_us: u64,
    /// The full span tree captured for this request.
    pub spans: Vec<SpanRecord>,
}

/// Fixed-footprint recorder of recent request traces. Cloning shares the
/// recorder.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

#[derive(Debug)]
struct FlightInner {
    threshold_us: AtomicU64,
    /// Retention sequence counter (also stamps reservoir picks).
    seq: AtomicU64,
    /// Fast offers seen since the last [`FlightRecorder::drain`] — the `n`
    /// of Algorithm R.
    fast_seen: AtomicU64,
    /// xorshift64* state for reservoir picks; speed over quality, and no
    /// std RNG exists in the offline build.
    rng: AtomicU64,
    slow_capacity: usize,
    slow: Mutex<VecDeque<FlightTrace>>,
    reservoir_capacity: usize,
    reservoir: Mutex<Vec<FlightTrace>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(
            DEFAULT_SLOW_THRESHOLD_US,
            DEFAULT_SLOW_CAPACITY,
            DEFAULT_RESERVOIR_CAPACITY,
        )
    }
}

impl FlightRecorder {
    pub fn new(threshold_us: u64, slow_capacity: usize, reservoir_capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                threshold_us: AtomicU64::new(threshold_us),
                seq: AtomicU64::new(1),
                fast_seen: AtomicU64::new(0),
                rng: AtomicU64::new(0x9e37_79b9_7f4a_7c15),
                slow_capacity: slow_capacity.max(1),
                slow: Mutex::new(VecDeque::with_capacity(slow_capacity.max(1))),
                reservoir_capacity: reservoir_capacity.max(1),
                reservoir: Mutex::new(Vec::with_capacity(reservoir_capacity.max(1))),
            }),
        }
    }

    /// The current slow threshold in wall microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.inner.threshold_us.load(Ordering::Relaxed)
    }

    /// Reconfigure the slow threshold at runtime.
    pub fn set_threshold_us(&self, us: u64) {
        self.inner.threshold_us.store(us, Ordering::Relaxed);
    }

    fn next_rand(&self) -> u64 {
        // xorshift64* step via a relaxed CAS-free update: racing workers
        // may occasionally reuse a draw, which only perturbs sampling
        // uniformity, never correctness.
        let mut x = self.inner.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.inner.rng.store(x, Ordering::Relaxed);
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Offer one completed request. Returns the retention sequence number
    /// when the trace was kept (always, for a slow request), `None` when
    /// it was sampled away.
    pub fn offer(&self, latency_us: u64, target: &str, spans: Vec<SpanRecord>) -> Option<u64> {
        if latency_us >= self.threshold_us() {
            let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
            let mut ring = self.inner.slow.lock();
            if ring.len() == self.inner.slow_capacity {
                ring.pop_front();
            }
            ring.push_back(FlightTrace {
                seq,
                latency_us,
                slow: true,
                target: target.to_owned(),
                at_wall_us: wall_now_us(),
                spans,
            });
            return Some(seq);
        }
        // Algorithm R over fast offers: the k-th offer (1-based) fills the
        // reservoir while it has room, then replaces a uniformly random
        // slot with probability capacity/k.
        let k = self.inner.fast_seen.fetch_add(1, Ordering::Relaxed) + 1;
        let cap = self.inner.reservoir_capacity as u64;
        let slot = if k <= cap {
            (k - 1) as usize
        } else {
            let j = self.next_rand() % k;
            if j >= cap {
                return None;
            }
            j as usize
        };
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let trace = FlightTrace {
            seq,
            latency_us,
            slow: false,
            target: target.to_owned(),
            at_wall_us: wall_now_us(),
            spans,
        };
        let mut res = self.inner.reservoir.lock();
        if slot < res.len() {
            res[slot] = trace;
        } else {
            res.push(trace);
        }
        Some(seq)
    }

    /// Copies of every retained trace, slow ring first then reservoir,
    /// each in ascending sequence order.
    pub fn dump(&self) -> Vec<FlightTrace> {
        let mut out: Vec<FlightTrace> = self.inner.slow.lock().iter().cloned().collect();
        let mut sampled: Vec<FlightTrace> = self.inner.reservoir.lock().clone();
        sampled.sort_by_key(|t| t.seq);
        out.extend(sampled);
        out
    }

    /// Is a retained trace with this sequence number still present?
    pub fn contains_seq(&self, seq: u64) -> bool {
        self.inner.slow.lock().iter().any(|t| t.seq == seq)
            || self.inner.reservoir.lock().iter().any(|t| t.seq == seq)
    }

    /// Number of retained traces (slow + sampled).
    pub fn len(&self) -> usize {
        self.inner.slow.lock().len() + self.inner.reservoir.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear everything and restart the fast-offer count (a fresh
    /// sampling window).
    pub fn drain(&self) -> Vec<FlightTrace> {
        let mut out: Vec<FlightTrace> = self.inner.slow.lock().drain(..).collect();
        out.extend(self.inner.reservoir.lock().drain(..));
        self.inner.fast_seen.store(0, Ordering::Relaxed);
        out.sort_by_key(|t| t.seq);
        out
    }

    /// Render the current contents as a JSON document for `/debug/trace`.
    /// Spans include their wall stamps (this is the live view — the
    /// deterministic exporters remain wall-free).
    pub fn to_json(&self) -> String {
        let traces = self.dump();
        let mut out = String::from("{\"threshold_us\":");
        out.push_str(&self.threshold_us().to_string());
        out.push_str(",\"traces\":[");
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"latency_us\":{},\"slow\":{},\"target\":\"{}\",\"at_wall_us\":{},\"spans\":[",
                t.seq,
                t.latency_us,
                t.slow,
                json_escape(&t.target),
                t.at_wall_us
            ));
            for (j, s) in t.spans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let parent = match s.parent {
                    Some(p) => format!("\"{}\"", p.to_hex()),
                    None => "null".to_owned(),
                };
                out.push_str(&format!(
                    "{{\"span\":\"{}\",\"parent\":{},\"kind\":\"{}\",\"name\":\"{}\",\"wall_start_us\":{},\"wall_end_us\":{}}}",
                    s.id.to_hex(),
                    parent,
                    s.kind.as_str(),
                    json_escape(s.name),
                    s.wall_start_us.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
                    s.wall_end_us.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq_hint: u64) -> Vec<SpanRecord> {
        use crate::span::{SpanId, SpanKind, TraceId};
        use ogsa_sim::SimInstant;
        vec![SpanRecord {
            trace: TraceId(seq_hint),
            id: SpanId(seq_hint),
            parent: None,
            name: "serve:request",
            kind: SpanKind::Server,
            start: SimInstant(0),
            end: SimInstant(0),
            wall_start_us: Some(1),
            wall_end_us: Some(2),
            attrs: Vec::new(),
            events: Vec::new(),
        }]
    }

    #[test]
    fn slow_requests_are_always_retained() {
        let fr = FlightRecorder::new(1_000, 4, 2);
        for i in 0..10u64 {
            let seq = fr.offer(5_000 + i, "/svc", rec(i));
            assert!(seq.is_some(), "slow request {i} must be retained");
        }
        let slow: Vec<_> = fr.dump().into_iter().filter(|t| t.slow).collect();
        assert_eq!(slow.len(), 4, "ring keeps the most recent 4");
        assert!(slow.iter().all(|t| t.latency_us >= 5_006));
    }

    #[test]
    fn fast_requests_fill_a_bounded_reservoir() {
        let fr = FlightRecorder::new(1_000_000, 4, 8);
        let mut retained = 0;
        for i in 0..1_000u64 {
            if fr.offer(10, "/svc", rec(i)).is_some() {
                retained += 1;
            }
        }
        let dump = fr.dump();
        assert_eq!(dump.len(), 8, "reservoir is bounded");
        assert!(dump.iter().all(|t| !t.slow));
        assert!(retained >= 8, "at least the fills were retained");
        assert!(retained < 1_000, "most offers are sampled away");
    }

    #[test]
    fn threshold_is_runtime_configurable() {
        let fr = FlightRecorder::new(1_000, 4, 4);
        assert_eq!(fr.threshold_us(), 1_000);
        fr.set_threshold_us(10);
        let seq = fr.offer(50, "/svc", rec(1)).unwrap();
        assert!(fr.dump().iter().any(|t| t.seq == seq && t.slow));
        assert!(fr.contains_seq(seq));
        assert!(!fr.contains_seq(seq + 999));
    }

    #[test]
    fn dump_json_parses_shape() {
        let fr = FlightRecorder::new(100, 4, 4);
        fr.offer(500, "/a\"b", rec(1));
        fr.offer(10, "/fast", rec(2));
        let json = fr.to_json();
        assert!(json.starts_with("{\"threshold_us\":100,\"traces\":["));
        assert!(json.contains("\"slow\":true"));
        assert!(json.contains("\"slow\":false"));
        assert!(json.contains("/a\\\"b"));
        assert!(json.contains("\"wall_start_us\":1"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn drain_resets_the_window() {
        let fr = FlightRecorder::new(100, 4, 4);
        fr.offer(500, "/s", rec(1));
        fr.offer(10, "/f", rec(2));
        let drained = fr.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained.windows(2).all(|w| w[0].seq <= w[1].seq));
        assert!(fr.is_empty());
    }
}
