//! Exporters: JSONL span dumps, Chrome-trace JSON, and metrics JSON.
//!
//! All output is hand-rendered (no serde in the offline build) and fully
//! deterministic: spans sort by (trace, start, id), map keys are BTreeMap
//! order, floats never appear (virtual time is integral microseconds).

use crate::metrics::MetricsSnapshot;
use crate::span::{SpanEvent, SpanRecord};

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn attrs_json(attrs: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    out.push('}');
    out
}

fn events_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"at_us\":{},\"name\":\"{}\",\"attrs\":{}}}",
            e.at.0,
            json_escape(e.name),
            attrs_json(&e.attrs)
        ));
    }
    out.push(']');
    out
}

fn sorted(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    let mut v: Vec<&SpanRecord> = spans.iter().collect();
    v.sort_by_key(|s| (s.trace, s.start, s.id));
    v
}

/// One JSON object per line, one line per span, sorted by
/// (trace, start, id). Byte-identical across same-seed runs in the
/// network's synchronous-delivery mode.
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in sorted(spans) {
        let parent = match s.parent {
            Some(p) => format!("\"{}\"", p.to_hex()),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":{},\"kind\":\"{}\",\"name\":\"{}\",\"start_us\":{},\"end_us\":{},\"attrs\":{},\"events\":{}}}\n",
            s.trace.to_hex(),
            s.id.to_hex(),
            parent,
            s.kind.as_str(),
            json_escape(s.name),
            s.start.0,
            s.end.0,
            attrs_json(&s.attrs),
            events_json(&s.events),
        ));
    }
    out
}

/// Chrome-trace ("trace event") JSON: load in `chrome://tracing` or
/// Perfetto. Each trace renders as one row (`tid` = trace id); spans are
/// complete (`ph:"X"`) events in virtual microseconds, span events are
/// instant (`ph:"i"`) events.
pub fn spans_to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut events = Vec::new();
    for s in sorted(spans) {
        let mut args = vec![("trace", s.trace.to_hex()), ("span", s.id.to_hex())];
        for (k, v) in &s.attrs {
            args.push((k, v.clone()));
        }
        let args_json = {
            let mut out = String::from("{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
            out
        };
        events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{}}}",
            json_escape(s.name),
            s.kind.as_str(),
            s.trace.0,
            s.start.0,
            s.end.since(s.start).as_micros(),
            args_json
        ));
        for e in &s.events {
            events.push(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{}}}",
                json_escape(e.name),
                s.kind.as_str(),
                s.trace.0,
                e.at.0,
                attrs_json(&e.attrs)
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Metrics snapshot as JSON: counters object plus histogram summaries.
pub fn metrics_to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(k), v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"buckets\":[{}]}}",
            json_escape(k),
            h.count,
            h.sum_us,
            if h.count == 0 { 0 } else { h.min_us },
            h.max_us,
            buckets.join(",")
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, SpanKind, TraceId};
    use crate::MetricsRegistry;
    use ogsa_sim::{SimDuration, SimInstant};

    fn span(trace: u64, id: u64, parent: Option<u64>, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: "op",
            kind: SpanKind::Db,
            start: SimInstant(start),
            end: SimInstant(end),
            // Wall stamps must never leak into the deterministic dumps;
            // `jsonl_ignores_wall_stamps` below checks exactly that.
            wall_start_us: Some(123_456),
            wall_end_us: Some(789_012),
            attrs: vec![("key", "va\"lue".into())],
            events: vec![SpanEvent {
                at: SimInstant(start + 1),
                name: "fault:drop",
                attrs: vec![],
            }],
        }
    }

    #[test]
    fn jsonl_is_sorted_and_escaped() {
        let spans = vec![span(2, 5, None, 50, 60), span(1, 3, Some(2), 10, 20)];
        let out = spans_to_jsonl(&spans);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trace\":\"0000000000000001\""));
        assert!(lines[1].contains("\"trace\":\"0000000000000002\""));
        assert!(lines[0].contains("\"parent\":\"0000000000000002\""));
        assert!(lines[1].contains("\"parent\":null"));
        assert!(lines[0].contains("va\\\"lue"));
        assert!(
            lines[0].contains("\"events\":[{\"at_us\":11,\"name\":\"fault:drop\",\"attrs\":{}}]")
        );
    }

    #[test]
    fn jsonl_ignores_wall_stamps() {
        let with_wall = span(1, 2, None, 10, 20);
        let mut without_wall = with_wall.clone();
        without_wall.wall_start_us = None;
        without_wall.wall_end_us = None;
        assert_eq!(
            spans_to_jsonl(std::slice::from_ref(&with_wall)),
            spans_to_jsonl(&[without_wall.clone()]),
            "wall stamps must not affect the deterministic JSONL dump"
        );
        assert_eq!(
            spans_to_chrome_trace(&[with_wall]),
            spans_to_chrome_trace(&[without_wall]),
            "wall stamps must not affect the Chrome trace"
        );
    }

    #[test]
    fn chrome_trace_has_complete_and_instant_events() {
        let out = spans_to_chrome_trace(&[span(1, 2, None, 100, 350)]);
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"dur\":250"));
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"name\":\"fault:drop\""));
    }

    #[test]
    fn metrics_json_renders_counters_and_histograms() {
        let m = MetricsRegistry::new();
        m.inc("oneway.dead_letters", &[("reason", "partition")]);
        m.observe("invoke_ms", &[], SimDuration::from_micros(400));
        let out = metrics_to_json(&m.snapshot());
        assert!(out.contains("\"oneway.dead_letters{reason=partition}\":1"));
        assert!(out.contains("\"invoke_ms\":{\"count\":1,\"sum_us\":400"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\nb\t\"c\\"), "a\\nb\\t\\\"c\\\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
