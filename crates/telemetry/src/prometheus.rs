//! Prometheus text exposition (version 0.0.4) of a metrics snapshot, plus
//! a strict parser used by the bench gates and the loadgen cross-check.
//!
//! The registry stores series under rendered `name{k=v,...}` keys; this
//! module splits those keys back into name + labels, sanitises metric
//! names to the Prometheus charset, escapes label values (`\\`, `"`,
//! `\n`), and renders counters, gauges, and histograms (cumulative `le`
//! buckets, `+Inf`, `_sum`, `_count`). Wall-clock histograms render with
//! OpenMetrics-style exemplars linking a bucket to a flight-recorder
//! trace sequence number.
//!
//! Everything is hand-rolled — the offline build has no serde and no
//! prometheus crate — and the parser is deliberately strict: a scrape
//! that does not round-trip through [`parse_exposition`] fails the CI
//! gate rather than silently degrading.

use std::collections::BTreeMap;

use crate::metrics::{MetricsSnapshot, LATENCY_BUCKETS_US};
use crate::wallclock::{Exemplar, WallSnapshot, WALL_PROM_BUCKETS_US};

/// Escape a label value per the text exposition format: backslash, double
/// quote, and line feed.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Map an internal metric name (`wal.appends`, `serve:request`) onto the
/// Prometheus name charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Split a registry series key (`name{k=v,...}` or bare `name`) into the
/// name and its label pairs. Registry label discipline (no `,`/`=`/`}` in
/// values) makes this unambiguous.
pub fn split_series_key(key: &str) -> (&str, Vec<(&str, &str)>) {
    match key.find('{') {
        Some(brace) if key.ends_with('}') => {
            let name = &key[..brace];
            let body = &key[brace + 1..key.len() - 1];
            let labels = body
                .split(',')
                .filter(|s| !s.is_empty())
                .filter_map(|pair| pair.split_once('='))
                .collect();
            (name, labels)
        }
        _ => (key, Vec::new()),
    }
}

fn render_labels(out: &mut String, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
}

/// Group rendered series keys by sanitised metric name so each name gets
/// exactly one `# TYPE` line even when label sets differ.
fn grouped<V>(map: &BTreeMap<String, V>) -> BTreeMap<String, Vec<(&str, &V)>> {
    let mut out: BTreeMap<String, Vec<(&str, &V)>> = BTreeMap::new();
    for (key, v) in map {
        let (name, _) = split_series_key(key);
        out.entry(sanitize_name(name)).or_default().push((key, v));
    }
    out
}

/// Render a full snapshot (typically [`crate::MetricsRegistry::gather`])
/// as Prometheus text exposition. Counters render as `counter`, gauges as
/// `gauge`, virtual-time histograms as `histogram` with microsecond `le`
/// bounds.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, series) in grouped(&snap.counters) {
        out.push_str(&format!("# TYPE {name} counter\n"));
        for (key, value) in series {
            let (_, labels) = split_series_key(key);
            out.push_str(&name);
            render_labels(&mut out, &labels, None);
            out.push_str(&format!(" {value}\n"));
        }
    }
    for (name, series) in grouped(&snap.gauges) {
        out.push_str(&format!("# TYPE {name} gauge\n"));
        for (key, value) in series {
            let (_, labels) = split_series_key(key);
            out.push_str(&name);
            render_labels(&mut out, &labels, None);
            out.push_str(&format!(" {value}\n"));
        }
    }
    for (name, series) in grouped(&snap.histograms) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        for (key, h) in series {
            let (_, labels) = split_series_key(key);
            let mut acc = 0u64;
            for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
                acc += h.buckets[i];
                out.push_str(&name);
                out.push_str("_bucket");
                render_labels(&mut out, &labels, Some(("le", &bound.to_string())));
                out.push_str(&format!(" {acc}\n"));
            }
            out.push_str(&name);
            out.push_str("_bucket");
            render_labels(&mut out, &labels, Some(("le", "+Inf")));
            out.push_str(&format!(" {}\n", h.count));
            out.push_str(&name);
            out.push_str("_sum");
            render_labels(&mut out, &labels, None);
            out.push_str(&format!(" {}\n", h.sum_us));
            out.push_str(&name);
            out.push_str("_count");
            render_labels(&mut out, &labels, None);
            out.push_str(&format!(" {}\n", h.count));
        }
    }
    out
}

/// Render one merged wall-clock histogram with OpenMetrics-style exemplars:
/// a bucket whose latest slow request was retained by the flight recorder
/// carries `# {seq="N"} <latency_us>` so a scrape links straight to the
/// `/debug/trace` entry. `exemplars`, when given, is the
/// [`crate::ExemplarStore::snapshot`] layout: one slot per coarse bound
/// plus `+Inf` last.
pub fn render_wall_histogram(
    name: &str,
    labels: &[(&str, &str)],
    snap: &WallSnapshot,
    exemplars: Option<&[Option<Exemplar>]>,
) -> String {
    let name = sanitize_name(name);
    let mut out = String::new();
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let cum = snap.prom_cumulative();
    let bound_label = |i: usize| -> String {
        if i < WALL_PROM_BUCKETS_US.len() {
            WALL_PROM_BUCKETS_US[i].to_string()
        } else {
            "+Inf".to_owned()
        }
    };
    for (i, &count) in cum.iter().enumerate() {
        out.push_str(&name);
        out.push_str("_bucket");
        render_labels(&mut out, labels, Some(("le", &bound_label(i))));
        out.push_str(&format!(" {count}"));
        if let Some(ex) = exemplars.and_then(|slots| slots.get(i)).and_then(|e| *e) {
            out.push_str(&format!(" # {{seq=\"{}\"}} {}", ex.seq, ex.latency_us));
        }
        out.push('\n');
    }
    out.push_str(&name);
    out.push_str("_sum");
    render_labels(&mut out, labels, None);
    out.push_str(&format!(" {}\n", snap.sum_us));
    out.push_str(&name);
    out.push_str("_count");
    render_labels(&mut out, labels, None);
    out.push_str(&format!(" {}\n", snap.count));
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (without labels).
    pub name: String,
    /// Label pairs in line order, values unescaped.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The label value for `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: samples in document order plus declared types.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: name → type string.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// Sum of every sample with this exact name (across label sets).
    pub fn total(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// First sample with this name and no labels beyond what's asked for.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
    }

    /// Check every declared histogram: `le` buckets must be cumulative
    /// (non-decreasing in bound order, `+Inf` last and largest) and the
    /// `+Inf` bucket must equal `_count`. Returns the first violation.
    pub fn check_histograms(&self) -> Result<(), String> {
        for (name, ty) in &self.types {
            if ty != "histogram" {
                continue;
            }
            // Group bucket samples for this histogram by their non-`le`
            // label signature, preserving line order within each group.
            let bucket_name = format!("{name}_bucket");
            let mut groups: BTreeMap<String, Vec<&Sample>> = BTreeMap::new();
            for s in self.samples.iter().filter(|s| s.name == bucket_name) {
                let sig: Vec<String> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                groups.entry(sig.join(",")).or_default().push(s);
            }
            if groups.is_empty() {
                return Err(format!("histogram {name} has no _bucket samples"));
            }
            for (sig, buckets) in &groups {
                let mut last_bound = f64::NEG_INFINITY;
                let mut last_count = f64::NEG_INFINITY;
                let mut inf_count = None;
                for b in buckets {
                    let le = b
                        .label("le")
                        .ok_or_else(|| format!("{bucket_name}{{{sig}}}: bucket without le"))?;
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse::<f64>()
                            .map_err(|_| format!("{bucket_name}: bad le {le:?}"))?
                    };
                    if bound <= last_bound {
                        return Err(format!("{bucket_name}{{{sig}}}: le out of order at {le}"));
                    }
                    if b.value < last_count {
                        return Err(format!(
                            "{bucket_name}{{{sig}}}: counts not cumulative at le={le}"
                        ));
                    }
                    last_bound = bound;
                    last_count = b.value;
                    if le == "+Inf" {
                        inf_count = Some(b.value);
                    }
                }
                let inf = inf_count
                    .ok_or_else(|| format!("{bucket_name}{{{sig}}}: missing +Inf bucket"))?;
                // _count must match +Inf for the same label signature.
                let count = self
                    .samples
                    .iter()
                    .find(|s| {
                        s.name == format!("{name}_count")
                            && buckets[0]
                                .labels
                                .iter()
                                .filter(|(k, _)| k != "le")
                                .all(|(k, v)| s.label(k) == Some(v.as_str()))
                    })
                    .ok_or_else(|| format!("{name}: missing _count for {{{sig}}}"))?;
                if (count.value - inf).abs() > f64::EPSILON {
                    return Err(format!(
                        "{name}{{{sig}}}: _count {} != +Inf bucket {}",
                        count.value, inf
                    ));
                }
            }
        }
        Ok(())
    }
}

fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let key = &body[key_start..i];
        if key.is_empty()
            || !key
                .chars()
                .enumerate()
                .all(|(j, c)| c.is_ascii_alphabetic() || c == '_' || (j > 0 && c.is_ascii_digit()))
        {
            return Err(format!("line {line_no}: bad label name {key:?}"));
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            return Err(format!("line {line_no}: expected = after label name"));
        }
        i += 1;
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        i += 1;
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err(format!("line {line_no}: unterminated label value"));
            }
            match bytes[i] {
                b'"' => {
                    i += 1;
                    break;
                }
                b'\\' => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => {
                            return Err(format!("line {line_no}: bad escape {other:?}"));
                        }
                    }
                    i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 is copied through byte-wise; the
                    // source is a &str so the bytes are valid UTF-8.
                    let ch_len = {
                        let s = &body[i..];
                        s.chars().next().map(char::len_utf8).unwrap_or(1)
                    };
                    value.push_str(&body[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
        labels.push((key.to_owned(), value));
        if i < bytes.len() {
            match bytes[i] {
                b',' => i += 1,
                _ => {
                    return Err(format!("line {line_no}: expected , between labels"));
                }
            }
        }
    }
    Ok(labels)
}

/// Strictly parse a text exposition. Unknown comment lines (`# HELP`, bare
/// `#`) are skipped; malformed sample or `# TYPE` lines are errors.
/// Exemplar suffixes (`... # {seq="3"} 42`) are accepted on sample lines
/// and discarded.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, ty) = match (it.next(), it.next(), it.next()) {
                (Some(n), Some(t), None) => (n, t),
                _ => return Err(format!("line {line_no}: malformed TYPE line")),
            };
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {line_no}: unknown type {ty:?}"));
            }
            if exp.types.insert(name.to_owned(), ty.to_owned()).is_some() {
                return Err(format!("line {line_no}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free-form comment
        }
        // Sample line: name[{labels}] value [# exemplar]
        let (series, value_part) = {
            let name_end = line
                .find(['{', ' '])
                .ok_or_else(|| format!("line {line_no}: no value"))?;
            if line.as_bytes()[name_end] == b'{' {
                let close = line[name_end..]
                    .find('}')
                    .map(|p| name_end + p)
                    .ok_or_else(|| format!("line {line_no}: unterminated labels"))?;
                (&line[..close + 1], line[close + 1..].trim_start())
            } else {
                (&line[..name_end], line[name_end..].trim_start())
            }
        };
        let (name, labels) = match series.find('{') {
            Some(b) => (
                &series[..b],
                parse_labels(&series[b + 1..series.len() - 1], line_no)?,
            ),
            None => (series, Vec::new()),
        };
        if name.is_empty()
            || !name.chars().enumerate().all(|(j, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (j > 0 && c.is_ascii_digit())
            })
        {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let value_str = value_part.split(" # ").next().unwrap_or(value_part).trim();
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {line_no}: bad value {v:?}"))?,
        };
        exp.samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wallclock::{ExemplarStore, WallHistogram};
    use crate::MetricsRegistry;
    use ogsa_sim::SimDuration;

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn escaped_values_roundtrip_through_the_parser() {
        let mut snap = MetricsSnapshot::default();
        snap.set_gauge("g", &[("path", "a\\b\n\"c\"")], 3);
        let text = render(&snap);
        let exp = parse_exposition(&text).unwrap();
        let s = exp.get("g", &[]).unwrap();
        assert_eq!(s.label("path"), Some("a\\b\n\"c\""));
        assert_eq!(s.value, 3.0);
    }

    #[test]
    fn names_sanitize_to_prometheus_charset() {
        assert_eq!(sanitize_name("wal.appends"), "wal_appends");
        assert_eq!(sanitize_name("serve:request"), "serve:request");
        assert_eq!(sanitize_name("db.shard-busy"), "db_shard_busy");
        assert_eq!(sanitize_name("9lives"), "_lives");
    }

    #[test]
    fn split_series_key_inverts_series_key() {
        use crate::metrics::series_key;
        let key = series_key("msgs", &[("stack", "wsrf"), ("op", "get")]);
        let (name, labels) = split_series_key(&key);
        assert_eq!(name, "msgs");
        assert_eq!(labels, vec![("op", "get"), ("stack", "wsrf")]);
        assert_eq!(split_series_key("bare"), ("bare", vec![]));
    }

    #[test]
    fn render_emits_one_type_line_per_name() {
        let m = MetricsRegistry::new();
        m.inc("msgs", &[("stack", "wsrf")]);
        m.inc("msgs", &[("stack", "wxf")]);
        m.observe("lat", &[], SimDuration::from_micros(300));
        let mut snap = m.gather();
        snap.set_gauge("depth", &[], 5);
        let text = render(&snap);
        assert_eq!(text.matches("# TYPE msgs counter").count(), 1);
        assert_eq!(text.matches("# TYPE depth gauge").count(), 1);
        assert_eq!(text.matches("# TYPE lat histogram").count(), 1);
        assert!(text.contains("msgs{stack=\"wsrf\"} 1\n"));
        assert!(text.contains("msgs{stack=\"wxf\"} 1\n"));
        let exp = parse_exposition(&text).unwrap();
        assert_eq!(exp.total("msgs"), 2.0);
        exp.check_histograms().unwrap();
    }

    #[test]
    fn histogram_renders_cumulative_buckets_inf_sum_count() {
        let m = MetricsRegistry::new();
        for us in [50u64, 90, 900, 2_000_000] {
            m.observe("lat", &[], SimDuration::from_micros(us));
        }
        let text = render(&m.gather());
        let exp = parse_exposition(&text).unwrap();
        exp.check_histograms().unwrap();
        assert_eq!(exp.get("lat_bucket", &[("le", "100")]).unwrap().value, 2.0);
        assert_eq!(exp.get("lat_bucket", &[("le", "1000")]).unwrap().value, 3.0);
        assert_eq!(exp.get("lat_bucket", &[("le", "+Inf")]).unwrap().value, 4.0);
        assert_eq!(exp.get("lat_count", &[]).unwrap().value, 4.0);
        assert_eq!(exp.get("lat_sum", &[]).unwrap().value, 2_001_040.0);
    }

    #[test]
    fn check_histograms_rejects_inconsistencies() {
        // +Inf smaller than an earlier bucket → not cumulative.
        let bad = "# TYPE h histogram\nh_bucket{le=\"100\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(parse_exposition(bad).unwrap().check_histograms().is_err());
        // _count disagrees with +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"100\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n";
        assert!(parse_exposition(bad).unwrap().check_histograms().is_err());
        // Out-of-order le bounds.
        let bad = "# TYPE h histogram\nh_bucket{le=\"200\"} 1\nh_bucket{le=\"100\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse_exposition(bad).unwrap().check_histograms().is_err());
    }

    #[test]
    fn wall_histogram_renders_with_exemplars() {
        let h = WallHistogram::new();
        let store = ExemplarStore::new();
        for us in [40u64, 800, 30_000] {
            h.record(us);
        }
        store.note(30_000, 17);
        let text = render_wall_histogram(
            "serve.request_wall_us",
            &[("listener", "main")],
            &h.snapshot(),
            Some(&store.snapshot()),
        );
        assert!(text.contains("# TYPE serve_request_wall_us histogram"));
        assert!(text.contains("# {seq=\"17\"} 30000"));
        let exp = parse_exposition(&text).unwrap();
        exp.check_histograms().unwrap();
        assert_eq!(
            exp.get("serve_request_wall_us_count", &[("listener", "main")])
                .unwrap()
                .value,
            3.0
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("name 1.5\n").is_ok());
        assert!(parse_exposition("name{k=\"v\"} 2\n").is_ok());
        assert!(parse_exposition("name\n").is_err(), "no value");
        assert!(parse_exposition("na me 1\n").is_err(), "space in name");
        assert!(parse_exposition("name{k=v} 1\n").is_err(), "unquoted label");
        assert!(parse_exposition("name{k=\"v} 1\n").is_err(), "unterminated");
        assert!(parse_exposition("name xyz\n").is_err(), "bad value");
        assert!(parse_exposition("# TYPE h wat\n").is_err(), "bad type");
        assert!(
            parse_exposition("# TYPE h counter\n# TYPE h gauge\n").is_err(),
            "duplicate TYPE"
        );
        assert!(parse_exposition("# HELP anything goes here\nok 1\n").is_ok());
    }
}
