//! Causal tracing and virtual-time metrics for the simulated OGSA substrate.
//!
//! The paper's argument is quantitative — *where* a WSRF or WS-Transfer
//! request spends its time (Xindice, WS-Security, the wire) and *how many*
//! messages each interaction pattern costs. This crate records exactly that:
//!
//! * [`Telemetry`] hands out RAII [`Span`] guards. Every client invoke opens
//!   a trace; container pipeline stages, security processing, database
//!   operations, wire crossings, and one-way delivery attempts nest under it
//!   via a per-thread context stack, and trace/span IDs ride the simulated
//!   wire in `tel:` SOAP headers (next to WS-Addressing `MessageID`) so the
//!   tree survives process — here: thread — hops.
//! * Injected faults, backoff sleeps, redelivery attempts, and dead letters
//!   are span *events*, timestamped on the virtual clock like everything
//!   else. Under the network's synchronous-delivery mode a whole run is
//!   single-threaded, so two runs of the same seed produce byte-identical
//!   span dumps.
//! * [`MetricsRegistry`] keeps monotonic counters and virtual-time latency
//!   histograms keyed by `name{label=value,...}` series.
//! * [`export`] renders Chrome-trace JSON (load in `chrome://tracing` /
//!   Perfetto), sorted JSONL span dumps, and metrics JSON; [`analysis`]
//!   folds a span forest into per-kind self-time — the db/security/wire
//!   component breakdowns of `BENCH_counter.json` and `BENCH_gridbox.json`.

mod metrics;
mod span;

pub mod analysis;
pub mod export;
pub mod flight;
pub mod prometheus;
pub mod wallclock;
pub mod wire;

pub use flight::{FlightRecorder, FlightTrace};
pub use metrics::{series_key, Histogram, MetricsRegistry, MetricsSnapshot, LATENCY_BUCKETS_US};
pub use span::{SpanEvent, SpanId, SpanKind, SpanRecord, TraceId};
pub use wallclock::{
    wall_now_us, Exemplar, ExemplarStore, ShardedWallHistogram, WallHistogram, WallSnapshot,
};

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ogsa_sim::{SimInstant, VirtualClock};
use parking_lot::Mutex;

thread_local! {
    /// Per-thread stack of open spans, keyed by Telemetry instance (the
    /// `Arc` pointer). Thread-local instead of a shared
    /// `Mutex<HashMap<ThreadId, ...>>`: span open/close is the serving
    /// tier's hot path, and a global lock there is exactly the kind of
    /// cross-worker synchronisation the observability plane must not add.
    static CTX: RefCell<HashMap<usize, Vec<(TraceId, SpanId)>>> =
        RefCell::new(HashMap::new());
    /// Per-thread capture buffers, keyed the same way. While a capture is
    /// active, this thread's finished spans are copied here — even on a
    /// globally disabled instance — so a serving worker can collect one
    /// request's span tree for the flight recorder without turning on
    /// unbounded global span accumulation.
    static CAPTURE: RefCell<HashMap<usize, Vec<SpanRecord>>> =
        RefCell::new(HashMap::new());
}

/// The tracing handle: shared by everything wired to one virtual clock
/// (cloning shares the store). A disabled instance ([`Telemetry::disabled`])
/// costs one branch per call and records nothing.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

struct TelemetryInner {
    clock: VirtualClock,
    enabled: bool,
    /// Next span id; trace ids are drawn from the same counter (a trace id
    /// is its root span's id), so both are unique per instance.
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: MetricsRegistry,
    /// When set, spans additionally carry monotonic host-clock stamps
    /// ([`wallclock::wall_now_us`]). Excluded from every deterministic
    /// exporter; read by the live-observability plane.
    wall: AtomicBool,
}

impl Telemetry {
    /// An enabled instance recording against `clock`.
    pub fn new(clock: VirtualClock) -> Self {
        Telemetry {
            inner: Arc::new(TelemetryInner {
                clock,
                enabled: true,
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
                wall: AtomicBool::new(false),
            }),
        }
    }

    /// An instance that records nothing (for components constructed without
    /// a testbed).
    pub fn disabled() -> Self {
        let mut t = Telemetry::new(VirtualClock::new());
        // Safe: we are the only holder right after construction.
        Arc::get_mut(&mut t.inner)
            .expect("freshly constructed")
            .enabled = false;
        t
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The key identifying this instance (shared by clones) in the
    /// thread-local context/capture maps.
    fn instance_key(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Stamp wall-clock timestamps onto spans from now on. Wall stamps are
    /// excluded from the deterministic exporters, so flipping this cannot
    /// change any virtual-time figure or dump.
    pub fn set_wall_clock(&self, on: bool) {
        self.inner.wall.store(on, Ordering::Relaxed);
    }

    pub fn wall_clock_enabled(&self) -> bool {
        self.inner.wall.load(Ordering::Relaxed)
    }

    /// Start capturing this thread's finished spans into a private buffer.
    /// Works even on a disabled instance — the global store stays empty (or,
    /// on an enabled instance, is fed exactly as without the capture), so
    /// deterministic dumps are unaffected. The serving tier brackets each
    /// request with this to feed the flight recorder.
    pub fn begin_capture(&self) {
        let key = self.instance_key();
        CAPTURE.with(|c| {
            c.borrow_mut().insert(key, Vec::new());
        });
    }

    /// Stop the capture started by [`Telemetry::begin_capture`] and return
    /// the spans this thread finished since. Empty if no capture was active.
    pub fn end_capture(&self) -> Vec<SpanRecord> {
        let key = self.instance_key();
        CAPTURE
            .with(|c| c.borrow_mut().remove(&key))
            .unwrap_or_default()
    }

    /// Is a capture active on this thread for this instance?
    pub fn is_capturing(&self) -> bool {
        let key = self.instance_key();
        CAPTURE.with(|c| c.borrow().contains_key(&key))
    }

    /// Should spans opened on this thread record right now?
    fn recording_here(&self) -> bool {
        self.inner.enabled || self.is_capturing()
    }

    /// The innermost open span on this thread, if any.
    pub fn current(&self) -> Option<(TraceId, SpanId)> {
        if !self.recording_here() {
            return None;
        }
        let key = self.instance_key();
        CTX.with(|c| c.borrow().get(&key).and_then(|stack| stack.last().copied()))
    }

    /// Open a span under the thread's current context; with no context open,
    /// this starts a **new trace** rooted here.
    pub fn span(&self, kind: SpanKind, name: &'static str) -> Span {
        if !self.recording_here() {
            return Span { state: None };
        }
        match self.current() {
            Some((trace, parent)) => self.open(kind, name, trace, Some(parent)),
            None => {
                let id = self.next_id();
                self.open_with_id(kind, name, TraceId(id.0), None, id)
            }
        }
    }

    /// Open a span with explicit parentage — how a delivery worker thread
    /// re-joins the sender's trace carried in the message headers.
    pub fn child_span(
        &self,
        kind: SpanKind,
        name: &'static str,
        trace: TraceId,
        parent: Option<SpanId>,
    ) -> Span {
        if !self.recording_here() {
            return Span { state: None };
        }
        self.open(kind, name, trace, parent)
    }

    fn next_id(&self) -> SpanId {
        SpanId(self.inner.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn open(
        &self,
        kind: SpanKind,
        name: &'static str,
        trace: TraceId,
        parent: Option<SpanId>,
    ) -> Span {
        let id = self.next_id();
        self.open_with_id(kind, name, trace, parent, id)
    }

    fn open_with_id(
        &self,
        kind: SpanKind,
        name: &'static str,
        trace: TraceId,
        parent: Option<SpanId>,
        id: SpanId,
    ) -> Span {
        let key = self.instance_key();
        CTX.with(|c| c.borrow_mut().entry(key).or_default().push((trace, id)));
        let wall_start = if self.inner.wall.load(Ordering::Relaxed) {
            Some(wallclock::wall_now_us())
        } else {
            None
        };
        Span {
            state: Some(SpanState {
                tel: self.clone(),
                trace,
                id,
                parent,
                name,
                kind,
                start: self.inner.clock.now(),
                wall_start,
                attrs: Vec::new(),
                events: Vec::new(),
            }),
        }
    }

    fn record(&self, record: SpanRecord) {
        let key = self.instance_key();
        CAPTURE.with(|c| match c.borrow_mut().get_mut(&key) {
            Some(buf) => {
                // A capture observes; it never diverts. The global store is
                // fed exactly as it would be without the capture, so
                // deterministic dumps are unchanged by live observation.
                if self.inner.enabled {
                    self.inner.spans.lock().push(record.clone());
                }
                buf.push(record);
            }
            None => {
                if self.inner.enabled {
                    self.inner.spans.lock().push(record);
                }
            }
        });
    }

    fn pop_ctx(&self, trace: TraceId, id: SpanId) {
        let key = self.instance_key();
        CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            if let Some(stack) = ctx.get_mut(&key) {
                if let Some(pos) = stack.iter().rposition(|&e| e == (trace, id)) {
                    stack.remove(pos);
                }
                if stack.is_empty() {
                    ctx.remove(&key);
                }
            }
        });
    }

    /// Copies of every finished span, in finish order.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().clone()
    }

    /// Drain the finished spans (a fresh measurement window).
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.inner.spans.lock())
    }

    /// Forget finished spans without returning them.
    pub fn clear_spans(&self) {
        self.inner.spans.lock().clear();
    }

    pub fn span_count(&self) -> usize {
        self.inner.spans.lock().len()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.enabled)
            .field("finished_spans", &self.span_count())
            .finish()
    }
}

struct SpanState {
    tel: Telemetry,
    trace: TraceId,
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    kind: SpanKind,
    start: SimInstant,
    wall_start: Option<u64>,
    attrs: Vec<(&'static str, String)>,
    events: Vec<SpanEvent>,
}

/// An open span. Dropping it stamps the end time (virtual clock) and files
/// the record. All methods are no-ops on a disabled instance's spans.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// A span that records nothing (placeholder on untraced paths).
    pub fn noop() -> Span {
        Span { state: None }
    }

    /// Is this span actually recording?
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    pub fn trace_id(&self) -> Option<TraceId> {
        self.state.as_ref().map(|s| s.trace)
    }

    pub fn id(&self) -> Option<SpanId> {
        self.state.as_ref().map(|s| s.id)
    }

    /// Attach a key/value attribute.
    pub fn set_attr(&mut self, key: &'static str, value: impl AsRef<str>) {
        if let Some(s) = &mut self.state {
            s.attrs.push((key, value.as_ref().to_owned()));
        }
    }

    /// Record a point event at the current virtual time.
    pub fn event(&mut self, name: &'static str) {
        self.event_with(name, &[]);
    }

    /// Record a point event with attributes at the current virtual time.
    pub fn event_with(&mut self, name: &'static str, attrs: &[(&'static str, &str)]) {
        if let Some(s) = &mut self.state {
            let at = s.tel.inner.clock.now();
            s.events.push(SpanEvent {
                at,
                name,
                attrs: attrs.iter().map(|(k, v)| (*k, (*v).to_owned())).collect(),
            });
        }
    }

    /// Close the span now (same as dropping, but reads better at call
    /// sites that want an explicit end).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        let end = s.tel.inner.clock.now();
        let wall_end = s.wall_start.map(|_| wallclock::wall_now_us());
        s.tel.pop_ctx(s.trace, s.id);
        s.tel.record(SpanRecord {
            trace: s.trace,
            id: s.id,
            parent: s.parent,
            name: s.name,
            kind: s.kind,
            start: s.start,
            end,
            wall_start_us: s.wall_start,
            wall_end_us: wall_end,
            attrs: s.attrs,
            events: s.events,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ogsa_sim::SimDuration;

    #[test]
    fn nested_spans_share_a_trace_and_parent_correctly() {
        let tel = Telemetry::new(VirtualClock::new());
        {
            let root = tel.span(SpanKind::Client, "invoke");
            let root_id = root.id().unwrap();
            {
                let child = tel.span(SpanKind::Db, "db:get");
                assert_eq!(child.trace_id(), root.trace_id());
                let gchild = tel.span(SpanKind::Soap, "soap:encode");
                assert_eq!(gchild.trace_id(), root.trace_id());
                drop(gchild);
                drop(child);
            }
            assert_eq!(tel.current(), Some((root.trace_id().unwrap(), root_id)));
        }
        assert_eq!(tel.current(), None);
        let spans = tel.finished_spans();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "invoke").unwrap();
        let child = spans.iter().find(|s| s.name == "db:get").unwrap();
        let gchild = spans.iter().find(|s| s.name == "soap:encode").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(gchild.parent, Some(child.id));
        assert_eq!(root.trace.0, root.id.0, "trace id is the root span's id");
    }

    #[test]
    fn sibling_roots_get_distinct_traces() {
        let tel = Telemetry::new(VirtualClock::new());
        let a = tel.span(SpanKind::Client, "a");
        let ta = a.trace_id().unwrap();
        drop(a);
        let b = tel.span(SpanKind::Client, "b");
        assert_ne!(b.trace_id().unwrap(), ta);
    }

    #[test]
    fn spans_measure_virtual_time() {
        let clock = VirtualClock::new();
        let tel = Telemetry::new(clock.clone());
        {
            let mut s = tel.span(SpanKind::Db, "op");
            clock.advance(SimDuration::from_micros(250));
            s.event("halfway");
            clock.advance(SimDuration::from_micros(250));
        }
        let spans = tel.finished_spans();
        assert_eq!(spans[0].duration(), SimDuration::from_micros(500));
        assert_eq!(spans[0].events[0].at, SimInstant(250));
    }

    #[test]
    fn child_span_joins_a_remote_trace() {
        let tel = Telemetry::new(VirtualClock::new());
        let remote_trace = TraceId(99);
        let remote_parent = SpanId(7);
        {
            let s = tel.child_span(
                SpanKind::Delivery,
                "deliver",
                remote_trace,
                Some(remote_parent),
            );
            assert_eq!(tel.current(), Some((remote_trace, s.id().unwrap())));
            // Nested spans inherit the joined context.
            let inner = tel.span(SpanKind::Security, "verify");
            assert_eq!(inner.trace_id(), Some(remote_trace));
        }
        let spans = tel.finished_spans();
        assert_eq!(spans[1].parent, Some(remote_parent));
        assert_eq!(spans[0].parent, spans[1].id.into());
    }

    #[test]
    fn disabled_instance_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut s = tel.span(SpanKind::Client, "x");
        assert!(!s.is_recording());
        s.set_attr("k", "v");
        s.event("e");
        drop(s);
        assert_eq!(tel.span_count(), 0);
        assert_eq!(tel.current(), None);
    }

    #[test]
    fn take_spans_drains() {
        let tel = Telemetry::new(VirtualClock::new());
        tel.span(SpanKind::Other, "a").finish();
        assert_eq!(tel.take_spans().len(), 1);
        assert_eq!(tel.span_count(), 0);
    }

    #[test]
    fn capture_collects_spans_on_a_disabled_instance() {
        let tel = Telemetry::disabled();
        tel.begin_capture();
        {
            let root = tel.span(SpanKind::Server, "serve:request");
            assert!(root.is_recording(), "capture forces recording");
            let child = tel.span(SpanKind::Db, "db:get");
            assert_eq!(child.trace_id(), root.trace_id());
        }
        let captured = tel.end_capture();
        assert_eq!(captured.len(), 2);
        assert_eq!(tel.span_count(), 0, "global store stays empty");
        assert!(!tel.is_capturing());
        // After the capture ends the instance is silent again.
        tel.span(SpanKind::Other, "after").finish();
        assert!(tel.end_capture().is_empty());
        assert_eq!(tel.span_count(), 0);
    }

    #[test]
    fn capture_observes_without_diverting_on_an_enabled_instance() {
        let tel = Telemetry::new(VirtualClock::new());
        tel.begin_capture();
        tel.span(SpanKind::Other, "both").finish();
        let captured = tel.end_capture();
        assert_eq!(captured.len(), 1);
        assert_eq!(tel.span_count(), 1, "global store is fed as usual");
        assert_eq!(captured[0], tel.finished_spans()[0]);
    }

    #[test]
    fn captures_are_per_thread_and_per_instance() {
        let tel = Telemetry::disabled();
        tel.begin_capture();
        let tel2 = tel.clone();
        std::thread::spawn(move || {
            // Same instance, different thread: not capturing here.
            assert!(!tel2.is_capturing());
            tel2.span(SpanKind::Other, "elsewhere").finish();
        })
        .join()
        .unwrap();
        let other = Telemetry::disabled();
        other.span(SpanKind::Other, "other-instance").finish();
        assert!(tel.end_capture().is_empty());
    }

    #[test]
    fn wall_clock_stamps_only_when_enabled() {
        let tel = Telemetry::new(VirtualClock::new());
        tel.span(SpanKind::Other, "before").finish();
        tel.set_wall_clock(true);
        assert!(tel.wall_clock_enabled());
        tel.span(SpanKind::Other, "after").finish();
        let spans = tel.finished_spans();
        assert_eq!(spans[0].wall_start_us, None);
        assert_eq!(spans[0].wall_end_us, None);
        let (ws, we) = (
            spans[1].wall_start_us.expect("stamped"),
            spans[1].wall_end_us.expect("stamped"),
        );
        assert!(we >= ws);
        // Virtual time is untouched by wall stamping.
        assert_eq!(spans[1].start, spans[1].end);
    }

    #[test]
    fn context_stacks_are_per_thread() {
        let tel = Telemetry::new(VirtualClock::new());
        let _root = tel.span(SpanKind::Client, "main-thread");
        let tel2 = tel.clone();
        std::thread::spawn(move || {
            // A fresh thread sees no inherited context.
            assert_eq!(tel2.current(), None);
        })
        .join()
        .unwrap();
    }
}
