//! Span identifiers and finished-span records.
//!
//! Everything here is plain data timestamped on the **virtual clock**, so a
//! trace is a statement about simulated time, not about how fast the host
//! machine happened to run the simulation. IDs serialise as fixed-width
//! 16-hex-digit strings: the on-wire header size is invariant across runs
//! even when the IDs themselves differ, which keeps message byte counts —
//! and therefore every size-derived cost — reproducible.

use ogsa_sim::{SimDuration, SimInstant};

/// Identifies one causal tree (one top-level client interaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace. Unique per [`crate::Telemetry`]
/// instance, not just per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Fixed-width wire form (16 hex digits, zero-padded).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    pub fn from_hex(s: &str) -> Option<Self> {
        u64::from_str_radix(s.trim(), 16).ok().map(TraceId)
    }
}

impl SpanId {
    /// Fixed-width wire form (16 hex digits, zero-padded).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    pub fn from_hex(s: &str) -> Option<Self> {
        u64::from_str_radix(s.trim(), 16).ok().map(SpanId)
    }
}

/// What layer of the substrate a span measures. The component breakdowns in
/// `BENCH_*.json` are self-time aggregations over these kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// Client-side invoke (proxy object): the trace root for most traces.
    Client,
    /// Server-side container pipeline for one request.
    Server,
    /// Container dispatch + lifetime sweep.
    Dispatch,
    /// Service code proper.
    Service,
    /// WS-Security signing/verification and TLS handshakes.
    Security,
    /// An xmldb (Xindice stand-in) operation.
    Db,
    /// SOAP serialisation/parsing.
    Soap,
    /// Time on the simulated wire: connects, per-message overhead, bytes.
    Wire,
    /// One delivery attempt of a one-way (notification) message.
    Delivery,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Every kind, in a fixed order (the column order of breakdown reports).
    pub const ALL: [SpanKind; 10] = [
        SpanKind::Client,
        SpanKind::Server,
        SpanKind::Dispatch,
        SpanKind::Service,
        SpanKind::Security,
        SpanKind::Db,
        SpanKind::Soap,
        SpanKind::Wire,
        SpanKind::Delivery,
        SpanKind::Other,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Client => "client",
            SpanKind::Server => "server",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Service => "service",
            SpanKind::Security => "security",
            SpanKind::Db => "db",
            SpanKind::Soap => "soap",
            SpanKind::Wire => "wire",
            SpanKind::Delivery => "delivery",
            SpanKind::Other => "other",
        }
    }
}

/// A point event inside a span (an injected fault, a backoff sleep, a
/// redelivery, a dead-letter...).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    pub at: SimInstant,
    pub name: &'static str,
    pub attrs: Vec<(&'static str, String)>,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub name: &'static str,
    pub kind: SpanKind,
    pub start: SimInstant,
    pub end: SimInstant,
    /// Monotonic host-clock stamps ([`crate::wallclock::wall_now_us`]),
    /// populated only when [`crate::Telemetry::set_wall_clock`] is on.
    /// Deliberately **excluded** from every deterministic exporter
    /// ([`crate::export`]): the byte-identical same-seed JSONL/Chrome
    /// dumps are statements about virtual time only. Live-observability
    /// consumers (the flight recorder's `/debug/trace` dump) read them
    /// for wall-clock self-time attribution.
    pub wall_start_us: Option<u64>,
    pub wall_end_us: Option<u64>,
    pub attrs: Vec<(&'static str, String)>,
    pub events: Vec<SpanEvent>,
}

impl SpanRecord {
    /// Virtual time between start and end (saturating).
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// First attribute with the given key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True if any event carries this name.
    pub fn has_event(&self, name: &str) -> bool {
        self.events.iter().any(|e| e.name == name)
    }

    /// Wall-clock duration in microseconds, when both stamps are present.
    pub fn wall_duration_us(&self) -> Option<u64> {
        match (self.wall_start_us, self.wall_end_us) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_fixed_width_hex() {
        let t = TraceId(0x2a);
        assert_eq!(t.to_hex(), "000000000000002a");
        assert_eq!(t.to_hex().len(), 16);
        assert_eq!(TraceId::from_hex(&t.to_hex()), Some(t));
        let s = SpanId(u64::MAX);
        assert_eq!(SpanId::from_hex(&s.to_hex()), Some(s));
        assert_eq!(TraceId::from_hex("not hex"), None);
    }

    #[test]
    fn kind_strings_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in SpanKind::ALL {
            assert!(seen.insert(k.as_str()), "duplicate {:?}", k);
        }
    }

    #[test]
    fn record_duration_saturates() {
        let r = SpanRecord {
            trace: TraceId(1),
            id: SpanId(2),
            parent: None,
            name: "x",
            kind: SpanKind::Other,
            start: SimInstant(100),
            end: SimInstant(40),
            wall_start_us: None,
            wall_end_us: None,
            attrs: vec![("k", "v".into())],
            events: Vec::new(),
        };
        assert_eq!(r.duration(), SimDuration::ZERO);
        assert_eq!(r.attr("k"), Some("v"));
        assert_eq!(r.attr("missing"), None);
        assert!(!r.has_event("boom"));
        assert_eq!(r.wall_duration_us(), None);
        let timed = SpanRecord {
            wall_start_us: Some(10),
            wall_end_us: Some(35),
            ..r
        };
        assert_eq!(timed.wall_duration_us(), Some(25));
    }
}
