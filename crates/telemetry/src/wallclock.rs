//! Wall-clock latency instrumentation that coexists with virtual time.
//!
//! Everything in this module measures the **host clock**, never the
//! virtual one, and none of it feeds the paper-invariant figures: the
//! deterministic JSONL/metrics dumps are produced exclusively from
//! virtual-time state, so a run observed through this module is
//! byte-identical to one that is not.
//!
//! * [`bucket_of`]/[`bucket_floor`] — the log-bucket scheme shared with
//!   the load generator (power-of-two groups split into 32 sub-buckets,
//!   ≤ ~3% relative error, 2048 fixed buckets).
//! * [`WallHistogram`] — one **lock-free** histogram shard: plain relaxed
//!   atomics, no locks, no allocation after construction. Each serving
//!   worker owns one shard and records into it without ever synchronising
//!   with its siblings; shards are merged only at scrape time.
//! * [`ShardedWallHistogram`] — the per-worker shard set plus the
//!   scrape-time merge. Merging N shards is equivalent to having recorded
//!   every observation into a single global histogram (the counts are
//!   per-bucket sums), a property the test suite checks for arbitrary
//!   interleavings.
//! * [`ExemplarStore`] — latest slow-request exemplar per coarse
//!   Prometheus bucket, linking a histogram bucket to a flight-recorder
//!   trace.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// Sub-bucket bits of the log-bucket scheme: each power-of-two group is
/// split into `2^SUB_BITS` equal sub-buckets.
pub const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Fixed bucket count; everything above the last bucket clamps into it.
pub const WALL_BUCKETS: usize = 2048;

/// Coarse bucket upper bounds (microseconds) for the Prometheus
/// exposition of a wall-clock histogram; an implicit `+Inf` bucket
/// follows. Exemplars attach at this granularity.
pub const WALL_PROM_BUCKETS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Index of the log bucket holding `us`.
pub fn bucket_of(us: u64) -> usize {
    let v = us.max(1);
    let msb = 63 - v.leading_zeros() as u64;
    if msb <= SUB_BITS as u64 {
        v as usize
    } else {
        let shift = msb - SUB_BITS as u64;
        let sub = (v >> shift) & (SUB - 1);
        (((msb - SUB_BITS as u64) << SUB_BITS) + SUB + sub) as usize
    }
}

/// Smallest value mapping to log bucket `idx` (quantiles report this
/// floor, ≤ ~3% below the true value).
///
/// Saturates at `u64::MAX` for the tail of the fixed bucket range that no
/// real value can reach: `bucket_of` tops out at bucket 1919 (the group of
/// `u64::MAX`), but callers iterate indices up to [`WALL_BUCKETS`], and
/// the unsaturated shift `(SUB + sub) << g` overflows from group 59
/// (idx ≥ 1920) — a debug-build panic in scrape paths that walk the whole
/// bucket array.
pub fn bucket_floor(idx: usize) -> u64 {
    if idx < (2 * SUB as usize) {
        idx as u64
    } else {
        let g = ((idx >> SUB_BITS) - 1) as u32;
        let sub = (idx & (SUB as usize - 1)) as u64;
        let base = SUB + sub;
        // `base << g` fits iff the shift stays within base's leading
        // zeros; past that the true floor exceeds u64 — clamp.
        if g > base.leading_zeros() {
            u64::MAX
        } else {
            base << g
        }
    }
}

/// Index of the coarse Prometheus bucket holding `us`
/// (`WALL_PROM_BUCKETS_US.len()` = the `+Inf` bucket).
pub fn prom_bucket_of(us: u64) -> usize {
    WALL_PROM_BUCKETS_US
        .iter()
        .position(|&bound| us <= bound)
        .unwrap_or(WALL_PROM_BUCKETS_US.len())
}

/// Microseconds of monotonic wall time since the first call in this
/// process. Monotonic and cheap; used to stamp spans and exemplars.
pub fn wall_now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One lock-free wall-clock histogram shard. `record` is the hot path:
/// four relaxed atomic RMWs, no locks, no branches beyond the bucket
/// math. Cloning shares the shard.
#[derive(Debug)]
pub struct WallHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for WallHistogram {
    fn default() -> Self {
        WallHistogram {
            counts: (0..WALL_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl WallHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. Lock-free; safe from any thread.
    pub fn record(&self, us: u64) {
        self.counts[bucket_of(us).min(WALL_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state out (scrape time only — never on the
    /// request path).
    pub fn snapshot(&self) -> WallSnapshot {
        WallSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Per-worker shard set: worker `i` records into `shard(i)` with zero
/// cross-worker synchronisation; [`ShardedWallHistogram::merged`] folds
/// every shard into one snapshot at scrape time.
#[derive(Debug, Clone)]
pub struct ShardedWallHistogram {
    shards: Vec<Arc<WallHistogram>>,
}

impl ShardedWallHistogram {
    pub fn new(shards: usize) -> Self {
        ShardedWallHistogram {
            shards: (0..shards.max(1))
                .map(|_| Arc::new(WallHistogram::new()))
                .collect(),
        }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard worker `i` should record into (wraps past the end).
    pub fn shard(&self, i: usize) -> Arc<WallHistogram> {
        self.shards[i % self.shards.len()].clone()
    }

    /// Merge every shard into one snapshot. Bucket counts, totals, sums
    /// and maxima are all order-independent, so this equals a single
    /// global histogram fed the same observations in any interleaving.
    pub fn merged(&self) -> WallSnapshot {
        let mut out = WallSnapshot::empty();
        for s in &self.shards {
            out.merge(&s.snapshot());
        }
        out
    }
}

/// A point-in-time copy of a wall-clock histogram (one shard or a merge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallSnapshot {
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum_us: u64,
    pub max_us: u64,
}

impl WallSnapshot {
    pub fn empty() -> Self {
        WallSnapshot {
            counts: vec![0; WALL_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Fold another snapshot in (bucket-wise sums, max of maxima). The
    /// sum is modular, matching the shards' relaxed `fetch_add`: a merge
    /// of wrapped shard sums equals the wrapped global sum, rather than
    /// panicking in debug builds on extreme observations.
    pub fn merge(&mut self, other: &WallSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.wrapping_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Value at quantile `q` in [0, 1]: the floor of the bucket holding
    /// the q-th observation.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max_us
    }

    /// Cumulative counts per coarse Prometheus bound, plus the `+Inf`
    /// total as the last element.
    pub fn prom_cumulative(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(WALL_PROM_BUCKETS_US.len() + 1);
        let mut acc = 0u64;
        let mut idx = 0usize;
        for &bound in WALL_PROM_BUCKETS_US.iter() {
            while idx < self.counts.len() && bucket_floor(idx) <= bound {
                // A log bucket belongs to the coarse bound its *floor*
                // falls under; floors are exact for every coarse bound
                // below 2^SUB_BITS-scaled precision, and the ≤3% skew is
                // the histogram's documented resolution either way.
                acc += self.counts[idx];
                idx += 1;
            }
            out.push(acc);
        }
        out.push(self.count);
        out
    }
}

/// One retained slow-request reference attached to a histogram bucket:
/// enough to find the full span tree in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Flight-recorder sequence number of the retained trace.
    pub seq: u64,
    pub latency_us: u64,
    /// [`wall_now_us`] stamp at retention time.
    pub at_wall_us: u64,
}

/// Latest exemplar per coarse Prometheus bucket (including `+Inf`).
/// Written only for slow requests — off the common hot path — so a tiny
/// mutex per slot is fine.
#[derive(Debug, Default)]
pub struct ExemplarStore {
    slots: [Mutex<Option<Exemplar>>; WALL_PROM_BUCKETS_US.len() + 1],
}

impl ExemplarStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach `seq` as the exemplar for the bucket holding `latency_us`.
    pub fn note(&self, latency_us: u64, seq: u64) {
        *self.slots[prom_bucket_of(latency_us)].lock() = Some(Exemplar {
            seq,
            latency_us,
            at_wall_us: wall_now_us(),
        });
    }

    /// Current exemplar per bucket, `+Inf` last.
    pub fn snapshot(&self) -> Vec<Option<Exemplar>> {
        self.slots.iter().map(|s| *s.lock()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_with_tight_floors() {
        let mut last = 0;
        for v in [1u64, 2, 31, 32, 63, 64, 100, 1000, 65_535, 1 << 20, 1 << 40] {
            let idx = bucket_of(v);
            assert!(idx >= last, "bucket_of not monotone at {v}");
            last = idx;
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            assert!(
                (v - floor) as f64 <= v as f64 / 32.0 + 1.0,
                "floor {floor} too far below {v}"
            );
        }
    }

    #[test]
    fn extreme_values_record_without_panicking_or_aliasing() {
        let h = WallHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max_us, u64::MAX);
        // 0 clamps into the first real bucket; u64::MAX lands in the top
        // reachable bucket (1919), far from the 0 end — no aliasing.
        assert_ne!(bucket_of(0), bucket_of(u64::MAX));
        assert_eq!(bucket_of(u64::MAX), 1919);
        assert!(bucket_of(u64::MAX) < WALL_BUCKETS);
        // sum wraps (relaxed fetch_add is modular); the histogram must not
        // misreport count or buckets because of it.
        h.record(u64::MAX);
        assert_eq!(h.snapshot().count, 3);
    }

    #[test]
    fn top_bucket_round_trips_and_floor_saturates_past_it() {
        // The top reachable bucket round-trips exactly.
        let top = bucket_of(u64::MAX);
        let floor = bucket_floor(top);
        assert_eq!(bucket_of(floor), top);
        // Every index in the fixed range has a non-panicking floor, the
        // floors are monotone, and the unreachable tail saturates.
        let mut last = 0u64;
        for idx in 0..WALL_BUCKETS {
            let f = bucket_floor(idx);
            assert!(f >= last, "floor not monotone at {idx}");
            last = f;
        }
        assert_eq!(bucket_floor(WALL_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_floor(1920), u64::MAX, "first overflowing group");
        // The last non-saturated floor is the top bucket's.
        assert!(bucket_floor(1919) < u64::MAX);
    }

    #[test]
    fn shard_merge_equals_global() {
        let sharded = ShardedWallHistogram::new(4);
        let global = WallHistogram::new();
        // A spread of values round-robined across shards.
        for (i, us) in [3u64, 50, 999, 1_000, 12_345, 1 << 22, 7, 7, 7, 250_001]
            .iter()
            .cycle()
            .take(1000)
            .enumerate()
        {
            sharded.shard(i).record(*us);
            global.record(*us);
        }
        assert_eq!(sharded.merged(), global.snapshot());
    }

    #[test]
    fn merged_quantiles_match_single_histogram() {
        let sharded = ShardedWallHistogram::new(3);
        for i in 0..300u64 {
            sharded.shard(i as usize).record(100 + i);
        }
        let m = sharded.merged();
        assert_eq!(m.count, 300);
        assert!(m.quantile_us(0.5) >= 200 && m.quantile_us(0.5) <= 250);
        assert_eq!(m.max_us, 399);
    }

    #[test]
    fn prom_cumulative_is_monotone_and_totals() {
        let h = WallHistogram::new();
        for us in [10u64, 60, 600, 6_000, 60_000, 600_000, 6_000_000] {
            h.record(us);
        }
        let cum = h.snapshot().prom_cumulative();
        assert_eq!(cum.len(), WALL_PROM_BUCKETS_US.len() + 1);
        assert!(
            cum.windows(2).all(|w| w[0] <= w[1]),
            "not cumulative: {cum:?}"
        );
        assert_eq!(*cum.last().unwrap(), 7, "+Inf must count everything");
        // 10 ≤ 50, 60 ≤ 100, ..., 6_000_000 only in +Inf.
        assert_eq!(cum[0], 1);
        assert_eq!(cum[1], 2);
        assert_eq!(cum[WALL_PROM_BUCKETS_US.len() - 1], 6);
    }

    #[test]
    fn exemplars_land_in_their_bucket() {
        let store = ExemplarStore::new();
        store.note(40, 1); // bucket 0 (≤50)
        store.note(999, 2); // ≤1000
        store.note(30_000_000, 3); // +Inf
        let snap = store.snapshot();
        assert_eq!(snap[0].unwrap().seq, 1);
        assert_eq!(snap[prom_bucket_of(999)].unwrap().seq, 2);
        assert_eq!(snap[WALL_PROM_BUCKETS_US.len()].unwrap().seq, 3);
        assert_eq!(snap.iter().flatten().count(), 3);
    }

    #[test]
    fn wall_now_is_monotone() {
        let a = wall_now_us();
        let b = wall_now_us();
        assert!(b >= a);
    }
}
