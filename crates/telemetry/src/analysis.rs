//! Span-forest analysis: fold finished spans into per-kind *self time* —
//! the component breakdowns (db / security / wire / soap / ...) the paper's
//! Figures 2–6 report per operation.
//!
//! Self time is a span's duration minus the durations of its direct
//! children, so nested costs are counted exactly once: the X.509 verify
//! inside a server pipeline lands in `security`, not in `server`.

use std::collections::BTreeMap;
use std::collections::HashMap;

use ogsa_sim::SimDuration;

use crate::span::{SpanId, SpanKind, SpanRecord};

/// Per-kind self-time totals over a set of spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KindBreakdown {
    /// Summed self time per span kind (kinds with zero time are absent).
    pub self_time: BTreeMap<&'static str, SimDuration>,
    /// Summed duration of root spans (spans with no parent) — the
    /// end-to-end cost the components decompose.
    pub total: SimDuration,
    /// Number of root spans.
    pub roots: usize,
}

impl KindBreakdown {
    /// Self time for one kind (zero if absent).
    pub fn kind(&self, kind: SpanKind) -> SimDuration {
        self.self_time
            .get(kind.as_str())
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sum of all component self times.
    pub fn component_sum(&self) -> SimDuration {
        self.self_time.values().copied().sum()
    }
}

/// Fold a span forest into per-kind self time.
///
/// Works on any subset of spans: a child whose parent is not in the set is
/// treated as a root for `total` purposes only if it has no parent at all,
/// but its self time still contributes to its kind.
pub fn self_time_breakdown(spans: &[SpanRecord]) -> KindBreakdown {
    let mut child_time: HashMap<SpanId, SimDuration> = HashMap::new();
    for s in spans {
        if let Some(p) = s.parent {
            *child_time.entry(p).or_insert(SimDuration::ZERO) += s.duration();
        }
    }
    let mut out = KindBreakdown::default();
    for s in spans {
        let children = child_time.get(&s.id).copied().unwrap_or(SimDuration::ZERO);
        let self_time = s.duration().saturating_sub(children);
        if self_time > SimDuration::ZERO {
            *out.self_time
                .entry(s.kind.as_str())
                .or_insert(SimDuration::ZERO) += self_time;
        }
        if s.parent.is_none() {
            out.total += s.duration();
            out.roots += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceId;
    use ogsa_sim::SimInstant;

    fn rec(id: u64, parent: Option<u64>, kind: SpanKind, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace: TraceId(1),
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: "s",
            kind,
            start: SimInstant(start),
            end: SimInstant(end),
            wall_start_us: None,
            wall_end_us: None,
            attrs: Vec::new(),
            events: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        // root client [0,100] > server [10,90] > db [20,50] + security [50,80]
        let spans = vec![
            rec(1, None, SpanKind::Client, 0, 100),
            rec(2, Some(1), SpanKind::Server, 10, 90),
            rec(3, Some(2), SpanKind::Db, 20, 50),
            rec(4, Some(2), SpanKind::Security, 50, 80),
        ];
        let b = self_time_breakdown(&spans);
        assert_eq!(b.total, SimDuration(100));
        assert_eq!(b.roots, 1);
        assert_eq!(b.kind(SpanKind::Client), SimDuration(20));
        assert_eq!(b.kind(SpanKind::Server), SimDuration(20));
        assert_eq!(b.kind(SpanKind::Db), SimDuration(30));
        assert_eq!(b.kind(SpanKind::Security), SimDuration(30));
        assert_eq!(b.component_sum(), SimDuration(100));
    }

    #[test]
    fn same_kind_accumulates_and_overconsumed_parent_saturates() {
        let spans = vec![
            rec(1, None, SpanKind::Client, 0, 10),
            // Children sum past the parent: parent self time saturates to 0.
            rec(2, Some(1), SpanKind::Db, 0, 8),
            rec(3, Some(1), SpanKind::Db, 2, 10),
        ];
        let b = self_time_breakdown(&spans);
        assert_eq!(b.kind(SpanKind::Client), SimDuration::ZERO);
        assert_eq!(b.kind(SpanKind::Db), SimDuration(16));
    }

    #[test]
    fn empty_input_is_zero() {
        let b = self_time_breakdown(&[]);
        assert_eq!(b.total, SimDuration::ZERO);
        assert_eq!(b.roots, 0);
        assert!(b.self_time.is_empty());
    }
}
