//! Property tests for the lock-free wall-clock histogram shards: merging
//! per-worker shards must equal one global histogram fed the same
//! observations, for **any** assignment of observations to shards and any
//! interleaving — the correctness claim that lets `/metrics` merge lazily
//! at scrape time instead of synchronising workers on the hot path.

use ogsa_telemetry::prometheus::{parse_exposition, render_wall_histogram};
use ogsa_telemetry::{ShardedWallHistogram, WallHistogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_shards_equal_a_global_histogram(
        // (which shard records it, the observed latency) — the FULL u64
        // domain, 0 and u64::MAX included. The relaxed `fetch_add` sum
        // wraps modulo 2^64 on both sides identically, so wrapped sums
        // still compare equal; nothing may panic or alias buckets.
        obs in proptest::collection::vec((0usize..8, any::<u64>()), 0..400),
        shards in 1usize..8,
    ) {
        let sharded = ShardedWallHistogram::new(shards);
        let global = WallHistogram::new();
        for (worker, us) in &obs {
            sharded.shard(*worker).record(*us);
            global.record(*us);
        }
        prop_assert_eq!(sharded.merged(), global.snapshot());
    }

    #[test]
    fn merge_is_order_independent(
        obs in proptest::collection::vec(0u64..10_000_000, 1..200),
    ) {
        // Forward vs reverse feed order, different shard assignment: the
        // merged snapshot must be identical (counts are pure sums).
        let a = ShardedWallHistogram::new(4);
        for (i, us) in obs.iter().enumerate() {
            a.shard(i).record(*us);
        }
        let b = ShardedWallHistogram::new(3);
        for (i, us) in obs.iter().rev().enumerate() {
            b.shard(i * 7 + 1).record(*us);
        }
        prop_assert_eq!(a.merged(), b.merged());
    }

    #[test]
    fn merged_snapshot_renders_a_consistent_exposition(
        obs in proptest::collection::vec(0u64..5_000_000, 0..200),
    ) {
        let sharded = ShardedWallHistogram::new(4);
        for (i, us) in obs.iter().enumerate() {
            sharded.shard(i).record(*us);
        }
        let text = render_wall_histogram("wall_us", &[], &sharded.merged(), None);
        let exp = parse_exposition(&text).expect("exposition parses");
        exp.check_histograms().expect("cumulative + consistent");
        let count = exp.get("wall_us_count", &[]).expect("count sample");
        prop_assert_eq!(count.value as u64, obs.len() as u64);
    }

    #[test]
    fn quantiles_never_exceed_the_recorded_max(
        obs in proptest::collection::vec(1u64..50_000_000, 1..200),
        q_millis in 0u64..1001,
    ) {
        let q = q_millis as f64 / 1000.0;
        let h = WallHistogram::new();
        let mut max = 0;
        for us in &obs {
            h.record(*us);
            max = max.max(*us);
        }
        let snap = h.snapshot();
        prop_assert!(snap.quantile_us(q) <= max);
        prop_assert_eq!(snap.max_us, max);
    }
}
