//! The service programming model: what user code sees.

use std::sync::Arc;

use ogsa_addressing::{EndpointReference, MessageHeaders};
use ogsa_sim::{CostModel, VirtualClock};
use ogsa_soap::Fault;
use ogsa_xml::Element;
use ogsa_xmldb::Database;

use crate::client::ClientAgent;
use crate::lifetime::LifetimeManager;

/// One dispatched operation: the WS-Addressing action, the request body, the
/// full addressing headers, and — when the security policy signs messages —
/// the authenticated signer DN.
#[derive(Debug, Clone)]
pub struct Operation {
    pub action: String,
    pub body: Element,
    pub headers: MessageHeaders,
    /// Authenticated client DN (X.509 policy only).
    pub signer_dn: Option<String>,
}

impl Operation {
    /// The `ResourceID` reference property echoed in the headers — how both
    /// stacks identify the resource a request targets.
    pub fn resource_id(&self) -> Option<&str> {
        self.headers.resource_id()
    }

    /// The resource id, or a client fault naming the operation.
    pub fn require_resource_id(&self) -> Result<&str, Fault> {
        self.resource_id().ok_or_else(|| {
            Fault::client(format!(
                "operation {} requires a resource EPR (no ResourceID reference property)",
                self.action
            ))
        })
    }

    /// Last path segment of the action URI (`.../Get` → `Get`) — services
    /// dispatch on this.
    pub fn action_name(&self) -> &str {
        self.action
            .rsplit(['/', ':'])
            .next()
            .unwrap_or(&self.action)
    }
}

/// Everything a service implementation can reach: the host's storage, clock,
/// lifetime manager, and an outcall agent carrying the *service's* identity
/// (services in Grid-in-a-Box call each other — the "web service outcalls"
/// that dominate Figure 6).
#[derive(Clone)]
pub struct OperationContext {
    pub(crate) host: String,
    pub(crate) db: Database,
    pub(crate) clock: VirtualClock,
    pub(crate) model: Arc<CostModel>,
    pub(crate) lifetime: LifetimeManager,
    pub(crate) agent: ClientAgent,
    pub(crate) own_address: String,
}

impl OperationContext {
    /// The host this container runs on.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Host-local storage.
    pub fn db(&self) -> &Database {
        &self.db
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The container's lifetime-management component.
    pub fn lifetime(&self) -> &LifetimeManager {
        &self.lifetime
    }

    /// Outcall agent with this service's identity.
    pub fn agent(&self) -> &ClientAgent {
        &self.agent
    }

    /// The address this service is deployed at.
    pub fn own_address(&self) -> &str {
        &self.own_address
    }

    /// An EPR for a resource managed by this service.
    pub fn own_resource_epr(&self, resource_id: &str) -> EndpointReference {
        EndpointReference::resource(self.own_address.clone(), resource_id)
    }
}

/// A deployed web service: receives dispatched operations, returns a
/// response body or a fault.
pub trait WebService: Send + Sync {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault>;
}

/// Blanket impl so closures can be deployed directly in tests.
impl<F> WebService for F
where
    F: Fn(&Operation, &OperationContext) -> Result<Element, Fault> + Send + Sync,
{
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault> {
        self(op, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(action: &str) -> Operation {
        Operation {
            action: action.into(),
            body: Element::new("X"),
            headers: MessageHeaders::default(),
            signer_dn: None,
        }
    }

    #[test]
    fn action_name_takes_last_segment() {
        assert_eq!(op("http://x/y/Get").action_name(), "Get");
        assert_eq!(op("urn:wsrf:Destroy").action_name(), "Destroy");
        assert_eq!(op("Bare").action_name(), "Bare");
    }

    #[test]
    fn require_resource_id_faults_without_epr() {
        let o = op("urn:Get");
        let fault = o.require_resource_id().unwrap_err();
        assert!(fault.reason.contains("urn:Get"));
    }

    #[test]
    fn resource_id_reads_headers() {
        let target = EndpointReference::resource("http://h/s", "r-1");
        let mut o = op("urn:Get");
        o.headers = MessageHeaders::request(&target, "urn:Get", "m1");
        assert_eq!(o.resource_id(), Some("r-1"));
        assert_eq!(o.require_resource_id().unwrap(), "r-1");
    }
}
