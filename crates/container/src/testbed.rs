//! The testbed: everything the paper's two identically-configured machines
//! provided, in one factory object.

use std::collections::HashMap;
use std::sync::Arc;

use ogsa_security::{CertAuthority, CertStore, SecurityPolicy};
use ogsa_sim::{CostModel, DetRng, VirtualClock};
use ogsa_transport::Network;
use ogsa_xmldb::{BackendKind, Database, DbConfig, DurableBackend, DurableConfig, RecoveryReport};
use parking_lot::Mutex;

use crate::client::ClientAgent;
use crate::host::Container;
use crate::replication::ReplicaSet;

/// Owns the virtual clock, cost model, network, PKI, and per-host databases;
/// stamps out containers and client agents wired to all of them.
#[derive(Clone)]
pub struct Testbed {
    clock: VirtualClock,
    model: Arc<CostModel>,
    network: Network,
    cert_store: CertStore,
    ca: CertAuthority,
    rng: DetRng,
    backend: BackendKind,
    db_config: DbConfig,
    durable_cfg: Option<DurableConfig>,
    durables: Arc<Mutex<HashMap<String, Arc<DurableBackend>>>>,
    dbs: Arc<Mutex<HashMap<String, Database>>>,
}

impl Testbed {
    /// A testbed with the given cost model and storage backend.
    pub fn new(model: CostModel, backend: BackendKind) -> Self {
        Testbed::build(model, backend, false)
    }

    /// Like [`Testbed::new`] but with span recording disabled (metrics
    /// still record). Long wall-clock runs — the real-socket load
    /// generator in particular — would otherwise accumulate one span
    /// record per request, unbounded.
    pub fn new_quiet(model: CostModel, backend: BackendKind) -> Self {
        Testbed::build(model, backend, true)
    }

    fn build(model: CostModel, backend: BackendKind, quiet: bool) -> Self {
        let clock = VirtualClock::new();
        let model = Arc::new(model);
        let network = if quiet {
            Network::with_telemetry(
                clock.clone(),
                model.clone(),
                ogsa_telemetry::Telemetry::disabled(),
            )
        } else {
            Network::new(clock.clone(), model.clone())
        };
        let cert_store = CertStore::new();
        let ca = cert_store.authority("CN=UVA-Grid-CA,O=University of Virginia");
        Testbed {
            clock,
            model,
            network,
            cert_store,
            ca,
            rng: DetRng::default(),
            backend,
            db_config: DbConfig::default(),
            durable_cfg: None,
            durables: Arc::new(Mutex::new(HashMap::new())),
            dbs: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Reconfigure the per-host databases to use `shards` key shards — the
    /// knob the throughput harness sweeps. Must be set before the first call
    /// to [`Testbed::db`] for a host; already-built databases keep their
    /// shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.db_config = DbConfig { shards };
        self
    }

    /// The shard count freshly-built per-host databases will use.
    pub fn shards(&self) -> usize {
        self.db_config.shards
    }

    /// Back every per-host database with a crash-injectable durable store
    /// (WAL + snapshots, [`DurableBackend::sim`] media): the configuration
    /// the crash harness drives. Must be set before the first call to
    /// [`Testbed::db`] for a host. Virtual-time figures are unchanged —
    /// the durable backend reports the same calibrated cost profile.
    pub fn with_durable(mut self, cfg: DurableConfig) -> Self {
        self.durable_cfg = Some(cfg);
        self
    }

    /// The durable backend behind `host`'s database, when
    /// [`Testbed::with_durable`] is active and the database exists — arm
    /// crash points through its [`DurableBackend::sim_medium`].
    pub fn durable(&self, host: &str) -> Option<Arc<DurableBackend>> {
        self.durables.lock().get(host).cloned()
    }

    /// Kill and reboot `host`'s storage: every in-memory database state is
    /// discarded (exactly what a process crash destroys), the durable
    /// backend recovers from its WAL + snapshot, and a fresh database is
    /// repopulated from the recovered image. Containers built before the
    /// restart still hold the dead database — build new ones, as a real
    /// redeploy would. Returns `None` when the testbed is not durable or
    /// the host never had a database.
    pub fn restart_host(&self, host: &str) -> Option<RecoveryReport> {
        let backend = self.durable(host)?;
        self.dbs.lock().remove(host)?;
        let report = backend.recover();
        let db = self.db(host);
        backend.restore_into(&db);
        Some(report)
    }

    /// Discard `host`'s in-memory database and build a fresh one (same
    /// durable backend). The replication seams use this when a host's
    /// authoritative state changes wholesale — a promoted replica
    /// installing the converged image, a deposed primary truncating its
    /// split-brain tail — because merging into the stale in-memory state
    /// would resurrect deleted documents. Same caveat as
    /// [`Testbed::restart_host`]: containers built before the reset still
    /// hold the dead database.
    pub(crate) fn reset_host_db(&self, host: &str) -> Database {
        self.dbs.lock().remove(host);
        self.db(host)
    }

    /// The configuration all figures are regenerated under: calibrated 2005
    /// costs, Xindice-like disk storage.
    pub fn calibrated() -> Self {
        Testbed::new(CostModel::calibrated_2005(), BackendKind::SimDisk)
    }

    /// Zero-cost, in-memory testbed for functional tests.
    pub fn free() -> Self {
        Testbed::new(CostModel::free(), BackendKind::Memory)
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    pub fn network(&self) -> &Network {
        &self.network
    }

    pub fn cert_store(&self) -> &CertStore {
        &self.cert_store
    }

    pub fn ca(&self) -> &CertAuthority {
        &self.ca
    }

    pub fn rng(&self) -> &DetRng {
        &self.rng
    }

    /// The telemetry sink every component in this testbed reports into (it
    /// lives on the network, which everything already shares).
    pub fn telemetry(&self) -> &ogsa_telemetry::Telemetry {
        self.network.telemetry()
    }

    /// The database on `host` (one Xindice instance per machine; containers
    /// on the same host share it).
    ///
    /// The first build for a host registers a scrape-time collector on the
    /// shared [`MetricsRegistry`](ogsa_telemetry::MetricsRegistry): every
    /// `gather()` — and therefore every `/metrics` scrape of a serving tier
    /// sharing this telemetry — reports the host's live [`ogsa_xmldb::DbStats`]
    /// scalars (`db.reads`, `db.lock_contentions`, ...) and per-shard busy
    /// time (`db.shard_busy_us{host,shard}`) without the store pushing
    /// anything on its hot path.
    pub fn db(&self, host: &str) -> Database {
        self.dbs
            .lock()
            .entry(host.to_owned())
            .or_insert_with(|| {
                let backend = match self.durable_cfg {
                    Some(cfg) => BackendKind::Custom(
                        self.durables
                            .lock()
                            .entry(host.to_owned())
                            .or_insert_with(|| {
                                Arc::new(
                                    DurableBackend::sim(cfg)
                                        .with_telemetry(self.network.telemetry().clone()),
                                )
                            })
                            .clone(),
                    ),
                    None => self.backend.clone(),
                };
                let db = Database::with_config(
                    self.clock.clone(),
                    self.model.clone(),
                    backend,
                    self.network.telemetry().clone(),
                    self.db_config,
                );
                let stats_db = db.clone();
                let stats_host = host.to_owned();
                let shards = db.config().shards;
                self.network
                    .telemetry()
                    .metrics()
                    .register_collector(move |snap| {
                        let stats = stats_db.stats();
                        for (name, value) in stats.snapshot() {
                            snap.set_gauge(&format!("db.{name}"), &[("host", &stats_host)], value);
                        }
                        for (i, busy) in stats.shard_busy_snapshot(shards).into_iter().enumerate() {
                            snap.set_gauge(
                                "db.shard_busy_us",
                                &[("host", &stats_host), ("shard", &i.to_string())],
                                busy,
                            );
                        }
                    });
                db
            })
            .clone()
    }

    /// Replicate `primary`'s durable store to `replicas`: the primary's
    /// WAL is tapped by a [`Replicator`](ogsa_xmldb::Replicator) shipping
    /// framed records over the simulated network (judged by the armed
    /// [`FaultPlan`](ogsa_transport::FaultPlan) on `repl://{host}` edges,
    /// charging **zero** virtual time), with one
    /// [`ReplicaNode`](ogsa_xmldb::ReplicaNode) per replica host. Requires
    /// [`Testbed::with_durable`].
    ///
    /// The returned [`ReplicaSet`] owns the failover seams —
    /// [`ReplicaSet::promote_longest_acked`] when the fault plan partitions
    /// the primary, [`ReplicaSet::rejoin`] to truncate and readmit it.
    ///
    /// Registers a scrape-time collector publishing `repl.term`,
    /// `repl.quorum_acked_seq`, and per-host `repl.acked_seq` /
    /// `repl.lag_records` / `repl.reachable` gauges on every `gather()`;
    /// like the db stats gauges, these never appear in the deterministic
    /// `snapshot()`.
    pub fn with_replicas(&self, primary: &str, replicas: &[&str]) -> Arc<ReplicaSet> {
        let cfg = self
            .durable_cfg
            .expect("with_replicas requires with_durable (the WAL is what ships)");
        self.db(primary);
        let set = ReplicaSet::new(self.clone(), primary, replicas, cfg.fsync);
        let stats = set.clone();
        self.network
            .telemetry()
            .metrics()
            .register_collector(move |snap| {
                let repl = stats.replicator();
                snap.set_gauge("repl.term", &[], repl.term());
                snap.set_gauge("repl.quorum_acked_seq", &[], repl.quorum_acked_seq());
                snap.set_gauge(
                    "repl.acked_seq",
                    &[("host", repl.self_id())],
                    repl.primary_acked_seq(),
                );
                let last = repl.last_seq();
                for (host, _matched, acked, reachable) in repl.member_status() {
                    snap.set_gauge("repl.acked_seq", &[("host", &host)], acked);
                    snap.set_gauge(
                        "repl.lag_records",
                        &[("host", &host)],
                        last.saturating_sub(acked),
                    );
                    snap.set_gauge("repl.reachable", &[("host", &host)], u64::from(reachable));
                }
            });
        set
    }

    /// A container on `host` under `policy`, with its own service identity.
    pub fn container(&self, host: &str, policy: SecurityPolicy) -> Container {
        let identity = self.ca.issue(&format!("CN=container,O=VO,OU={host}"));
        Container::new(
            host.to_owned(),
            policy,
            self.network.clone(),
            self.db(host),
            self.clock.clone(),
            self.model.clone(),
            identity,
            self.cert_store.clone(),
        )
    }

    /// A client agent on `host` with a freshly-issued identity for `dn`.
    pub fn client(&self, host: &str, dn: &str, policy: SecurityPolicy) -> ClientAgent {
        let identity = self.ca.issue(dn);
        ClientAgent::new(
            self.network.port(host),
            identity,
            self.cert_store.clone(),
            policy,
            self.clock.clone(),
            self.model.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_host_shares_a_database() {
        let tb = Testbed::free();
        tb.db("host-a")
            .collection("c")
            .insert("k", ogsa_xml::Element::new("d"))
            .unwrap();
        assert!(tb.db("host-a").collection("c").get("k").is_some());
        assert!(tb.db("host-b").collection("c").get("k").is_none());
    }

    #[test]
    fn containers_share_clock_and_network() {
        let tb = Testbed::free();
        let a = tb.container("host-a", SecurityPolicy::None);
        let b = tb.container("host-b", SecurityPolicy::None);
        tb.clock().advance(ogsa_sim::SimDuration::from_micros(5));
        assert_eq!(a.clock().now(), b.clock().now());
    }

    #[test]
    fn shard_knob_reaches_the_per_host_database() {
        let tb = Testbed::free().with_shards(2);
        assert_eq!(tb.shards(), 2);
        assert_eq!(tb.db("host-a").config().shards, 2);
        // Default testbeds keep the default shard count.
        assert_eq!(
            Testbed::free().db("host-a").config().shards,
            ogsa_xmldb::DEFAULT_SHARDS
        );
    }

    #[test]
    fn quiet_testbed_records_metrics_but_no_spans() {
        let tb = Testbed::new_quiet(CostModel::free(), BackendKind::Memory);
        assert!(!tb.telemetry().is_enabled());
        {
            let _s = tb
                .telemetry()
                .span(ogsa_telemetry::SpanKind::Other, "probe");
        }
        assert_eq!(tb.telemetry().span_count(), 0);
        tb.telemetry().metrics().inc("probe.hits", &[]);
        assert_eq!(tb.telemetry().metrics().counter("probe.hits", &[]), 1);
    }

    #[test]
    fn durable_testbed_restarts_a_host_without_losing_fsynced_writes() {
        let tb = Testbed::free().with_durable(DurableConfig::default());
        let doc = |v: i64| {
            ogsa_xml::Element::new("r")
                .with_child(ogsa_xml::Element::text_element("v", v.to_string()))
        };
        tb.db("host-a").collection("c").insert("k", doc(7)).unwrap();
        assert!(tb.durable("host-a").is_some());
        assert!(tb.durable("host-b").is_none(), "no db built yet");

        let report = tb.restart_host("host-a").unwrap();
        assert_eq!(report.docs, 1);
        assert_eq!(
            tb.db("host-a")
                .collection("c")
                .get("k")
                .unwrap()
                .child_parse::<i64>("v"),
            Some(7),
            "a per-write-fsynced insert survives the restart"
        );
        // wal.* telemetry flows into the shared metrics registry.
        assert!(tb.telemetry().metrics().counter("wal.appends", &[]) >= 1);
        assert_eq!(tb.telemetry().metrics().counter("wal.recoveries", &[]), 1);
    }

    #[test]
    fn restart_of_an_unknown_or_non_durable_host_is_none() {
        let tb = Testbed::free();
        tb.db("host-a");
        assert!(tb.restart_host("host-a").is_none(), "not durable");
        let tb = Testbed::free().with_durable(DurableConfig::default());
        assert!(tb.restart_host("ghost").is_none(), "no database yet");
    }

    #[test]
    fn db_stats_flow_into_gathered_metrics_per_host_and_shard() {
        let tb = Testbed::calibrated();
        let db = tb.db("host-a");
        let c = db.collection("c");
        c.insert("k", ogsa_xml::Element::new("d")).unwrap();
        c.get("k");

        let snap = tb.telemetry().metrics().gather();
        assert!(snap.gauge("db.inserts{host=host-a}") >= 1);
        assert!(snap.gauge("db.reads{host=host-a}") >= 1);
        // Contention scalar is present even when never contended.
        assert_eq!(snap.gauge("db.lock_contentions{host=host-a}"), 0);

        // Per-shard busy gauges partition the store's total busy time.
        let per_shard: u64 = (0..db.config().shards)
            .map(|i| snap.gauge(&format!("db.shard_busy_us{{host=host-a,shard={i}}}")))
            .sum();
        assert!(per_shard > 0, "calibrated inserts charge shard busy time");
        assert_eq!(per_shard, db.stats().total_busy_us());

        // The deterministic snapshot stays gauge-free: collectors run only
        // on gather(), so figure regeneration is unaffected.
        assert!(tb.telemetry().metrics().snapshot().gauges.is_empty());
    }

    #[test]
    fn client_identities_carry_the_requested_dn() {
        let tb = Testbed::free();
        let c = tb.client("host-b", "CN=bob,O=VO", SecurityPolicy::None);
        assert_eq!(c.dn(), "CN=bob,O=VO");
    }
}
