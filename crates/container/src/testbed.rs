//! The testbed: everything the paper's two identically-configured machines
//! provided, in one factory object.

use std::collections::HashMap;
use std::sync::Arc;

use ogsa_security::{CertAuthority, CertStore, SecurityPolicy};
use ogsa_sim::{CostModel, DetRng, VirtualClock};
use ogsa_transport::Network;
use ogsa_xmldb::{BackendKind, Database, DbConfig};
use parking_lot::Mutex;

use crate::client::ClientAgent;
use crate::host::Container;

/// Owns the virtual clock, cost model, network, PKI, and per-host databases;
/// stamps out containers and client agents wired to all of them.
#[derive(Clone)]
pub struct Testbed {
    clock: VirtualClock,
    model: Arc<CostModel>,
    network: Network,
    cert_store: CertStore,
    ca: CertAuthority,
    rng: DetRng,
    backend: BackendKind,
    db_config: DbConfig,
    dbs: Arc<Mutex<HashMap<String, Database>>>,
}

impl Testbed {
    /// A testbed with the given cost model and storage backend.
    pub fn new(model: CostModel, backend: BackendKind) -> Self {
        Testbed::build(model, backend, false)
    }

    /// Like [`Testbed::new`] but with span recording disabled (metrics
    /// still record). Long wall-clock runs — the real-socket load
    /// generator in particular — would otherwise accumulate one span
    /// record per request, unbounded.
    pub fn new_quiet(model: CostModel, backend: BackendKind) -> Self {
        Testbed::build(model, backend, true)
    }

    fn build(model: CostModel, backend: BackendKind, quiet: bool) -> Self {
        let clock = VirtualClock::new();
        let model = Arc::new(model);
        let network = if quiet {
            Network::with_telemetry(
                clock.clone(),
                model.clone(),
                ogsa_telemetry::Telemetry::disabled(),
            )
        } else {
            Network::new(clock.clone(), model.clone())
        };
        let cert_store = CertStore::new();
        let ca = cert_store.authority("CN=UVA-Grid-CA,O=University of Virginia");
        Testbed {
            clock,
            model,
            network,
            cert_store,
            ca,
            rng: DetRng::default(),
            backend,
            db_config: DbConfig::default(),
            dbs: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Reconfigure the per-host databases to use `shards` key shards — the
    /// knob the throughput harness sweeps. Must be set before the first call
    /// to [`Testbed::db`] for a host; already-built databases keep their
    /// shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.db_config = DbConfig { shards };
        self
    }

    /// The shard count freshly-built per-host databases will use.
    pub fn shards(&self) -> usize {
        self.db_config.shards
    }

    /// The configuration all figures are regenerated under: calibrated 2005
    /// costs, Xindice-like disk storage.
    pub fn calibrated() -> Self {
        Testbed::new(CostModel::calibrated_2005(), BackendKind::SimDisk)
    }

    /// Zero-cost, in-memory testbed for functional tests.
    pub fn free() -> Self {
        Testbed::new(CostModel::free(), BackendKind::Memory)
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    pub fn network(&self) -> &Network {
        &self.network
    }

    pub fn cert_store(&self) -> &CertStore {
        &self.cert_store
    }

    pub fn ca(&self) -> &CertAuthority {
        &self.ca
    }

    pub fn rng(&self) -> &DetRng {
        &self.rng
    }

    /// The telemetry sink every component in this testbed reports into (it
    /// lives on the network, which everything already shares).
    pub fn telemetry(&self) -> &ogsa_telemetry::Telemetry {
        self.network.telemetry()
    }

    /// The database on `host` (one Xindice instance per machine; containers
    /// on the same host share it).
    pub fn db(&self, host: &str) -> Database {
        self.dbs
            .lock()
            .entry(host.to_owned())
            .or_insert_with(|| {
                Database::with_config(
                    self.clock.clone(),
                    self.model.clone(),
                    self.backend.clone(),
                    self.network.telemetry().clone(),
                    self.db_config,
                )
            })
            .clone()
    }

    /// A container on `host` under `policy`, with its own service identity.
    pub fn container(&self, host: &str, policy: SecurityPolicy) -> Container {
        let identity = self.ca.issue(&format!("CN=container,O=VO,OU={host}"));
        Container::new(
            host.to_owned(),
            policy,
            self.network.clone(),
            self.db(host),
            self.clock.clone(),
            self.model.clone(),
            identity,
            self.cert_store.clone(),
        )
    }

    /// A client agent on `host` with a freshly-issued identity for `dn`.
    pub fn client(&self, host: &str, dn: &str, policy: SecurityPolicy) -> ClientAgent {
        let identity = self.ca.issue(dn);
        ClientAgent::new(
            self.network.port(host),
            identity,
            self.cert_store.clone(),
            policy,
            self.clock.clone(),
            self.model.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_host_shares_a_database() {
        let tb = Testbed::free();
        tb.db("host-a")
            .collection("c")
            .insert("k", ogsa_xml::Element::new("d"))
            .unwrap();
        assert!(tb.db("host-a").collection("c").get("k").is_some());
        assert!(tb.db("host-b").collection("c").get("k").is_none());
    }

    #[test]
    fn containers_share_clock_and_network() {
        let tb = Testbed::free();
        let a = tb.container("host-a", SecurityPolicy::None);
        let b = tb.container("host-b", SecurityPolicy::None);
        tb.clock().advance(ogsa_sim::SimDuration::from_micros(5));
        assert_eq!(a.clock().now(), b.clock().now());
    }

    #[test]
    fn shard_knob_reaches_the_per_host_database() {
        let tb = Testbed::free().with_shards(2);
        assert_eq!(tb.shards(), 2);
        assert_eq!(tb.db("host-a").config().shards, 2);
        // Default testbeds keep the default shard count.
        assert_eq!(
            Testbed::free().db("host-a").config().shards,
            ogsa_xmldb::DEFAULT_SHARDS
        );
    }

    #[test]
    fn quiet_testbed_records_metrics_but_no_spans() {
        let tb = Testbed::new_quiet(CostModel::free(), BackendKind::Memory);
        assert!(!tb.telemetry().is_enabled());
        {
            let _s = tb
                .telemetry()
                .span(ogsa_telemetry::SpanKind::Other, "probe");
        }
        assert_eq!(tb.telemetry().span_count(), 0);
        tb.telemetry().metrics().inc("probe.hits", &[]);
        assert_eq!(tb.telemetry().metrics().counter("probe.hits", &[]), 1);
    }

    #[test]
    fn client_identities_carry_the_requested_dn() {
        let tb = Testbed::free();
        let c = tb.client("host-b", "CN=bob,O=VO", SecurityPolicy::None);
        assert_eq!(c.dn(), "CN=bob,O=VO");
    }
}
