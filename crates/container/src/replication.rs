//! Multi-host replication seams for the testbed: the [`NetFabric`] carries
//! replication traffic across the simulated [`Network`] (judged by the
//! PR-1 [`FaultPlan`] machinery, charged **zero** virtual time), and the
//! [`ReplicaSet`] owns the failover choreography — promote the
//! longest-acked survivor when the fault plan partitions the primary,
//! rebuild the promoted host's database from the converged image, truncate
//! the deposed primary's unacked tail when it rejoins.
//!
//! Replication deliberately does not ride [`ogsa_transport::Port::call`]:
//! a port call advances the virtual clock (connect, SOAP encode, RTT), so
//! shipping WAL records through it would shift every regenerated figure
//! the moment replication was enabled. [`Network::judge_raw`] evaluates
//! the armed fault plan on dedicated `repl://{host}` edges instead —
//! partitions and drops hit the stream with the same seeded schedule
//! machinery, while virtual-time dumps stay byte-identical with
//! replication on or off.

use std::collections::HashMap;
use std::sync::Arc;

use ogsa_transport::Network;
use ogsa_xmldb::repl::{
    promote, PromoteError, ReplConfig, ReplFabric, ReplicaNode, Replicator, ShipError,
};
use ogsa_xmldb::FsyncPolicy;
use parking_lot::Mutex;

use crate::testbed::Testbed;

/// [`ReplFabric`] over the simulated network: local replica nodes addressed
/// by host name, every delivery judged by the armed fault plan.
pub struct NetFabric {
    network: Network,
    nodes: Mutex<HashMap<String, Arc<ReplicaNode>>>,
}

impl NetFabric {
    pub fn new(network: Network) -> Arc<NetFabric> {
        Arc::new(NetFabric {
            network,
            nodes: Mutex::new(HashMap::new()),
        })
    }

    pub fn register(&self, host: &str, node: Arc<ReplicaNode>) {
        self.nodes.lock().insert(host.to_owned(), node);
    }

    pub fn node(&self, host: &str) -> Option<Arc<ReplicaNode>> {
        self.nodes.lock().get(host).cloned()
    }
}

impl ReplFabric for NetFabric {
    fn deliver(&self, from: &str, to: &str, request: &[u8]) -> Result<Vec<u8>, ShipError> {
        let decision = self.network.judge_raw(from, to);
        if decision.partitioned {
            return Err(ShipError::Unreachable);
        }
        if decision.drop {
            return Err(ShipError::Dropped);
        }
        let node = self.nodes.lock().get(to).cloned();
        let Some(node) = node else {
            return Err(ShipError::Unreachable);
        };
        if decision.garble {
            // One deterministic bit flipped mid-request — the CRC framing
            // downstream turns this into a Malformed response and a resend.
            let mut garbled = request.to_vec();
            let i = garbled.len() / 2;
            garbled[i] ^= 0x10;
            return Ok(node.handle(&garbled));
        }
        Ok(node.handle(request))
    }
}

/// One replicated database: a primary host (whose [`DurableBackend`]'s WAL
/// is tapped by a [`Replicator`]) and N replica hosts holding
/// [`ReplicaNode`]s, all shipping over a [`NetFabric`].
///
/// [`DurableBackend`]: ogsa_xmldb::DurableBackend
pub struct ReplicaSet {
    testbed: Testbed,
    fabric: Arc<NetFabric>,
    quorum: usize,
    total: usize,
    fsync: FsyncPolicy,
    inner: Mutex<SetInner>,
}

struct SetInner {
    replicator: Arc<Replicator>,
    /// Replica hosts (primary excluded), in registration order.
    members: Vec<(String, Arc<ReplicaNode>)>,
}

impl ReplicaSet {
    pub(crate) fn new(
        testbed: Testbed,
        primary: &str,
        replicas: &[&str],
        fsync: FsyncPolicy,
    ) -> Arc<ReplicaSet> {
        let fabric = NetFabric::new(testbed.network().clone());
        let mut members = Vec::new();
        for host in replicas {
            let node = ReplicaNode::new(fsync);
            fabric.register(host, node.clone());
            members.push(((*host).to_owned(), node));
        }
        let total = replicas.len() + 1;
        let cfg = ReplConfig::majority(total);
        let quorum = cfg.quorum;
        let replicator = Arc::new(Replicator::new(primary, replicas, fabric.clone(), cfg));
        let backend = testbed
            .durable(primary)
            .expect("with_replicas requires a durable testbed and a built primary db");
        backend.set_observer(replicator.clone());
        Arc::new(ReplicaSet {
            testbed,
            fabric,
            quorum,
            total,
            fsync,
            inner: Mutex::new(SetInner {
                replicator,
                members,
            }),
        })
    }

    /// The current primary's replicator.
    pub fn replicator(&self) -> Arc<Replicator> {
        self.inner.lock().replicator.clone()
    }

    /// The current primary host.
    pub fn primary_host(&self) -> String {
        self.inner.lock().replicator.self_id().to_owned()
    }

    /// The replica node on `host`, if it is currently a replica.
    pub fn node(&self, host: &str) -> Option<Arc<ReplicaNode>> {
        self.fabric.node(host)
    }

    pub fn fabric(&self) -> &Arc<NetFabric> {
        &self.fabric
    }

    /// Replica hosts (current primary excluded).
    pub fn member_hosts(&self) -> Vec<String> {
        self.inner
            .lock()
            .members
            .iter()
            .map(|(h, _)| h.clone())
            .collect()
    }

    /// Re-ship to every member that fell behind (a healed partition, a
    /// recovered replica). Returns the hosts that are fully caught up.
    pub fn catch_up_all(&self) -> Vec<String> {
        let (repl, hosts) = {
            let inner = self.inner.lock();
            (
                inner.replicator.clone(),
                inner
                    .members
                    .iter()
                    .map(|(h, _)| h.clone())
                    .collect::<Vec<_>>(),
            )
        };
        hosts.into_iter().filter(|h| repl.catch_up(h)).collect()
    }

    /// Fail over: promote the member holding the longest acked prefix (the
    /// quorum-intersection winner) to a new term. The promoted host's
    /// database is rebuilt from the converged image, the old primary is
    /// demoted in place (it keeps serving its in-memory state, deposed from
    /// shipping), and every remaining member is truncated to the promotion
    /// point and caught up. Returns the new primary host.
    ///
    /// Call this when the fault plan has partitioned the primary; survivors
    /// are the current members (the old primary is not consulted).
    pub fn promote_longest_acked(&self) -> Result<String, PromoteError> {
        let mut inner = self.inner.lock();
        let promotee = inner
            .members
            .iter()
            .max_by_key(|(_, n)| n.acked_seq())
            .map(|(h, _)| h.clone())
            .ok_or(PromoteError::TooFewSurvivors { have: 0, need: 1 })?;
        let new_repl = Arc::new(promote(
            &promotee,
            &inner.members,
            self.total,
            self.fabric.clone(),
            ReplConfig {
                quorum: self.quorum,
                max_retries: 8,
            },
        )?);

        // The deposed primary stops tapping its WAL; its host keeps serving
        // from memory until it rejoins.
        let old_primary = inner.replicator.self_id().to_owned();
        if let Some(backend) = self.testbed.durable(&old_primary) {
            backend.clear_observer();
        }

        // The promoted host graduates from replica to primary: its database
        // is rebuilt from the converged image and its durable backend taps
        // the new replicator.
        let db = self.testbed.reset_host_db(&promotee);
        let backend = self
            .testbed
            .durable(&promotee)
            .expect("durable testbed invariant");
        assert!(
            backend.install_image(new_repl.image()),
            "promoted host failed to persist the converged image"
        );
        backend.restore_into(&db);
        backend.set_observer(new_repl.clone());

        inner.members.retain(|(h, _)| h != &promotee);
        inner.replicator = new_repl;
        Ok(promotee)
    }

    /// The deposed primary rejoins as a replica: its surviving history
    /// (acked prefix plus whatever synced before the partition) becomes a
    /// [`ReplicaNode`], the new primary truncates its unacked divergent
    /// tail and catches it up, and the host's database is rebuilt from the
    /// truncated image — the split-brain writes vanish from the host, as
    /// they must.
    pub fn rejoin(&self, old_primary: &Arc<Replicator>) -> bool {
        let host = old_primary.self_id().to_owned();
        let node = old_primary.to_node(self.fsync);
        self.fabric.register(&host, node.clone());
        let (repl, already) = {
            let inner = self.inner.lock();
            (
                inner.replicator.clone(),
                inner.members.iter().any(|(h, _)| h == &host),
            )
        };
        repl.admit(&host);
        let caught_up = repl.catch_up(&host);
        if caught_up {
            if let Some(backend) = self.testbed.durable(&host) {
                assert!(
                    backend.install_image(node.image()),
                    "rejoined host failed to persist the truncated history"
                );
                backend.restore_into(&self.testbed.reset_host_db(&host));
            }
            if !already {
                self.inner.lock().members.push((host, node));
            }
        }
        caught_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::Testbed;
    use ogsa_sim::SimInstant;
    use ogsa_transport::FaultPlan;
    use ogsa_xml::Element;
    use ogsa_xmldb::DurableConfig;

    const P: &str = "host-p";
    const R1: &str = "host-r1";
    const R2: &str = "host-r2";

    fn doc(v: i64) -> Element {
        Element::new("r").with_child(Element::text_element("v", v.to_string()))
    }

    fn durable_free() -> Testbed {
        Testbed::free().with_durable(DurableConfig::default())
    }

    #[test]
    fn writes_ship_to_replicas_and_gauges_flow_on_gather() {
        let tb = durable_free();
        let set = tb.with_replicas(P, &[R1, R2]);
        let c = tb.db(P).collection("c");
        for i in 0..5 {
            c.insert(&format!("k{i}"), doc(i)).unwrap();
        }
        assert_eq!(set.replicator().quorum_acked_seq(), 5);
        for host in [R1, R2] {
            assert_eq!(set.node(host).unwrap().acked_seq(), 5);
        }
        let snap = tb.telemetry().metrics().gather();
        assert_eq!(snap.gauge("repl.term"), 1);
        assert_eq!(snap.gauge("repl.quorum_acked_seq"), 5);
        assert_eq!(snap.gauge("repl.acked_seq{host=host-p}"), 5);
        assert_eq!(snap.gauge("repl.acked_seq{host=host-r1}"), 5);
        assert_eq!(snap.gauge("repl.lag_records{host=host-r1}"), 0);
        assert_eq!(snap.gauge("repl.reachable{host=host-r2}"), 1);
        // The deterministic snapshot stays gauge-free: replication stats
        // are scrape-time only, so figure regeneration is unaffected.
        assert!(tb.telemetry().metrics().snapshot().gauges.is_empty());
    }

    #[test]
    fn fault_plan_partition_fails_over_and_rejoins_without_split_brain() {
        let tb = durable_free();
        let set = tb.with_replicas(P, &[R1, R2]);
        let c = tb.db(P).collection("c");
        for i in 0..4 {
            c.insert(&format!("k{i}"), doc(i)).unwrap();
        }

        // The PR-1 fault plan partitions the primary from both replicas.
        tb.network().set_fault_plan(
            FaultPlan::seeded(11)
                .with_partition(P, R1, SimInstant(0), SimInstant(u64::MAX))
                .with_partition(P, R2, SimInstant(0), SimInstant(u64::MAX)),
        );
        // Fsynced locally, but no quorum ever sees it: the zombie write.
        c.insert("zombie", doc(99)).unwrap();
        let old_repl = set.replicator();
        assert_eq!(old_repl.quorum_acked_seq(), 4);
        let snap = tb.telemetry().metrics().gather();
        assert_eq!(snap.gauge("repl.reachable{host=host-r1}"), 0);
        assert_eq!(snap.gauge("repl.lag_records{host=host-r1}"), 1);

        let new_primary = set.promote_longest_acked().unwrap();
        assert!([R1, R2].contains(&new_primary.as_str()));
        assert_eq!(set.primary_host(), new_primary);
        assert_eq!(set.replicator().term(), 2);
        assert!(set.replicator().promotion_seq() >= 4);

        // The promoted host's database serves the converged history — and
        // never saw the zombie.
        let pdb = tb.db(&new_primary);
        assert!(pdb.collection("c").get("k3").is_some());
        assert!(pdb.collection("c").get("zombie").is_none());
        // Writes keep flowing under the new term.
        pdb.collection("c").insert("k4", doc(4)).unwrap();
        assert_eq!(set.replicator().quorum_acked_seq(), 5);

        // Heal; the deposed primary rejoins, truncating its zombie tail.
        tb.network().clear_fault_plan();
        assert!(set.rejoin(&old_repl));
        let odb = tb.db(P).collection("c");
        assert!(odb.get("zombie").is_none(), "split-brain write truncated");
        assert!(
            odb.get("k4").is_some(),
            "caught up past the promotion point"
        );
        assert_eq!(set.member_hosts().len(), 2);
        assert_eq!(set.catch_up_all().len(), 2);
        // Every member holds the new primary's exact history.
        let converged = ogsa_xmldb::encode_store(&set.replicator().image());
        for host in set.member_hosts() {
            assert_eq!(set.node(&host).unwrap().encoded_image(), converged);
        }
    }

    /// The CI replication gate's core claim, as a test: enabling
    /// replication changes no virtual-time figure and shifts no SOAP fault
    /// schedule — same workload, same seed, byte-identical clock and
    /// injected-fault counts with and without replicas.
    #[test]
    fn virtual_time_and_fault_schedule_are_identical_with_replication_on() {
        let run = |replicate: bool| {
            let tb = Testbed::new(
                ogsa_sim::CostModel::calibrated_2005(),
                ogsa_xmldb::BackendKind::SimDisk,
            )
            .with_durable(DurableConfig::default());
            let set = replicate.then(|| tb.with_replicas(P, &[R1, R2]));
            tb.network()
                .set_fault_plan(FaultPlan::seeded(42).with_drops(0.3));
            let container = tb.container(P, ogsa_security::SecurityPolicy::None);
            let epr = container.deploy(
                "/services/Echo",
                Arc::new(
                    |op: &crate::service::Operation,
                     _ctx: &crate::service::OperationContext|
                     -> Result<Element, ogsa_soap::Fault> {
                        Ok(Element::new("EchoResponse").with_text(op.body.text()))
                    },
                ) as Arc<dyn crate::service::WebService>,
            );
            let client = tb
                .client(
                    "host-client",
                    "CN=alice",
                    ogsa_security::SecurityPolicy::None,
                )
                .with_retry(ogsa_transport::RetryPolicy::default_call(7).with_max_attempts(10));
            let c = tb.db(P).collection("c");
            for i in 0..10 {
                c.insert(&format!("k{i}"), doc(i)).unwrap();
                client
                    .invoke(&epr, "urn:test/Ping", Element::new("In"))
                    .expect("retries ride out the drops");
            }
            if let Some(set) = &set {
                assert_eq!(set.replicator().quorum_acked_seq(), 10);
            }
            (
                tb.clock().now(),
                tb.network().stats().injected_drops(),
                tb.network().stats().retries(),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
