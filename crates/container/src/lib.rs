//! # ogsa-container
//!
//! The resource-aware container of the paper's Figure 1, shared — exactly as
//! in the paper — by both software stacks:
//!
//! ```text
//!   Client ──request──▶ Dispatch ─▶ Security/Policy Handler ─▶ user code
//!                          │                │                     │
//!                          ▼                ▼                     ▼
//!                   Lifetime Mgmt     (verify/sign)            Storage
//!                          ▲
//!                 Notification/Eventing producer/consumer (independent)
//! ```
//!
//! A request enters the container, the dispatch mechanism routes it to the
//! correct service, the security/policy handler authenticates the client and
//! verifies signatures (WSE's role in the paper), the service code runs with
//! its state loaded from storage, the response passes back through the
//! security handler to be signed, and the lifetime-management component
//! tracks resources with scheduled termination times.
//!
//! [`Testbed`] stands in for the paper's pair of identically-configured
//! machines: it owns the virtual clock, cost model, simulated network, and
//! certificate authority, and stamps out [`Container`]s (one per host) and
//! [`ClientAgent`]s.

pub mod client;
pub mod host;
pub mod lifetime;
pub mod replication;
pub mod service;
pub mod testbed;

pub use client::{ClientAgent, InvokeError};
pub use host::Container;
pub use lifetime::LifetimeManager;
pub use replication::{NetFabric, ReplicaSet};
pub use service::{Operation, OperationContext, WebService};
pub use testbed::Testbed;
