//! The client agent: the proxy-object layer the paper describes ("engaging
//! either counter service is ... via a Web service proxy object").
//!
//! One agent holds an identity, a security policy, and a network port; its
//! [`ClientAgent::invoke`] does what a WSE-generated proxy did — stamp the
//! addressing headers, sign the request if the policy says so, send, verify
//! the response signature, and surface SOAP faults as errors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ogsa_addressing::{EndpointReference, MessageHeaders};
use ogsa_security::{
    sign_envelope, verify_envelope, CertStore, Identity, SecurityError, SecurityPolicy,
};
use ogsa_sim::{CostModel, SimDuration, VirtualClock};
use ogsa_soap::{Envelope, Fault};
use ogsa_telemetry::{Span, SpanKind, Telemetry};
use ogsa_transport::{Network, Port, RetryPolicy, TransportError};
use ogsa_xml::Element;

/// Failures from a client-side invocation.
#[derive(Debug)]
pub enum InvokeError {
    /// The wire failed (no endpoint, garbage).
    Transport(TransportError),
    /// The service answered with a SOAP fault.
    Fault(Fault),
    /// Request/response signature processing failed.
    Security(SecurityError),
}

impl std::fmt::Display for InvokeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvokeError::Transport(e) => write!(f, "transport: {e}"),
            InvokeError::Fault(e) => write!(f, "{e}"),
            InvokeError::Security(e) => write!(f, "security: {e}"),
        }
    }
}

impl std::error::Error for InvokeError {}

impl From<TransportError> for InvokeError {
    fn from(e: TransportError) -> Self {
        InvokeError::Transport(e)
    }
}

impl From<Fault> for InvokeError {
    fn from(e: Fault) -> Self {
        InvokeError::Fault(e)
    }
}

impl From<SecurityError> for InvokeError {
    fn from(e: SecurityError) -> Self {
        InvokeError::Security(e)
    }
}

/// A client (or a service making outcalls): identity + policy + port.
#[derive(Clone)]
pub struct ClientAgent {
    port: Port,
    identity: Identity,
    cert_store: CertStore,
    policy: SecurityPolicy,
    clock: VirtualClock,
    model: Arc<CostModel>,
    seq: Arc<AtomicU64>,
    /// Request/response retry behaviour; `RetryPolicy::none()` by default.
    retry: RetryPolicy,
    /// Redelivery policy for one-way sends; fire-and-forget by default.
    redelivery: Option<RetryPolicy>,
}

impl ClientAgent {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        port: Port,
        identity: Identity,
        cert_store: CertStore,
        policy: SecurityPolicy,
        clock: VirtualClock,
        model: Arc<CostModel>,
    ) -> Self {
        ClientAgent {
            port,
            identity,
            cert_store,
            policy,
            clock,
            model,
            seq: Arc::new(AtomicU64::new(0)),
            retry: RetryPolicy::none(),
            redelivery: None,
        }
    }

    /// Retry failed invocations under `policy`: each attempt gets
    /// `policy.attempt_timeout` of simulated time, retryable transport
    /// failures back off (charged to the virtual clock) and try again up to
    /// `policy.max_attempts`.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Redeliver lost one-way sends under `policy` (bounded attempts, then
    /// the network's dead-letter record).
    pub fn with_redelivery(mut self, policy: RetryPolicy) -> Self {
        self.redelivery = Some(policy);
        self
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    pub fn redelivery_policy(&self) -> Option<&RetryPolicy> {
        self.redelivery.as_ref()
    }

    /// This agent's DN.
    pub fn dn(&self) -> &str {
        self.identity.dn()
    }

    /// This agent's identity (services pass theirs to notification senders).
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    pub fn policy(&self) -> SecurityPolicy {
        self.policy
    }

    pub fn network(&self) -> &Network {
        self.port.network()
    }

    pub fn port(&self) -> &Port {
        &self.port
    }

    pub fn cert_store(&self) -> &CertStore {
        &self.cert_store
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    pub fn model(&self) -> &CostModel {
        &self.model
    }

    fn next_message_id(&self) -> String {
        format!(
            "uuid:{}-{}",
            self.identity.cert.key_id,
            self.seq.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Invoke `action` on the service/resource behind `target` with `body`;
    /// returns the response body.
    ///
    /// Under a retry policy ([`ClientAgent::with_retry`]) each attempt is a
    /// complete fresh request — new message id, re-signed — with the
    /// policy's per-attempt timeout; retryable transport failures (timeout,
    /// drop, garbled wire) charge the backoff to the virtual clock and try
    /// again. SOAP faults and security failures never retry: the service
    /// answered, it just said no.
    pub fn invoke(
        &self,
        target: &EndpointReference,
        action: &str,
        body: Element,
    ) -> Result<Element, InvokeError> {
        let tel = self.network().telemetry().clone();
        let t0 = self.clock.now();
        let mut span = tel.span(SpanKind::Client, "client:invoke");
        span.set_attr("action", action);
        span.set_attr("to", &target.address);
        let result = self.invoke_attempts(target, action, body, &tel, &mut span);
        let outcome = match &result {
            Ok(_) => "ok",
            Err(InvokeError::Fault(_)) => "fault",
            Err(InvokeError::Transport(_)) => "transport",
            Err(InvokeError::Security(_)) => "security",
        };
        span.set_attr("outcome", outcome);
        tel.metrics()
            .inc("invoke.calls", &[("action", action), ("outcome", outcome)]);
        tel.metrics().observe(
            "invoke_ms",
            &[("action", action)],
            self.clock.now().since(t0),
        );
        result
    }

    /// The retry loop behind [`ClientAgent::invoke`], run inside its span.
    fn invoke_attempts(
        &self,
        target: &EndpointReference,
        action: &str,
        body: Element,
        tel: &Telemetry,
        span: &mut Span,
    ) -> Result<Element, InvokeError> {
        // `none()`'s sentinel "no budget" timeout means no deadline at all.
        let deadline = (self.retry.attempt_timeout != SimDuration(u64::MAX))
            .then_some(self.retry.attempt_timeout);
        let mut attempt = 1u32;
        // The body is cloned only while a retry could still need it; the
        // final (or only) attempt moves it into the envelope.
        let mut body = Some(body);
        loop {
            let attempt_body = if attempt < self.retry.max_attempts {
                body.clone()
                    .expect("request body present until final attempt")
            } else {
                body.take()
                    .expect("request body present until final attempt")
            };
            let headers = MessageHeaders::request(target, action, self.next_message_id());
            let mut env = headers.apply(Envelope::new(attempt_body));
            // Trace context rides the wire next to the addressing headers,
            // under the signature like everything else.
            if let (Some(trace), Some(id)) = (span.trace_id(), span.id()) {
                env = ogsa_telemetry::wire::inject(env, trace, id);
            }
            if self.policy.signs_messages() {
                let _s = tel.span(SpanKind::Security, "x509:sign");
                let before = ogsa_security::c14n_passes();
                sign_envelope(&mut env, &self.identity, &self.clock, &self.model);
                tel.metrics().add(
                    "sec.c14n_passes",
                    &[("stage", "sign")],
                    ogsa_security::c14n_passes() - before,
                );
            }
            match self.port.call_with_deadline(&target.address, env, deadline) {
                Ok(resp) => {
                    if self.policy.signs_messages() {
                        let _s = tel.span(SpanKind::Security, "x509:verify");
                        let before = ogsa_security::c14n_passes();
                        let verified =
                            verify_envelope(&resp, &self.cert_store, &self.clock, &self.model);
                        tel.metrics().add(
                            "sec.c14n_passes",
                            &[("stage", "verify")],
                            ogsa_security::c14n_passes() - before,
                        );
                        verified?;
                    }
                    if let Some(fault) = resp.fault() {
                        return Err(InvokeError::Fault(fault));
                    }
                    return Ok(resp.body);
                }
                Err(e) if e.is_retryable() && attempt < self.retry.max_attempts => {
                    let backoff = self.retry.backoff(attempt);
                    let backoff_us = backoff.as_micros().to_string();
                    span.event_with("retry:backoff", &[("backoff_us", &backoff_us)]);
                    self.clock.advance(backoff);
                    self.network().stats().record_retry();
                    tel.metrics().inc("invoke.retries", &[("action", action)]);
                    attempt += 1;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Serialise one complete request for `action` on `target` —
    /// addressing headers stamped, trace context omitted, signed under
    /// the policy — returning `(address, wire)`. The real-socket load
    /// generator signs one template and replays the bytes verbatim
    /// (nothing in the protocol is nonce-checked, so replay parses and
    /// verifies like a fresh request); the server still runs its full
    /// verify + sign pipeline per copy.
    pub fn prepare_wire(
        &self,
        target: &EndpointReference,
        action: &str,
        body: Element,
    ) -> (String, String) {
        let headers = MessageHeaders::request(target, action, self.next_message_id());
        let mut env = headers.apply(Envelope::new(body));
        if self.policy.signs_messages() {
            sign_envelope(&mut env, &self.identity, &self.clock, &self.model);
        }
        (target.address.clone(), env.to_wire())
    }

    /// Decode a response that arrived over a real socket: parse the
    /// envelope, verify its signature under the policy, surface SOAP
    /// faults — the response half of [`ClientAgent::invoke`] for callers
    /// that did their own transport.
    pub fn decode_response(&self, wire: &str) -> Result<Element, InvokeError> {
        let env = Envelope::from_wire(wire).map_err(|e| {
            InvokeError::Transport(TransportError::WireGarbage {
                detail: e.to_string(),
            })
        })?;
        if self.policy.signs_messages() {
            verify_envelope(&env, &self.cert_store, &self.clock, &self.model)?;
        }
        if let Some(fault) = env.fault() {
            return Err(InvokeError::Fault(fault));
        }
        Ok(env.body)
    }

    /// Fire a one-way (notification) message at `to`; signed under the
    /// X.509 policy like any other message. With a redelivery policy
    /// ([`ClientAgent::with_redelivery`]) lost sends are redelivered with
    /// backoff, then dead-lettered.
    pub fn send_oneway(&self, to: &EndpointReference, action: &str, body: Element) {
        let tel = self.network().telemetry().clone();
        let mut span = tel.span(SpanKind::Client, "client:send_oneway");
        span.set_attr("action", action);
        span.set_attr("to", &to.address);
        let headers = MessageHeaders::request(to, action, self.next_message_id());
        let mut env = headers.apply(Envelope::new(body));
        if let (Some(trace), Some(id)) = (span.trace_id(), span.id()) {
            env = ogsa_telemetry::wire::inject(env, trace, id);
        }
        if self.policy.signs_messages() {
            let _s = tel.span(SpanKind::Security, "x509:sign");
            let before = ogsa_security::c14n_passes();
            sign_envelope(&mut env, &self.identity, &self.clock, &self.model);
            tel.metrics().add(
                "sec.c14n_passes",
                &[("stage", "sign")],
                ogsa_security::c14n_passes() - before,
            );
        }
        self.port
            .send_oneway_with_policy(&to.address, env, self.redelivery.clone());
    }

    /// Stand up a one-way consumer endpoint on this agent's host (the
    /// paper: "WSRF.NET uses a custom HTTP server that clients include,
    /// Plumbwork Orange uses a WSE SoapReceiver ... via TCP"). The `scheme`
    /// selects which. Returns the EPR subscribers should register.
    ///
    /// Under the X.509 policy the consumer verifies each incoming message's
    /// signature (charged to the clock) before the handler sees it;
    /// unverifiable messages are dropped.
    pub fn listen_oneway(
        &self,
        scheme: &str,
        path: &str,
        handler: Arc<dyn Fn(Envelope) + Send + Sync>,
    ) -> EndpointReference {
        let address = format!("{scheme}://{}{}", self.port.host(), path);
        let policy = self.policy;
        let store = self.cert_store.clone();
        let clock = self.clock.clone();
        let model = self.model.clone();
        let tel = self.network().telemetry().clone();
        self.port.network().bind_oneway(
            &address,
            Arc::new(move |env: Envelope| {
                if policy.signs_messages() {
                    let verified = {
                        let _s = tel.span(SpanKind::Security, "x509:verify");
                        verify_envelope(&env, &store, &clock, &model).is_ok()
                    };
                    if !verified {
                        return;
                    }
                }
                handler(env);
            }),
        );
        EndpointReference::service(address)
    }
}
