//! The container's lifetime-management component (Figure 1).
//!
//! WSRF's WS-ResourceLifetime gives resources a termination time; when it
//! passes, the container destroys the resource via a registered destructor.
//! WS-Transfer defines no lifetime management — the paper's WS-Transfer
//! container simply never registers anything here, and its Grid-in-a-Box
//! reservations must be cleaned up manually (the source of Figure 6's
//! "Unreserve Resource" asymmetry).

use std::collections::HashMap;
use std::sync::Arc;

use ogsa_sim::{SimInstant, VirtualClock};
use parking_lot::Mutex;

/// Destructor invoked when a resource's scheduled termination passes.
pub type Destructor = Arc<dyn Fn(&str) + Send + Sync>;

#[derive(Clone)]
struct Entry {
    termination: Option<SimInstant>,
    destructor: Destructor,
}

/// Tracks scheduled termination times for resources, keyed by
/// `(service path, resource id)` flattened to a single string key by the
/// caller.
#[derive(Clone, Default)]
pub struct LifetimeManager {
    entries: Arc<Mutex<HashMap<String, Entry>>>,
}

impl LifetimeManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a resource. `termination == None` means "never terminate"
    /// (the paper's Grid-in-a-Box sets claimed reservations to infinity).
    pub fn register(&self, key: &str, termination: Option<SimInstant>, destructor: Destructor) {
        self.entries.lock().insert(
            key.to_owned(),
            Entry {
                termination,
                destructor,
            },
        );
    }

    /// Change a resource's scheduled termination time; true if the resource
    /// is known.
    pub fn set_termination(&self, key: &str, termination: Option<SimInstant>) -> bool {
        match self.entries.lock().get_mut(key) {
            Some(e) => {
                e.termination = termination;
                true
            }
            None => false,
        }
    }

    /// Current termination time for a resource.
    pub fn termination(&self, key: &str) -> Option<Option<SimInstant>> {
        self.entries.lock().get(key).map(|e| e.termination)
    }

    /// Drop a resource from tracking without destroying it (explicit
    /// Destroy already cleaned up).
    pub fn deregister(&self, key: &str) -> bool {
        self.entries.lock().remove(key).is_some()
    }

    /// Destroy everything whose termination time has passed. Returns the
    /// keys destroyed. Runs destructors outside the lock.
    pub fn sweep(&self, now: SimInstant) -> Vec<String> {
        let expired: Vec<(String, Destructor)> = {
            let mut entries = self.entries.lock();
            let keys: Vec<String> = entries
                .iter()
                .filter(|(_, e)| matches!(e.termination, Some(t) if t <= now))
                .map(|(k, _)| k.clone())
                .collect();
            keys.into_iter()
                .filter_map(|k| entries.remove(&k).map(|e| (k, e.destructor)))
                .collect()
        };
        let mut destroyed = Vec::with_capacity(expired.len());
        for (key, destructor) in expired {
            destructor(&key);
            destroyed.push(key);
        }
        destroyed.sort();
        destroyed
    }

    /// Convenience: sweep at the clock's current time.
    pub fn sweep_now(&self, clock: &VirtualClock) -> Vec<String> {
        self.sweep(clock.now())
    }

    /// Number of tracked resources.
    pub fn tracked(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ogsa_sim::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counter_destructor(count: &Arc<AtomicUsize>) -> Destructor {
        let count = count.clone();
        Arc::new(move |_k| {
            count.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn sweep_destroys_only_expired() {
        let lm = LifetimeManager::new();
        let destroyed = Arc::new(AtomicUsize::new(0));
        lm.register("a", Some(SimInstant(100)), counter_destructor(&destroyed));
        lm.register("b", Some(SimInstant(200)), counter_destructor(&destroyed));
        lm.register("c", None, counter_destructor(&destroyed));

        let swept = lm.sweep(SimInstant(150));
        assert_eq!(swept, ["a"]);
        assert_eq!(destroyed.load(Ordering::SeqCst), 1);
        assert_eq!(lm.tracked(), 2);

        let swept = lm.sweep(SimInstant(1_000_000));
        assert_eq!(swept, ["b"]);
        // `c` (never terminate) survives any sweep.
        assert_eq!(lm.tracked(), 1);
    }

    #[test]
    fn set_termination_extends_lifetime() {
        // The Grid-in-a-Box "claim" interaction: the ExecService lengthens
        // the reservation's lifetime when a job starts.
        let lm = LifetimeManager::new();
        let destroyed = Arc::new(AtomicUsize::new(0));
        lm.register("rsv", Some(SimInstant(100)), counter_destructor(&destroyed));
        assert!(lm.set_termination("rsv", None)); // claim → infinity
        assert!(lm.sweep(SimInstant(10_000)).is_empty());
        assert_eq!(destroyed.load(Ordering::SeqCst), 0);
        assert_eq!(lm.termination("rsv"), Some(None));
    }

    #[test]
    fn set_termination_unknown_key_is_false() {
        assert!(!LifetimeManager::new().set_termination("ghost", None));
    }

    #[test]
    fn deregister_prevents_destruction() {
        let lm = LifetimeManager::new();
        let destroyed = Arc::new(AtomicUsize::new(0));
        lm.register("a", Some(SimInstant(5)), counter_destructor(&destroyed));
        assert!(lm.deregister("a"));
        assert!(!lm.deregister("a"));
        lm.sweep(SimInstant(10));
        assert_eq!(destroyed.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn sweep_now_uses_the_clock() {
        let lm = LifetimeManager::new();
        let clock = VirtualClock::new();
        let destroyed = Arc::new(AtomicUsize::new(0));
        lm.register("a", Some(SimInstant(50)), counter_destructor(&destroyed));
        assert!(lm.sweep_now(&clock).is_empty());
        clock.advance(SimDuration::from_micros(60));
        assert_eq!(lm.sweep_now(&clock), ["a"]);
    }

    #[test]
    fn destructor_receives_the_key() {
        let lm = LifetimeManager::new();
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let seen2 = seen.clone();
        lm.register(
            "svc/r-1",
            Some(SimInstant(1)),
            Arc::new(move |k| seen2.lock().push(k.to_owned())),
        );
        lm.sweep(SimInstant(2));
        assert_eq!(&*seen.lock(), &["svc/r-1"]);
    }
}
