//! The container itself: deploy services, run the dispatch + security
//! pipeline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ogsa_addressing::{EndpointReference, MessageHeaders};
use ogsa_security::{sign_envelope, verify_envelope, CertStore, Identity, SecurityPolicy};
use ogsa_sim::{CostModel, SimDuration, VirtualClock};
use ogsa_soap::{Envelope, Fault};
use ogsa_telemetry::{SpanKind, Telemetry};
use ogsa_transport::{Network, RetryPolicy};
use ogsa_xmldb::Database;
use parking_lot::RwLock;

use crate::lifetime::LifetimeManager;
use crate::service::{Operation, OperationContext, WebService};
use crate::ClientAgent;

struct ContainerInner {
    host: String,
    policy: SecurityPolicy,
    network: Network,
    db: Database,
    clock: VirtualClock,
    model: Arc<CostModel>,
    identity: Identity,
    cert_store: CertStore,
    lifetime: LifetimeManager,
    services: RwLock<HashMap<String, Arc<dyn WebService>>>,
    msg_seq: AtomicU64,
    /// Redelivery policy handed to every service agent's one-way sends —
    /// how this container's notification producers survive a lossy wire.
    redelivery: RwLock<Option<RetryPolicy>>,
    /// Retry policy for service agents' request/response outcalls —
    /// how this container's server-to-server invokes survive a lossy wire.
    call_retry: RwLock<Option<RetryPolicy>>,
}

/// One application-hosting environment on one host (ASP.NET + our
/// extensions, in the paper's terms). Deploy services into it with
/// [`Container::deploy`].
#[derive(Clone)]
pub struct Container {
    inner: Arc<ContainerInner>,
}

impl Container {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        host: String,
        policy: SecurityPolicy,
        network: Network,
        db: Database,
        clock: VirtualClock,
        model: Arc<CostModel>,
        identity: Identity,
        cert_store: CertStore,
    ) -> Self {
        Container {
            inner: Arc::new(ContainerInner {
                host,
                policy,
                network,
                db,
                clock,
                model,
                identity,
                cert_store,
                lifetime: LifetimeManager::new(),
                services: RwLock::new(HashMap::new()),
                msg_seq: AtomicU64::new(0),
                redelivery: RwLock::new(None),
                call_retry: RwLock::new(None),
            }),
        }
    }

    /// The host this container runs on.
    pub fn host(&self) -> &str {
        &self.inner.host
    }

    pub fn policy(&self) -> SecurityPolicy {
        self.inner.policy
    }

    pub fn db(&self) -> &Database {
        &self.inner.db
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.inner.clock
    }

    pub fn model(&self) -> &CostModel {
        &self.inner.model
    }

    pub fn lifetime(&self) -> &LifetimeManager {
        &self.inner.lifetime
    }

    pub fn network(&self) -> &Network {
        &self.inner.network
    }

    /// The tracing/metrics handle this container records into (the
    /// network's).
    pub fn telemetry(&self) -> &Telemetry {
        self.inner.network.telemetry()
    }

    /// The scheme requests to this container use, derived from policy.
    pub fn scheme(&self) -> &'static str {
        if self.inner.policy.uses_tls() {
            "https"
        } else {
            "http"
        }
    }

    /// Address of a service deployed at `path`.
    pub fn address_of(&self, path: &str) -> String {
        format!("{}://{}{}", self.scheme(), self.inner.host, path)
    }

    /// Give (or take away, with `None`) a redelivery policy for one-way
    /// sends made by this container's services — notification pushes in
    /// both the WS-Eventing and WSN stacks go through service agents, so
    /// this is the one knob that makes a container's notifications survive
    /// a lossy wire. Affects agents created after the call.
    pub fn set_redelivery(&self, policy: Option<RetryPolicy>) {
        *self.inner.redelivery.write() = policy;
    }

    /// The redelivery policy service agents currently inherit.
    pub fn redelivery(&self) -> Option<RetryPolicy> {
        self.inner.redelivery.read().clone()
    }

    /// Give (or take away, with `None`) a retry policy for request/response
    /// invokes made by this container's services — VO services call site
    /// services on the user's behalf, and without a budget a single lost
    /// server-to-server message surfaces as a fault the end client cannot
    /// retry safely. Affects agents created after the call.
    pub fn set_call_retry(&self, policy: Option<RetryPolicy>) {
        *self.inner.call_retry.write() = policy;
    }

    /// The invoke retry policy service agents currently inherit.
    pub fn call_retry(&self) -> Option<RetryPolicy> {
        self.inner.call_retry.read().clone()
    }

    /// An outcall agent carrying this container's (service) identity.
    pub fn service_agent(&self) -> ClientAgent {
        let agent = ClientAgent::new(
            self.inner.network.port(&self.inner.host),
            self.inner.identity.clone(),
            self.inner.cert_store.clone(),
            self.inner.policy,
            self.inner.clock.clone(),
            self.inner.model.clone(),
        );
        let agent = match self.inner.redelivery.read().clone() {
            Some(policy) => agent.with_redelivery(policy),
            None => agent,
        };
        match self.inner.call_retry.read().clone() {
            Some(policy) => agent.with_retry(policy),
            None => agent,
        }
    }

    /// The operation context services deployed here receive.
    pub fn context_for(&self, path: &str) -> OperationContext {
        OperationContext {
            host: self.inner.host.clone(),
            db: self.inner.db.clone(),
            clock: self.inner.clock.clone(),
            model: self.inner.model.clone(),
            lifetime: self.inner.lifetime.clone(),
            agent: self.service_agent(),
            own_address: self.address_of(path),
        }
    }

    /// Deploy `service` at `path` (e.g. `/services/CounterService`); returns
    /// the service EPR.
    pub fn deploy(&self, path: &str, service: Arc<dyn WebService>) -> EndpointReference {
        let address = self.address_of(path);
        self.inner
            .services
            .write()
            .insert(path.to_owned(), service.clone());

        let this = self.clone();
        let ctx = self.context_for(path);
        let handler: ogsa_transport::net::Handler =
            Arc::new(move |req: Envelope| this.pipeline(&ctx, &service, req));
        self.inner.network.bind(&address, handler);
        EndpointReference::service(address)
    }

    /// Remove a deployed service.
    pub fn undeploy(&self, path: &str) {
        let address = self.address_of(path);
        self.inner.network.unbind(&address);
        self.inner.services.write().remove(path);
    }

    /// The full request pipeline of Figure 1. One `server` span per request:
    /// dispatch, security handler, service code, and the response pass each
    /// nest under it. Parentage comes from the thread's open context when
    /// the call arrived inline, else from the `tel:` trace headers the
    /// client stamped on the wire.
    fn pipeline(
        &self,
        ctx: &OperationContext,
        service: &Arc<dyn WebService>,
        req: Envelope,
    ) -> Envelope {
        let inner = &self.inner;
        let tel = self.telemetry().clone();
        let mut span = match tel.current() {
            Some(_) => tel.span(SpanKind::Server, "container:pipeline"),
            None => match ogsa_telemetry::wire::extract(&req) {
                Some((trace, parent)) => {
                    tel.child_span(SpanKind::Server, "container:pipeline", trace, Some(parent))
                }
                None => tel.span(SpanKind::Server, "container:pipeline"),
            },
        };
        span.set_attr("host", &inner.host);

        // Dispatch cost + lifetime sweep (scheduled terminations fire as
        // requests arrive — the container's background activity).
        {
            let _d = tel.span(SpanKind::Dispatch, "container:dispatch");
            inner
                .clock
                .advance(SimDuration::from_micros(inner.model.dispatch_us));
            inner.lifetime.sweep_now(&inner.clock);
        }

        let result = self.run_service(ctx, service, req, &tel);

        // Build the response, passing back through the security handler.
        let (body, request_headers) = match result {
            Ok((body, headers)) => (body, Some(headers)),
            Err(fault) => {
                span.event("soap_fault");
                (fault.to_element(), None)
            }
        };
        let msg_id = format!(
            "uuid:{}-{}",
            inner.host,
            inner.msg_seq.fetch_add(1, Ordering::Relaxed)
        );
        let mut resp = match &request_headers {
            Some(h) => MessageHeaders::response(h, msg_id).apply(Envelope::new(body)),
            None => Envelope::new(body),
        };
        if inner.policy.signs_messages() {
            let _s = tel.span(SpanKind::Security, "x509:sign");
            let before = ogsa_security::c14n_passes();
            sign_envelope(&mut resp, &inner.identity, &inner.clock, &inner.model);
            tel.metrics().add(
                "sec.c14n_passes",
                &[("stage", "sign")],
                ogsa_security::c14n_passes() - before,
            );
        }
        resp
    }

    fn run_service(
        &self,
        ctx: &OperationContext,
        service: &Arc<dyn WebService>,
        req: Envelope,
        tel: &Telemetry,
    ) -> Result<(ogsa_xml::Element, MessageHeaders), Fault> {
        let inner = &self.inner;

        let headers = MessageHeaders::extract(&req)
            .map_err(|e| Fault::client(format!("bad addressing headers: {e}")))?;

        // Security/policy handler: authenticate the client.
        let signer_dn = if inner.policy.signs_messages() {
            let _s = tel.span(SpanKind::Security, "x509:verify");
            let before = ogsa_security::c14n_passes();
            let verified = verify_envelope(&req, &inner.cert_store, &inner.clock, &inner.model);
            tel.metrics().add(
                "sec.c14n_passes",
                &[("stage", "verify")],
                ogsa_security::c14n_passes() - before,
            );
            let signer =
                verified.map_err(|e| Fault::client(format!("security check failed: {e}")))?;
            Some(signer.dn().to_owned())
        } else {
            None
        };

        // The request is consumed here: its body moves into the Operation
        // instead of being deep-cloned alongside a second copy of the
        // headers.
        let op = Operation {
            action: headers.action.clone(),
            body: req.body,
            headers,
            signer_dn,
        };
        let body = {
            let mut s = tel.span(SpanKind::Service, "service:handle");
            s.set_attr("action", &op.action);
            service.handle(&op, ctx)?
        };
        Ok((body, op.headers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::InvokeError;
    use crate::testbed::Testbed;
    use ogsa_xml::Element;

    fn echo_service() -> Arc<dyn WebService> {
        Arc::new(
            |op: &Operation, _ctx: &OperationContext| -> Result<Element, Fault> {
                if op.action_name() == "Boom" {
                    return Err(Fault::server("boom requested"));
                }
                Ok(Element::new("EchoResponse")
                    .with_attr("action", op.action_name())
                    .with_text(op.body.text()))
            },
        )
    }

    #[test]
    fn deploy_and_invoke() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let epr = c.deploy("/services/Echo", echo_service());
        let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
        let resp = client
            .invoke(&epr, "urn:test/Ping", Element::text_element("In", "hello"))
            .unwrap();
        assert_eq!(resp.attr_local("action"), Some("Ping"));
        assert_eq!(resp.text(), "hello");
    }

    #[test]
    fn faults_surface_to_clients() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let epr = c.deploy("/services/Echo", echo_service());
        let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
        let err = client
            .invoke(&epr, "urn:test/Boom", Element::new("In"))
            .unwrap_err();
        match err {
            InvokeError::Fault(f) => assert_eq!(f.reason, "boom requested"),
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn x509_policy_authenticates_the_client() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::X509Sign);
        let seen = Arc::new(parking_lot::Mutex::new(None::<String>));
        let seen2 = seen.clone();
        let svc = Arc::new(
            move |op: &Operation, _ctx: &OperationContext| -> Result<Element, Fault> {
                *seen2.lock() = op.signer_dn.clone();
                Ok(Element::new("Ok"))
            },
        );
        let epr = c.deploy("/services/Who", svc);
        let client = tb.client("host-b", "CN=alice,O=VO", SecurityPolicy::X509Sign);
        client
            .invoke(&epr, "urn:whoami", Element::new("Q"))
            .unwrap();
        assert_eq!(seen.lock().as_deref(), Some("CN=alice,O=VO"));
    }

    #[test]
    fn unsigned_request_rejected_under_x509_policy() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::X509Sign);
        let epr = c.deploy("/services/Echo", echo_service());
        // A client that does not sign.
        let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
        let err = client
            .invoke(&epr, "urn:test/Ping", Element::new("In"))
            .unwrap_err();
        assert!(matches!(err, InvokeError::Fault(f) if f.reason.contains("security")));
    }

    #[test]
    fn https_container_uses_https_addresses() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::Https);
        let epr = c.deploy("/services/Echo", echo_service());
        assert!(epr.address.starts_with("https://host-a/"));
        let client = tb.client("host-b", "CN=alice", SecurityPolicy::Https);
        client
            .invoke(&epr, "urn:test/Ping", Element::new("In"))
            .unwrap();
    }

    #[test]
    fn undeploy_makes_endpoint_vanish() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let epr = c.deploy("/services/Echo", echo_service());
        c.undeploy("/services/Echo");
        let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
        assert!(matches!(
            client.invoke(&epr, "urn:x", Element::new("In")),
            Err(InvokeError::Transport(_))
        ));
    }

    #[test]
    fn resource_id_flows_through_the_pipeline() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let svc = Arc::new(
            |op: &Operation, _ctx: &OperationContext| -> Result<Element, Fault> {
                Ok(Element::text_element(
                    "Rid",
                    op.resource_id().unwrap_or("-").to_owned(),
                ))
            },
        );
        let service_epr = c.deploy("/services/R", svc);
        let resource_epr = EndpointReference::resource(service_epr.address.clone(), "res-99");
        let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
        let resp = client
            .invoke(&resource_epr, "urn:get", Element::new("G"))
            .unwrap();
        assert_eq!(resp.text(), "res-99");
    }

    #[test]
    fn invoke_retries_through_drops() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let epr = c.deploy("/services/Echo", echo_service());
        tb.network()
            .set_fault_plan(ogsa_transport::FaultPlan::seeded(13).with_drops(0.4));
        let client = tb
            .client("host-b", "CN=alice", SecurityPolicy::None)
            .with_retry(ogsa_transport::RetryPolicy::default_call(13).with_max_attempts(10));
        for _ in 0..20 {
            client
                .invoke(&epr, "urn:test/Ping", Element::new("In"))
                .expect("10 attempts ride out a 40% drop rate");
        }
        assert!(tb.network().stats().retries() > 0);
        // Every call eventually succeeded, so every dropped attempt burnt
        // its deadline (timeout) and was retried.
        assert_eq!(
            tb.network().stats().injected_drops(),
            tb.network().stats().retries()
        );
        assert_eq!(
            tb.network().stats().timeouts(),
            tb.network().stats().injected_drops()
        );
    }

    #[test]
    fn exhausted_invoke_retries_surface_a_timeout() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let epr = c.deploy("/services/Echo", echo_service());
        tb.network()
            .set_fault_plan(ogsa_transport::FaultPlan::seeded(1).with_drops(1.0));
        let policy = ogsa_transport::RetryPolicy::default_call(1).with_max_attempts(3);
        let client = tb
            .client("host-b", "CN=alice", SecurityPolicy::None)
            .with_retry(policy.clone());
        let t0 = tb.clock().now();
        let err = client
            .invoke(&epr, "urn:test/Ping", Element::new("In"))
            .unwrap_err();
        assert!(matches!(
            err,
            InvokeError::Transport(ogsa_transport::TransportError::Timeout { .. })
        ));
        assert_eq!(tb.network().stats().retries(), 2);
        assert_eq!(tb.network().stats().timeouts(), 3);
        // Every attempt burnt its full deadline, plus two backoffs between.
        let spent = tb.clock().now().since(t0);
        let floor = policy.attempt_timeout.as_micros() * 3
            + policy.backoff(1).as_micros()
            + policy.backoff(2).as_micros();
        assert!(spent.as_micros() >= floor, "{spent:?} < {floor}");
    }

    #[test]
    fn soap_faults_never_retry() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let epr = c.deploy("/services/Echo", echo_service());
        let client = tb
            .client("host-b", "CN=alice", SecurityPolicy::None)
            .with_retry(ogsa_transport::RetryPolicy::default_call(1).with_max_attempts(5));
        let err = client
            .invoke(&epr, "urn:test/Boom", Element::new("In"))
            .unwrap_err();
        assert!(matches!(err, InvokeError::Fault(_)));
        assert_eq!(tb.network().stats().retries(), 0);
    }

    #[test]
    fn service_agents_inherit_container_redelivery() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        assert!(c.service_agent().redelivery_policy().is_none());
        c.set_redelivery(Some(ogsa_transport::RetryPolicy::default_redelivery(7)));
        assert!(c.service_agent().redelivery_policy().is_some());
        c.set_redelivery(None);
        assert!(c.service_agent().redelivery_policy().is_none());
    }

    #[test]
    fn lifetime_sweep_runs_on_dispatch() {
        let tb = Testbed::free();
        let c = tb.container("host-a", SecurityPolicy::None);
        let epr = c.deploy("/services/Echo", echo_service());
        let destroyed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let d2 = destroyed.clone();
        c.lifetime().register(
            "r",
            Some(tb.clock().now()),
            Arc::new(move |_| {
                d2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }),
        );
        tb.clock().advance(ogsa_sim::SimDuration::from_micros(1));
        let client = tb.client("host-b", "CN=a", SecurityPolicy::None);
        client
            .invoke(&epr, "urn:test/Ping", Element::new("In"))
            .unwrap();
        assert_eq!(destroyed.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
