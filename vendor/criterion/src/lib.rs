//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the bench crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — with
//! a deliberately small measurement loop so `cargo test` (which executes
//! `harness = false` bench binaries) stays fast. Timings are printed as
//! simple mean-per-iteration lines, no statistics or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark is measured for. Smoke-level by default; set
/// `CRITERION_SHIM_MS` to measure longer.
fn measure_budget() -> Duration {
    std::env::var("CRITERION_SHIM_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(20))
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then measure until the budget runs out.
        black_box(f());
        let budget = measure_budget();
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(f());
            n += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.iterations = n;
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations > 0 {
        b.elapsed / b.iterations as u32
    } else {
        Duration::ZERO
    };
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) | Some(Throughput::BytesDecimal(bytes))
            if !per_iter.is_zero() =>
        {
            format!(
                "  ({:.1} MiB/s)",
                bytes as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label:<50} {per_iter:>12.2?}/iter  x{}{rate}",
        b.iterations
    );
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, &mut f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_the_closure() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits >= 2, "warm-up plus at least one measured iteration");
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(128));
        group.bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| 1 + 1));
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
