//! A tiny generator for the regex subset test strategies actually use:
//! literals, character classes (`[a-z0-9_.-]`, with ranges and literal `-`
//! at either end), groups, alternation, and the quantifiers `?`, `*`, `+`,
//! `{n}`, `{m,n}`. Unbounded quantifiers are capped at 8 repetitions.

use crate::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
pub enum Node {
    Literal(char),
    /// Inclusive scalar ranges; a literal char is a one-char range.
    Class(Vec<(char, char)>),
    /// A sequence of nodes (the body of a group or the whole pattern).
    Seq(Vec<Node>),
    /// Top-level alternation inside a group.
    Alt(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

pub fn parse(pattern: &str) -> Result<Node, ParseError> {
    let chars: Vec<char> = pattern.chars().collect();
    let (node, used) = parse_alt(&chars, 0)?;
    if used != chars.len() {
        return Err(ParseError(format!(
            "trailing characters at {used} in `{pattern}`"
        )));
    }
    Ok(node)
}

fn parse_alt(chars: &[char], mut i: usize) -> Result<(Node, usize), ParseError> {
    let mut branches = Vec::new();
    loop {
        let (seq, next) = parse_seq(chars, i)?;
        branches.push(seq);
        i = next;
        if i < chars.len() && chars[i] == '|' {
            i += 1;
        } else {
            break;
        }
    }
    let node = if branches.len() == 1 {
        branches.pop().unwrap()
    } else {
        Node::Alt(branches)
    };
    Ok((node, i))
}

fn parse_seq(chars: &[char], mut i: usize) -> Result<(Node, usize), ParseError> {
    let mut items = Vec::new();
    while i < chars.len() && chars[i] != ')' && chars[i] != '|' {
        let (atom, next) = parse_atom(chars, i)?;
        i = next;
        // Optional quantifier.
        if i < chars.len() {
            match chars[i] {
                '?' => {
                    items.push(Node::Repeat(Box::new(atom), 0, 1));
                    i += 1;
                    continue;
                }
                '*' => {
                    items.push(Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP));
                    i += 1;
                    continue;
                }
                '+' => {
                    items.push(Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP));
                    i += 1;
                    continue;
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or_else(|| ParseError("unclosed {".into()))?
                        + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    let (lo, hi) = match spec.split_once(',') {
                        None => {
                            let n: u32 = spec
                                .parse()
                                .map_err(|_| ParseError(format!("bad repeat `{spec}`")))?;
                            (n, n)
                        }
                        Some((a, b)) => {
                            let lo: u32 = a
                                .parse()
                                .map_err(|_| ParseError(format!("bad repeat `{spec}`")))?;
                            let hi: u32 = if b.is_empty() {
                                lo + UNBOUNDED_CAP
                            } else {
                                b.parse()
                                    .map_err(|_| ParseError(format!("bad repeat `{spec}`")))?
                            };
                            (lo, hi)
                        }
                    };
                    items.push(Node::Repeat(Box::new(atom), lo, hi));
                    i = close + 1;
                    continue;
                }
                _ => {}
            }
        }
        items.push(atom);
    }
    Ok((Node::Seq(items), i))
}

fn parse_atom(chars: &[char], i: usize) -> Result<(Node, usize), ParseError> {
    match chars[i] {
        '[' => parse_class(chars, i + 1),
        '(' => {
            let (inner, next) = parse_alt(chars, i + 1)?;
            if next >= chars.len() || chars[next] != ')' {
                return Err(ParseError("unclosed (".into()));
            }
            Ok((inner, next + 1))
        }
        '\\' => {
            let c = *chars
                .get(i + 1)
                .ok_or_else(|| ParseError("trailing backslash".into()))?;
            Ok((Node::Literal(c), i + 2))
        }
        '.' => Ok((Node::Class(vec![(' ', '~')]), i + 1)),
        c => Ok((Node::Literal(c), i + 1)),
    }
}

fn parse_class(chars: &[char], mut i: usize) -> Result<(Node, usize), ParseError> {
    let mut ranges = Vec::new();
    let mut first = true;
    while i < chars.len() && chars[i] != ']' {
        let c = chars[i];
        if c == '^' && first {
            return Err(ParseError("negated classes unsupported".into()));
        }
        first = false;
        // `a-z` range (but `-` just before `]` is a literal).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            if hi < c {
                return Err(ParseError(format!("inverted range {c}-{hi}")));
            }
            ranges.push((c, hi));
            i += 3;
        } else {
            ranges.push((c, c));
            i += 1;
        }
    }
    if i >= chars.len() {
        return Err(ParseError("unclosed [".into()));
    }
    if ranges.is_empty() {
        return Err(ParseError("empty class".into()));
    }
    Ok((Node::Class(ranges), i + 1))
}

pub fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            // Weight by range width so wide ranges dominate, like a uniform
            // draw over the union would.
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let width = u64::from(*hi as u32 - *lo as u32 + 1);
                if pick < width {
                    let scalar = *lo as u32 + pick as u32;
                    out.push(char::from_u32(scalar).unwrap_or(*lo));
                    return;
                }
                pick -= width;
            }
        }
        Node::Seq(items) => {
            for item in items {
                generate(item, rng, out);
            }
        }
        Node::Alt(branches) => {
            let i = rng.below(branches.len() as u64) as usize;
            generate(&branches[i], rng, out);
        }
        Node::Repeat(inner, lo, hi) => {
            let n = *lo as u64 + rng.below(u64::from(hi - lo) + 1);
            for _ in 0..n {
                generate(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_one(pattern: &str, case: u64) -> String {
        let node = parse(pattern).unwrap();
        let mut rng = TestRng::for_case(case);
        let mut out = String::new();
        generate(&node, &mut rng, &mut out);
        out
    }

    #[test]
    fn class_with_counted_repeat() {
        for case in 0..50 {
            let s = gen_one("[a-z]{1,10}", case);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn grouped_repeat_and_literal() {
        for case in 0..50 {
            let s = gen_one("[a-z]{1,8}(/[a-z]{1,8}){0,2}", case);
            let segments: Vec<&str> = s.split('/').collect();
            assert!((1..=3).contains(&segments.len()), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let node = parse("[A-Za-z0-9_.-]").unwrap();
        match node {
            Node::Seq(items) => match items.as_slice() {
                [Node::Class(ranges)] => assert!(ranges.contains(&('-', '-'))),
                other => panic!("expected a single class, got {other:?}"),
            },
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn unicode_class_members() {
        for case in 0..50 {
            let s = gen_one("[ -~é☃]{0,20}", case);
            assert!(s.chars().count() <= 20);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == 'é' || c == '☃'));
        }
    }

    #[test]
    fn alternation_picks_a_branch() {
        for case in 0..20 {
            let s = gen_one("(foo|ba)", case);
            assert!(s == "foo" || s == "ba", "{s:?}");
        }
    }

    #[test]
    fn unsupported_syntax_errors_cleanly() {
        assert!(parse("[^a]").is_err());
        assert!(parse("(unclosed").is_err());
        assert!(parse("[unclosed").is_err());
    }
}
