//! `proptest::collection::vec` — vectors with a size drawn from a range.

use std::ops::Range;

use crate::{Strategy, TestRng};

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let n = self.size.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
