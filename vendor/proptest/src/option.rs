//! `proptest::option::of` — optional values (50% `Some`).

use crate::{Strategy, TestRng};

pub struct OptionStrategy<S> {
    inner: S,
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
