//! `proptest::string::string_regex` — strings matching a regex subset.

use crate::regex_gen::{self, Node, ParseError};
use crate::{Strategy, TestRng};

#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    node: Node,
}

/// A strategy producing strings that match `pattern` (see
/// [`crate::regex_gen`] for the supported subset).
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, ParseError> {
    Ok(RegexGeneratorStrategy {
        node: regex_gen::parse(pattern)?,
    })
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        regex_gen::generate(&self.node, rng, &mut out);
        out
    }
}
