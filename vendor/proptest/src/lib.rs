//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive`, `any` for
//! primitives, integer ranges, tuples and `Vec`s of strategies,
//! `string::string_regex`, `option::of`, `collection::vec`, `prop_oneof!`,
//! and the `proptest!` test macro.
//!
//! Differences from real proptest, on purpose:
//! * **No shrinking.** A failing case panics with the generating seed in
//!   the panic message; re-running reproduces it exactly (generation is a
//!   pure function of the per-case seed).
//! * **Deterministic.** Case `i` of every test always uses the same seed,
//!   so CI and local runs see identical inputs.

use std::sync::Arc;

mod regex_gen;

pub mod collection;
pub mod option;
pub mod string;

/// SplitMix64 — small, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The fixed seed for case `case` of a `proptest!` run.
    pub fn for_case(case: u64) -> Self {
        TestRng::from_seed(case.wrapping_mul(0xa076_1d64_78bd_642f))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift range reduction (Lemire); bias is irrelevant for
        // test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Run configuration for `proptest!` blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: generate either the base case or up to `depth`
    /// applications of `recurse` over it. The `_desired_size` and
    /// `_expected_branch_size` hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (cloning shares it).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(u64::from(self.depth) + 1);
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies — backs `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional wider scalars, always valid.
        if rng.below(4) == 0 {
            char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String literals are regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let node = regex_gen::parse(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy `{self}`: {e}"));
        let mut out = String::new();
        regex_gen::generate(&node, rng, &mut out);
        out
    }
}

/// A `Vec` of strategies generates a `Vec` of values, element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The test macro: each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __pt_cfg: $crate::ProptestConfig = $cfg;
                for __pt_case in 0..u64::from(__pt_cfg.cases) {
                    let mut __pt_rng = $crate::TestRng::for_case(__pt_case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __pt_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn same_case_seed_reproduces() {
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        let s = (0u32..1000, any::<bool>());
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case(1);
        let s = (1usize..4).prop_flat_map(|n| (0..n).map(|_| 0u8..10).collect::<Vec<_>>());
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }
    }
}
