//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny subset of the parking_lot API it actually
//! uses: `Mutex::lock`, `RwLock::read`, and `RwLock::write`, all returning
//! guards directly (no `Result`). Poisoning is deliberately ignored — a
//! panicked writer leaves the data as-is, which matches parking_lot's
//! semantics closely enough for this simulation workload.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire without blocking; `None` if the lock is currently held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Shared acquire without blocking; `None` if a writer holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive acquire without blocking; `None` if the lock is held at all.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
