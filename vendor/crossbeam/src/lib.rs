//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by this
//! workspace, so that is all this shim provides. The implementation wraps
//! `std::sync::mpsc`; the receiver is placed behind a mutex so it is `Sync`
//! and cloneable like crossbeam's (clones share the queue).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        fn with<R>(&self, f: impl FnOnce(&mpsc::Receiver<T>) -> R) -> R {
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            f(&guard)
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.with(|rx| rx.recv())
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.with(|rx| rx.recv_timeout(timeout))
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.with(|rx| rx.try_recv())
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv().unwrap(), 5);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<i32>();
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        }

        #[test]
        fn dropping_all_senders_closes() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
