//! The full Grid-in-a-Box flow of the paper's Figure 5, on both stacks:
//! account check → discovery → reservation → stage-in → job start →
//! claim → asynchronous completion notification → cleanup.
//!
//! ```text
//! cargo run --example grid_job
//! ```

use std::time::Duration;

use ogsa_grid::container::Testbed;
use ogsa_grid::gridbox::{GridScenario, TransferGrid, WsrfGrid};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::sim::SimDuration;

const ALICE: &str = "CN=alice,O=UVA-VO";

fn drive(label: &str, scenario: &mut dyn GridScenario, tb: &Testbed) {
    println!("== {label} ==");
    let clock = tb.clock().clone();
    macro_rules! timed {
        ($name:expr, $body:expr) => {{
            let t = clock.now();
            $body;
            println!(
                "  {:<24} {:>8.0} ms",
                $name,
                clock.now().since(t).as_millis()
            );
        }};
    }

    timed!(
        "Get Available Resource",
        scenario.get_available_resource("blast").expect("discover")
    );
    timed!(
        "Make Reservation",
        scenario.make_reservation().expect("reserve")
    );
    timed!(
        "Upload File",
        scenario
            .upload_file("input.dat", 24 * 1024)
            .expect("upload")
    );
    timed!(
        "Instantiate Job",
        scenario
            .instantiate_job(SimDuration::from_millis(1500.0))
            .expect("start")
    );

    let exit = scenario
        .finish_job(Duration::from_secs(5))
        .expect("completion notification");
    println!("  job finished asynchronously with exit code {exit}");

    timed!(
        "Delete File",
        scenario.delete_file("input.dat").expect("delete")
    );
    timed!(
        "Unreserve Resource",
        scenario.unreserve_resource().expect("unreserve")
    );
    if scenario.unreserve_is_automatic() {
        println!("  (unreserve was automatic — the ExecService destroyed the reservation)");
    }
    println!();
}

fn main() {
    // The configuration Figure 6 measures: X.509-signed messages, a
    // distributed VO with a VO-services host and two execution sites.
    let policy = SecurityPolicy::X509Sign;
    let hosts = ["site-a", "site-b"];
    let apps = ["blast"];
    let users = [ALICE];

    {
        let tb = Testbed::calibrated();
        let grid = WsrfGrid::deploy(&tb, policy, &hosts, &apps, &users);
        let mut s = grid.scenario(tb.client("client-1", ALICE, policy));
        drive("WSRF / WS-Notification (5 services)", &mut s, &tb);
    }
    {
        let tb = Testbed::calibrated();
        let grid = TransferGrid::deploy(&tb, policy, &hosts, &apps, &users);
        let mut s = grid.scenario(tb.client("client-1", ALICE, policy));
        drive("WS-Transfer / WS-Eventing (4 services)", &mut s, &tb);
    }
}
