//! WS-BrokeredNotification with demand-based publishing — the machinery the
//! paper's §3.1 estimates generates "an order of magnitude at a minimum"
//! more messages than any other interaction, involving up to six services.
//!
//! ```text
//! cargo run --example brokered_notification
//! ```

use std::sync::Arc;
use std::time::Duration;

use ogsa_grid::container::{Operation, OperationContext, Testbed, WebService};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::soap::Fault;
use ogsa_grid::wsn::base::{actions, SubscribeRequest};
use ogsa_grid::wsn::manager::{SubscriptionManagerService, SubscriptionProxy};
use ogsa_grid::wsn::{
    BrokerService, NotificationConsumer, NotificationProducer, TopicExpression, TopicPath,
};
use ogsa_grid::xml::Element;

/// A minimal notification producer (the "publisher").
struct Publisher {
    producer: NotificationProducer,
}

impl WebService for Publisher {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault> {
        match op.action_name() {
            "Subscribe" => {
                let req = SubscribeRequest::from_element(&op.body)
                    .ok_or_else(|| Fault::client("bad subscribe"))?;
                let epr = self.producer.store().subscribe(ctx, &req)?;
                Ok(SubscribeRequest::response(&epr))
            }
            other => Err(Fault::client(format!("unknown op {other}"))),
        }
    }
}

fn main() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);

    // Publisher + its subscription manager.
    let (_mgr, store) = SubscriptionManagerService::deploy(&container, "/services/Pub/manager");
    let producer = NotificationProducer::new(store, container.service_agent());
    let publisher_epr = container.deploy(
        "/services/Pub",
        Arc::new(Publisher {
            producer: producer.clone(),
        }),
    );

    // The broker.
    let broker = BrokerService::deploy(&container, "/services/Broker");
    let client = tb.client("client-1", "CN=alice", SecurityPolicy::None);
    let topic = TopicPath::parse("counter/valueChanged").unwrap();

    let stats = tb.network().stats().clone();
    let checkpoint = |label: &str, last: u64| -> u64 {
        let now = stats.messages();
        println!("{label:<55} (+{} messages, total {now})", now - last);
        now
    };

    let mut mark = stats.messages();
    println!("-- demand-based registration --");
    client
        .invoke(
            broker.epr(),
            "urn:wsbn/RegisterPublisher",
            BrokerService::register_request(&publisher_epr, &topic, true),
        )
        .unwrap();
    mark = checkpoint(
        "RegisterPublisher (broker subscribes upstream + pauses)",
        mark,
    );
    println!(
        "  upstream subscription active? {}",
        broker.registrations()[0].active
    );

    println!("-- a consumer appears --");
    let consumer = NotificationConsumer::listen(&client, "/consumer");
    let req = SubscribeRequest::new(
        consumer.epr().clone(),
        TopicExpression::concrete("counter/valueChanged"),
    );
    let resp = client
        .invoke(broker.epr(), actions::SUBSCRIBE, req.to_element())
        .unwrap();
    let sub = SubscribeRequest::parse_response(&resp).unwrap();
    mark = checkpoint(
        "Subscribe at broker (demand appears, upstream resumed)",
        mark,
    );
    println!(
        "  upstream subscription active? {}",
        broker.registrations()[0].active
    );

    println!("-- the publisher emits --");
    producer.notify(&topic, Element::text_element("NewValue", "42"));
    let delivery = consumer
        .recv_timeout(Duration::from_secs(5))
        .expect("brokered delivery");
    mark = checkpoint("Notify publisher → broker inbox → consumer", mark);
    if let ogsa_grid::wsn::consumer::Delivery::Wrapped(n) = delivery {
        println!(
            "  consumer received `{}` on topic {}",
            n.message.text(),
            n.topic
        );
    }

    println!("-- the consumer leaves --");
    SubscriptionProxy::new(&client).unsubscribe(&sub).unwrap();
    broker.recheck_demand();
    checkpoint("Unsubscribe + demand recheck (upstream paused again)", mark);
    println!(
        "  upstream subscription active? {}",
        broker.registrations()[0].active
    );

    println!(
        "\ntotal: {} messages for one registration/subscription/event/teardown;\n\
         a direct subscribe+notify costs 3 — the paper's amplification claim.",
        stats.messages()
    );
}
