//! Causal tracing end to end: invoke counter operations on the WSRF stack
//! with tracing on, then print the span tree, the component breakdown, and
//! the metrics — and drop Chrome-trace + JSONL dumps you can open in
//! Perfetto or diff across runs.
//!
//! ```text
//! cargo run --example traced_job
//! ```

use std::time::Duration;

use ogsa_grid::container::Testbed;
use ogsa_grid::counter::{CounterApi, WsrfCounter};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::telemetry::analysis::self_time_breakdown;
use ogsa_grid::telemetry::export::{metrics_to_json, spans_to_chrome_trace, spans_to_jsonl};

fn main() {
    let tb = Testbed::calibrated();
    // Synchronous delivery: notifications are delivered inline on the
    // calling thread, so every span lands in one deterministic order.
    tb.network().set_synchronous_oneways(true);

    let container = tb.container("host-a", SecurityPolicy::X509Sign);
    let agent = tb.client("host-b", "CN=alice,O=UVA-VO", SecurityPolicy::X509Sign);
    let api = WsrfCounter::deploy(&container).client(agent);

    let c = api.create().expect("create");
    let waiter = api.subscribe(&c).expect("subscribe");
    api.set(&c, 42).expect("set");
    waiter.wait(Duration::from_secs(5)).expect("notification");
    api.get(&c).expect("get");
    api.destroy(&c).expect("destroy");

    let spans = tb.telemetry().take_spans();

    // The span tree: every client invoke is one trace; the trace id rides
    // the simulated wire in tel:TraceId/tel:SpanId SOAP headers, so the
    // server pipeline, database ops, signatures, and notification
    // deliveries all join the caller's trace.
    println!("== span forest ({} spans) ==", spans.len());
    let mut sorted = spans.clone();
    sorted.sort_by_key(|s| (s.trace, s.start, s.id));
    let mut current_trace = None;
    for s in &sorted {
        if current_trace != Some(s.trace) {
            current_trace = Some(s.trace);
            println!("trace {}", s.trace.to_hex());
        }
        let depth = {
            // Walk the parent chain for indentation.
            let mut d = 0;
            let mut p = s.parent;
            while let Some(pid) = p {
                d += 1;
                p = sorted.iter().find(|x| x.id == pid).and_then(|x| x.parent);
            }
            d
        };
        println!(
            "  {:indent$}{} [{}] {}..{} ({} us)",
            "",
            s.name,
            s.kind.as_str(),
            s.start.0,
            s.end.0,
            s.duration().as_micros(),
            indent = depth * 2
        );
    }

    // Where the virtual milliseconds went.
    let fold = self_time_breakdown(&spans);
    println!("\n== self-time breakdown ==");
    for (kind, t) in &fold.self_time {
        println!("  {kind:<10} {:>10.2} ms", t.as_millis());
    }
    println!(
        "  {:<10} {:>10.2} ms ({} roots)",
        "total",
        fold.total.as_millis(),
        fold.roots
    );

    println!("\n== metrics ==");
    println!("{}", metrics_to_json(&tb.telemetry().metrics().snapshot()));

    std::fs::create_dir_all("bench-artifacts").expect("mkdir bench-artifacts");
    std::fs::write(
        "bench-artifacts/traced_job.chrome.json",
        spans_to_chrome_trace(&spans),
    )
    .expect("write chrome trace");
    std::fs::write(
        "bench-artifacts/traced_job.spans.jsonl",
        spans_to_jsonl(&spans),
    )
    .expect("write jsonl");
    println!(
        "\nwrote bench-artifacts/traced_job.chrome.json (open in chrome://tracing or Perfetto)"
    );
    println!("wrote bench-artifacts/traced_job.spans.jsonl (byte-identical across same-seed runs)");
}
