//! Quickstart: stand up the simulated 2005 testbed, deploy the "hello
//! world" counter service on **both** software stacks, and run the five
//! operations the paper measures.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use ogsa_grid::container::Testbed;
use ogsa_grid::counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_grid::security::SecurityPolicy;

fn main() {
    // A testbed = virtual clock + calibrated cost model + simulated
    // network + PKI, standing in for the paper's two Opteron machines.
    let tb = Testbed::calibrated();

    // One container on host-a, services from both stacks deployed into it
    // (exactly the paper's setup: same container architecture, two stacks).
    let container = tb.container("host-a", SecurityPolicy::None);
    let wsrf = WsrfCounter::deploy(&container);
    let transfer = TransferCounter::deploy(&container);

    // A client on another machine (the "distributed" scenario).
    let apis: Vec<Box<dyn CounterApi>> = vec![
        Box::new(wsrf.client(tb.client("host-b", "CN=alice,O=UVA-VO", SecurityPolicy::None))),
        Box::new(transfer.client(tb.client("host-b", "CN=alice,O=UVA-VO", SecurityPolicy::None))),
    ];

    for api in &apis {
        println!("== {} ==", api.stack_name());
        let t0 = tb.clock().now();

        let counter = api.create().expect("create");
        println!(
            "  created counter: {}",
            counter.resource_id().unwrap_or("<no id>")
        );

        api.set(&counter, 41).expect("set");
        println!("  set to 41, get -> {}", api.get(&counter).expect("get"));

        // Asynchronous notification: subscribe, change the value, wait.
        let waiter = api.subscribe(&counter).expect("subscribe");
        api.set(&counter, 42).expect("set");
        let notified = waiter.wait(Duration::from_secs(5)).expect("notification");
        println!("  notification says the value is now {notified}");

        api.destroy(&counter).expect("destroy");
        println!("  destroyed; get now fails: {}", api.get(&counter).is_err());

        println!(
            "  total virtual time: {:.1} ms\n",
            tb.clock().now().since(t0).as_millis()
        );
    }

    println!(
        "wire traffic: {} messages, {} bytes",
        tb.network().stats().messages(),
        tb.network().stats().bytes()
    );
}
