//! The paper's §4.1 evaluation in miniature: run the "hello world" counter
//! sweep under all three security policies and print Figure-2/3/4-shaped
//! tables.
//!
//! ```text
//! cargo run --release --example counter_comparison
//! ```
//!
//! (The full-resolution regeneration binaries live in `ogsa-bench`:
//! `cargo run --release -p ogsa-bench --bin fig2` etc.)

use ogsa_grid::hello::{run, HelloConfig};
use ogsa_grid::report::render_hello;
use ogsa_grid::security::SecurityPolicy;

fn main() {
    for (title, policy) in [
        (
            "Figure 2: Testing \"Hello World\" with no security",
            SecurityPolicy::None,
        ),
        (
            "Figure 3: Testing \"Hello World\" over HTTPS",
            SecurityPolicy::Https,
        ),
        (
            "Figure 4: Testing \"Hello World\" with X.509 Signing",
            SecurityPolicy::X509Sign,
        ),
    ] {
        let rows = run(HelloConfig {
            policy,
            iterations: 6,
        });
        println!("{}", render_hello(title, &rows));
    }

    println!("Reading the tables against the paper's findings:");
    println!(" * both stacks are comparable; WSRF.NET slightly faster (cache, optimisation)");
    println!(" * Create is the slowest CRUD op (Xindice insert)");
    println!(" * Notify favours WS-Eventing (TCP push vs HTTP delivery)");
    println!(" * X.509 signing dominates everything and flattens the differences");
}
