//! The counter scenario on both stacks over an *unreliable* wire: a seeded
//! fault schedule drops, delays, duplicates, and garbles messages while
//! retry/redelivery budgets carry the scenario through. Run twice with the
//! same seed and the fault ledger replays bit-for-bit.
//!
//! ```bash
//! cargo run --example chaos_counter              # seed 42
//! cargo run --example chaos_counter -- 7         # another schedule
//! cargo run --example chaos_counter -- 7 --blackhole   # 100% loss: budgets exhaust
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

use ogsa_grid::container::Testbed;
use ogsa_grid::counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::sim::SimDuration;
use ogsa_grid::transport::{FaultPlan, RetryPolicy};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let blackhole = args.next().as_deref() == Some("--blackhole");

    for stack in ["wsrf", "transfer"] {
        run(stack, seed, blackhole);
    }
}

fn run(stack: &str, seed: u64, blackhole: bool) {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    container.set_redelivery(Some(RetryPolicy::default_redelivery(seed)));
    // Default budget is 4 attempts; at ~25% injected loss that still
    // exhausts on ~0.4% of calls, so the demo carries a deeper budget
    // (the blackhole mode below shows exhaustion instead).
    let retry = if blackhole {
        RetryPolicy::default_call(seed)
    } else {
        RetryPolicy::default_call(seed).with_max_attempts(10)
    };
    let agent = tb
        .client("host-b", "CN=alice,O=UVA-VO", SecurityPolicy::None)
        .with_retry(retry);
    let api: Box<dyn CounterApi> = match stack {
        "wsrf" => Box::new(WsrfCounter::deploy(&container).client(agent)),
        _ => Box::new(TransferCounter::deploy(&container).client(agent)),
    };

    let plan = if blackhole {
        FaultPlan::seeded(seed).with_drops(1.0)
    } else {
        FaultPlan::seeded(seed)
            .with_drops(0.15)
            .with_delays(0.2, SimDuration::from_millis(5.0))
            .with_duplicates(0.1)
            .with_garbles(0.1)
    };
    tb.network().set_fault_plan(plan);

    println!("== {} under chaos (seed {seed}) ==", api.stack_name());
    let counter = match api.create() {
        Ok(epr) => epr,
        Err(e) => {
            println!("  create failed after exhausting retries: {e}");
            return;
        }
    };
    let waiter = api.subscribe(&counter).expect("subscribe");
    for v in 1..=5 {
        api.set(&counter, v).expect("set");
        tb.network().quiesce(Duration::from_secs(5));
    }
    let mut announced = BTreeSet::new();
    while let Some(v) = waiter.wait(Duration::from_millis(200)) {
        announced.insert(v);
    }

    let s = tb.network().stats().snapshot();
    println!(
        "  final value: {} (5 sets)",
        api.get(&counter).expect("get")
    );
    println!("  values announced (deduped): {announced:?}");
    println!(
        "  injected: {} drops, {} delays, {} duplicates, {} garbles",
        s.injected_drops, s.injected_delays, s.injected_duplicates, s.injected_garbles
    );
    println!(
        "  absorbed: {} retries, {} timeouts, {} dead letters",
        s.retries, s.timeouts, s.dead_letters
    );
}
