//! # ogsa-grid
//!
//! Umbrella crate for the reproduction of *"Alternative Software Stacks for
//! OGSA-based Grids"* (Humphrey et al., SC 2005). Re-exports the public API
//! of [`ogsa_core`], which in turn exposes both software stacks
//! (WSRF/WS-Notification and WS-Transfer/WS-Eventing), the shared substrate,
//! the two applications (counter and Grid-in-a-Box), and the comparison
//! harness that regenerates the paper's figures.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use ogsa_core::*;
