//! End-to-end crash/restart: a WSRF container whose host database sits on
//! the durable WAL backend is killed mid-`createBatch` and rebooted. The
//! paper's stack survives with exactly the durability the WAL promises —
//! every fsync-acked resource operation converges after the restart, and
//! the torn batch vanishes wholly (its single WAL record never became
//! durable), never as a half-created group of resources.

use ogsa_grid::container::Testbed;
use ogsa_grid::counter::{CounterApi, WsrfCounter};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::xmldb::{CrashPoint, DurableConfig};

fn deploy(tb: &Testbed) -> ogsa_grid::counter::WsrfCounterClient {
    let container = tb.container("host-a", SecurityPolicy::None);
    let service = WsrfCounter::deploy(&container);
    service.client(tb.client("host-b", "CN=alice,O=VO", SecurityPolicy::None))
}

#[test]
fn killing_a_container_mid_batch_keeps_acked_counters_and_drops_the_batch_wholly() {
    let tb = Testbed::free().with_durable(DurableConfig::default());
    let api = deploy(&tb);

    // Fsync-acked state: two counters with distinct values (create + set
    // are one WAL record each under the per-write policy).
    let c1 = api.create().unwrap();
    let c2 = api.create().unwrap();
    api.set(&c1, 7).unwrap();
    api.set(&c2, 40).unwrap();

    let backend = tb.durable("host-a").expect("durable testbed");
    let acked_before = backend.acked_ops();
    assert!(acked_before >= 4, "creates and sets are fsynced");

    // Power loss a few bytes into the batch's single WAL record.
    backend
        .sim_medium()
        .unwrap()
        .arm(CrashPoint::AtByte(backend.wal_len() + 16));
    let batch = api
        .create_many(8)
        .expect("the in-memory store keeps serving");
    assert_eq!(batch.len(), 8);
    assert!(backend.has_failed(), "the WAL medium is down");
    // Pre-restart the doomed resources still answer — disk-died semantics.
    assert!(api.get(&batch[0]).is_ok());

    // Reboot the host: in-memory state is discarded, the WAL replays.
    let report = tb.restart_host("host-a").unwrap();
    assert!(report.torn.is_some(), "the batch record is torn");
    assert_eq!(
        report.docs as u64 + 2,
        acked_before,
        "2 creates + 2 sets → 2 docs"
    );

    // Redeploy (a real operator would restart the container process) and
    // aim the *old* EPRs at it: the acked counters converge...
    let api2 = deploy(&tb);
    assert_eq!(api2.get(&c1).unwrap(), 7);
    assert_eq!(api2.get(&c2).unwrap(), 40);
    // ...the unacked batch is gone — all eight of it, not a half-batch.
    for epr in &batch {
        assert!(
            api2.get(epr).is_err(),
            "torn batch resource survived the crash"
        );
    }
    // The recovered resources are live WSRF resources, not a read-only echo.
    api2.set(&c1, 8).unwrap();
    assert_eq!(api2.get(&c1).unwrap(), 8);
    assert_eq!(tb.telemetry().metrics().counter("wal.recoveries", &[]), 1);
}

#[test]
fn a_clean_restart_converges_every_resource_including_batches() {
    let tb = Testbed::free().with_durable(DurableConfig::default());
    let api = deploy(&tb);

    let single = api.create().unwrap();
    api.set(&single, 3).unwrap();
    let batch = api.create_many(6).unwrap();
    api.set(&batch[2], 99).unwrap();

    let report = tb.restart_host("host-a").unwrap();
    assert_eq!(report.torn, None);
    assert_eq!(report.docs, 7);

    let api2 = deploy(&tb);
    assert_eq!(api2.get(&single).unwrap(), 3);
    assert_eq!(api2.get(&batch[2]).unwrap(), 99);
    for (i, epr) in batch.iter().enumerate() {
        if i != 2 {
            assert_eq!(api2.get(epr).unwrap(), 0, "batch counter {i}");
        }
    }
    // Destroy works on recovered resources and is logged durably: a second
    // restart must not resurrect the destroyed counter.
    api2.destroy(&batch[0]).unwrap();
    tb.restart_host("host-a").unwrap();
    let api3 = deploy(&tb);
    assert!(api3.get(&batch[0]).is_err(), "destroy survived the restart");
    assert_eq!(api3.get(&batch[1]).unwrap(), 0);
}
