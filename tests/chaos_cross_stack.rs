//! Chaos tests: both stacks, same seeded fault schedule, equivalent
//! behaviour. The simulated wire drops, delays, duplicates, and garbles
//! messages according to a pure function of (seed, edge, sequence number),
//! so every run of a scenario under the same seed injects *exactly* the
//! same faults — which lets us assert bit-level reproducibility (identical
//! `NetStatsSnapshot`s) on top of the paper's functional equivalence claim.
//!
//! No partitions here: partition windows are judged against the live
//! virtual clock on the request path, which is only deterministic under a
//! serialized schedule. Drops/delays/duplicates/garbles are judged purely
//! by sequence number and are schedule-independent.

use std::collections::BTreeSet;
use std::time::Duration;

use ogsa_grid::container::Testbed;
use ogsa_grid::counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_grid::gridbox::{GridScenario, TransferGrid, WsrfGrid};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::sim::SimDuration;
use ogsa_grid::transport::{FaultPlan, NetStatsSnapshot, RetryPolicy};

/// Three independent fault schedules — the issue asks for at least three.
const SEEDS: &[u64] = &[11, 23, 47];
/// Counter mutations per scenario.
const SETS: i64 = 8;
/// Wall-clock bound for draining the async delivery queue (virtual-time
/// backoffs resolve almost instantly in wall time).
const DRAIN: Duration = Duration::from_secs(10);
/// Wall-clock wait for one already-quiesced notification hop.
const NOTE_WAIT: Duration = Duration::from_millis(250);
const ALICE: &str = "CN=alice,O=UVA-VO";

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stack {
    Wsrf,
    Transfer,
}

/// Roughly one fault per 2.5 messages: drops and garbles force the retry
/// path, delays exercise deadlines without tripping them, duplicates
/// exercise at-least-once delivery.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_drops(0.15)
        .with_delays(0.2, SimDuration::from_millis(5.0))
        .with_duplicates(0.1)
        .with_garbles(0.1)
}

/// Generous budgets so no scripted schedule above can exhaust them:
/// p(10 consecutive losses at 25%) ≈ 1e-6 per call, and the decisions are
/// seed-fixed anyway — once a seed passes, it always passes.
fn call_policy(seed: u64) -> RetryPolicy {
    RetryPolicy::default_call(seed).with_max_attempts(10)
}

fn redelivery_policy(seed: u64) -> RetryPolicy {
    RetryPolicy::default_redelivery(seed).with_max_attempts(6)
}

/// Everything observable a counter run produces. Two runs under the same
/// (stack, seed) must compare equal on ALL of it.
#[derive(Debug, PartialEq, Eq)]
struct CounterOutcome {
    final_value: i64,
    /// Distinct values announced through the subscription — duplicates
    /// collapse, which is exactly the "modulo duplicates" equivalence the
    /// stacks promise under at-least-once delivery.
    notified: BTreeSet<i64>,
    stats: NetStatsSnapshot,
    dead_letters: usize,
}

fn run_counter(stack: Stack, seed: u64) -> CounterOutcome {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    // Before deploy: notification agents capture the policy at construction.
    container.set_redelivery(Some(redelivery_policy(seed)));
    let agent = tb
        .client("host-b", "CN=alice", SecurityPolicy::None)
        .with_retry(call_policy(seed));
    let api: Box<dyn CounterApi> = match stack {
        Stack::Wsrf => Box::new(WsrfCounter::deploy(&container).client(agent)),
        Stack::Transfer => Box::new(TransferCounter::deploy(&container).client(agent)),
    };

    tb.network().set_fault_plan(chaos_plan(seed));

    let counter = api.create().expect("create under chaos");
    let waiter = api.subscribe(&counter).expect("subscribe under chaos");
    for v in 1..=SETS {
        api.set(&counter, v).expect("set under chaos");
        assert!(tb.network().quiesce(DRAIN), "delivery queue drained");
    }
    let final_value = api.get(&counter).expect("get under chaos");

    let mut notified = BTreeSet::new();
    while let Some(v) = waiter.wait(NOTE_WAIT) {
        notified.insert(v);
    }

    api.destroy(&counter).expect("destroy under chaos");
    assert!(tb.network().quiesce(DRAIN));
    CounterOutcome {
        final_value,
        notified,
        stats: tb.network().stats().snapshot(),
        dead_letters: tb.network().dead_letters().len(),
    }
}

#[test]
fn counter_chaos_is_reproducible_and_stacks_agree() {
    for &seed in SEEDS {
        let mut per_stack = Vec::new();
        for stack in [Stack::Wsrf, Stack::Transfer] {
            let first = run_counter(stack, seed);
            let second = run_counter(stack, seed);
            assert_eq!(
                first, second,
                "{stack:?}/seed {seed}: same seed must replay the same run"
            );
            assert!(
                first.stats.faults_injected() > 0,
                "{stack:?}/seed {seed}: the chaos plan actually fired"
            );
            assert!(
                first.stats.retries > 0,
                "{stack:?}/seed {seed}: losses were retried, not absorbed"
            );
            assert_eq!(first.dead_letters, 0, "{stack:?}/seed {seed}: budgets held");
            per_stack.push(first);
        }
        let (wsrf, transfer) = (&per_stack[0], &per_stack[1]);
        // Functional equivalence across stacks: same final state, same set
        // of announced values (duplicates collapsed).
        assert_eq!(wsrf.final_value, SETS);
        assert_eq!(transfer.final_value, SETS);
        assert_eq!(
            wsrf.notified, transfer.notified,
            "seed {seed}: stacks announce the same value set modulo duplicates"
        );
        let expected: BTreeSet<i64> = (1..=SETS).collect();
        assert_eq!(
            wsrf.notified, expected,
            "seed {seed}: no update went missing"
        );
    }
}

#[derive(Debug, PartialEq, Eq)]
struct GridOutcome {
    exit_code: i32,
    stats: NetStatsSnapshot,
    dead_letters: usize,
}

fn run_grid(stack: Stack, seed: u64) -> GridOutcome {
    let tb = Testbed::free();
    let policy = SecurityPolicy::None;
    let hosts = ["site-a", "site-b"];
    let apps = ["blast"];
    let users = [ALICE];
    let agent = tb
        .client("client-1", ALICE, policy)
        .with_retry(call_policy(seed));
    match stack {
        Stack::Wsrf => {
            let grid = WsrfGrid::deploy(&tb, policy, &hosts, &apps, &users);
            drive_grid(&mut grid.scenario(agent), &tb, seed)
        }
        Stack::Transfer => {
            let grid = TransferGrid::deploy(&tb, policy, &hosts, &apps, &users);
            drive_grid(&mut grid.scenario(agent), &tb, seed)
        }
    }
}

fn drive_grid(scenario: &mut dyn GridScenario, tb: &Testbed, seed: u64) -> GridOutcome {
    // Arm after deploy: the VO's own bootstrap is not part of the measured
    // scenario (and deploy-time agents carry no retry budget).
    tb.network().set_fault_plan(chaos_plan(seed));

    scenario
        .get_available_resource("blast")
        .expect("discover under chaos");
    scenario.make_reservation().expect("reserve under chaos");
    scenario
        .upload_file("input.dat", 8 * 1024)
        .expect("upload under chaos");
    scenario
        .instantiate_job(SimDuration::from_millis(500.0))
        .expect("start under chaos");
    let exit_code = scenario.finish_job(DRAIN).expect("finish under chaos");
    scenario
        .delete_file("input.dat")
        .expect("delete under chaos");
    scenario
        .unreserve_resource()
        .expect("unreserve under chaos");

    assert!(tb.network().quiesce(DRAIN));
    GridOutcome {
        exit_code,
        stats: tb.network().stats().snapshot(),
        dead_letters: tb.network().dead_letters().len(),
    }
}

#[test]
fn grid_in_a_box_chaos_is_reproducible_on_both_stacks() {
    for &seed in SEEDS {
        for stack in [Stack::Wsrf, Stack::Transfer] {
            let first = run_grid(stack, seed);
            let second = run_grid(stack, seed);
            assert_eq!(
                first, second,
                "{stack:?}/seed {seed}: same seed must replay the same run"
            );
            // Equivalent final state: the job ran to completion and exited
            // cleanly on both stacks despite the unreliable wire.
            assert_eq!(first.exit_code, 0, "{stack:?}/seed {seed}");
            assert!(
                first.stats.faults_injected() > 0,
                "{stack:?}/seed {seed}: the chaos plan actually fired"
            );
            assert_eq!(first.dead_letters, 0, "{stack:?}/seed {seed}: budgets held");
        }
    }
}
