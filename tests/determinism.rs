//! Reproducibility: the figure harness is deterministic run-to-run, so the
//! regenerated tables in EXPERIMENTS.md are stable artefacts, not samples.

use ogsa_grid::grid::{self, GridConfig};
use ogsa_grid::hello::{self, HelloConfig};
use ogsa_grid::report;
use ogsa_grid::security::SecurityPolicy;

#[test]
fn hello_world_runs_are_bit_identical() {
    let config = HelloConfig {
        policy: SecurityPolicy::None,
        iterations: 3,
    };
    let a = hello::run(config);
    let b = hello::run(config);
    assert_eq!(a, b);
    assert_eq!(
        report::render_hello("Figure 2", &a),
        report::render_hello("Figure 2", &b)
    );
}

#[test]
fn grid_runs_are_bit_identical() {
    let config = GridConfig {
        iterations: 2,
        ..GridConfig::default()
    };
    let a = grid::run(config);
    let b = grid::run(config);
    assert_eq!(a, b);
}

#[test]
fn signed_runs_are_deterministic_too() {
    // Signing involves digests over generated ids; determinism must
    // survive the whole security pipeline.
    let config = HelloConfig {
        policy: SecurityPolicy::X509Sign,
        iterations: 2,
    };
    assert_eq!(hello::run(config), hello::run(config));
}

#[test]
fn broker_amplification_is_deterministic() {
    let a = ogsa_grid::ablation::broker_amplification(2);
    let b = ogsa_grid::ablation::broker_amplification(2);
    assert_eq!(a, b);
}
