//! Reproducibility: the figure harness is deterministic run-to-run, so the
//! regenerated tables in EXPERIMENTS.md are stable artefacts, not samples.

use ogsa_grid::grid::{self, GridConfig};
use ogsa_grid::hello::{self, HelloConfig};
use ogsa_grid::report;
use ogsa_grid::security::SecurityPolicy;

#[test]
fn hello_world_runs_are_bit_identical() {
    let config = HelloConfig {
        policy: SecurityPolicy::None,
        iterations: 3,
    };
    let a = hello::run(config);
    let b = hello::run(config);
    assert_eq!(a, b);
    assert_eq!(
        report::render_hello("Figure 2", &a),
        report::render_hello("Figure 2", &b)
    );
}

#[test]
fn grid_runs_are_bit_identical() {
    let config = GridConfig {
        iterations: 2,
        ..GridConfig::default()
    };
    let a = grid::run(config);
    let b = grid::run(config);
    assert_eq!(a, b);
}

#[test]
fn signed_runs_are_deterministic_too() {
    // Signing involves digests over generated ids; determinism must
    // survive the whole security pipeline.
    let config = HelloConfig {
        policy: SecurityPolicy::X509Sign,
        iterations: 2,
    };
    assert_eq!(hello::run(config), hello::run(config));
}

#[test]
fn broker_amplification_is_deterministic() {
    let a = ogsa_grid::ablation::broker_amplification(2);
    let b = ogsa_grid::ablation::broker_amplification(2);
    assert_eq!(a, b);
}

/// Run a chaotic counter workload under full tracing and dump the span
/// forest. In synchronous-delivery mode every delivery (and every injected
/// fault, backoff, and redelivery) happens inline on one thread against the
/// virtual clock, so the dump is a pure function of the seed.
fn traced_span_dump(seed: u64) -> String {
    use ogsa_grid::container::Testbed;
    use ogsa_grid::counter::{CounterApi, WsrfCounter};
    use ogsa_grid::sim::SimDuration;
    use ogsa_grid::telemetry::export::spans_to_jsonl;
    use ogsa_grid::transport::{FaultPlan, RetryPolicy};
    use std::time::Duration;

    let tb = Testbed::calibrated();
    tb.network().set_synchronous_oneways(true);
    tb.network().set_fault_plan(
        FaultPlan::seeded(seed)
            .with_drops(0.15)
            .with_delays(0.2, SimDuration::from_millis(5.0))
            .with_duplicates(0.1),
    );
    let container = tb.container("host-a", SecurityPolicy::None);
    let agent = tb
        .client("host-b", "CN=alice,O=UVA-VO", SecurityPolicy::None)
        .with_retry(RetryPolicy::default_call(seed).with_max_attempts(10))
        .with_redelivery(RetryPolicy::default_redelivery(seed).with_max_attempts(6));
    let api = WsrfCounter::deploy(&container).client(agent);

    let c = api.create().expect("create");
    let waiter = api.subscribe(&c).expect("subscribe");
    for i in 0..6 {
        api.set(&c, i).expect("set");
        // A notification can be legitimately lost to an exhausted
        // redelivery budget; the dump still records every attempt.
        let _ = waiter.wait(Duration::from_millis(100));
    }
    api.get(&c).expect("get");
    api.destroy(&c).expect("destroy");
    spans_to_jsonl(&tb.telemetry().take_spans())
}

#[test]
fn same_seed_span_dumps_are_byte_identical() {
    let a = traced_span_dump(11);
    let b = traced_span_dump(11);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must replay byte-identically");
}

#[test]
fn different_seeds_produce_different_span_dumps() {
    assert_ne!(
        traced_span_dump(11),
        traced_span_dump(12),
        "different fault schedules must leave different traces"
    );
}
