//! Cross-stack integration tests, driven through the `ogsa-grid` umbrella
//! API: the paper's §5 "switching stacks" questions made executable.

use std::sync::Arc;

use ogsa_grid::addressing::EndpointReference;
use ogsa_grid::container::{InvokeError, Testbed};
use ogsa_grid::counter::{CounterApi, TransferCounter, WsrfCounter};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::soap::Envelope;
use ogsa_grid::transfer::{DefaultTransferLogic, TransferProxy, TransferService};
use ogsa_grid::wsrf::WsrfProxy;
use ogsa_grid::xml::Element;

#[test]
fn both_stacks_coexist_in_one_container() {
    // The same container hosts services from both stacks — as the paper's
    // testbed did. State does not leak across them.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let wsrf = WsrfCounter::deploy(&container);
    let transfer = TransferCounter::deploy(&container);

    let wsrf_api = wsrf.client(tb.client("host-b", "CN=a", SecurityPolicy::None));
    let wxf_api = transfer.client(tb.client("host-b", "CN=a", SecurityPolicy::None));

    let c1 = wsrf_api.create().unwrap();
    let c2 = wxf_api.create().unwrap();
    wsrf_api.set(&c1, 10).unwrap();
    wxf_api.set(&c2, 20).unwrap();
    assert_eq!(wsrf_api.get(&c1).unwrap(), 10);
    assert_eq!(wxf_api.get(&c2).unwrap(), 20);
}

#[test]
fn a_wsrf_client_cannot_simply_be_aimed_at_a_transfer_service() {
    // §5: "an existing WSRF-speaking client cannot simply be aimed at the
    // 'corresponding' WS-Transfer-based services." The failure is a clean
    // fault, not a hang or a panic — both stacks are WS-I compliant SOAP.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let transfer = TransferCounter::deploy(&container);
    let client = tb.client("host-b", "CN=a", SecurityPolicy::None);

    // Address a transfer resource with WSRF GetResourceProperty.
    let wxf_api = transfer.client(client.clone());
    let counter = wxf_api.create().unwrap();
    let err = WsrfProxy::new(&client)
        .get_property(&counter, "cv")
        .unwrap_err();
    assert!(matches!(err, InvokeError::Fault(f) if f.reason.contains("does not define")));
}

#[test]
fn a_transfer_client_cannot_crud_a_wsrf_service() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let wsrf = WsrfCounter::deploy(&container);
    let client = tb.client("host-b", "CN=a", SecurityPolicy::None);

    let wsrf_api = wsrf.client(client.clone());
    let counter = wsrf_api.create().unwrap();
    // WS-Transfer Get against the WSRF counter: clean fault.
    let err = TransferProxy::new(&client).get(&counter).unwrap_err();
    assert!(matches!(err, InvokeError::Fault(_)));
}

#[test]
fn wire_messages_are_wsi_interoperable_xml() {
    // Any WS-I-compliant client can at least *parse* either stack's
    // messages (§2.1). Capture a live wire message from each stack and
    // re-parse it through the shared envelope layer.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);

    // Deploy a tap that records what arrives.
    let seen = Arc::new(parking_lot_mutex());
    let seen2 = seen.clone();
    container.network().bind(
        "http://host-a/tap",
        Arc::new(move |env: Envelope| {
            seen2.lock().push(env.to_wire());
            Envelope::new(Element::new("Ok"))
        }),
    );

    let client = tb.client("host-b", "CN=a", SecurityPolicy::None);
    let tap = EndpointReference::resource("http://host-a/tap", "r-1");
    // A WSRF-shaped request and a transfer-shaped request both hit the tap.
    let _ = WsrfProxy::new(&client).get_property(&tap, "cv");
    let _ = TransferProxy::new(&client).get(&tap);

    let wires = seen.lock().clone();
    assert_eq!(wires.len(), 2);
    for wire in &wires {
        let env = Envelope::from_wire(wire).expect("WS-I parseable");
        assert!(!env.headers.is_empty(), "addressing headers present");
        assert!(wire.contains("soap:Envelope"));
    }
}

fn parking_lot_mutex() -> parking_lot::Mutex<Vec<String>> {
    parking_lot::Mutex::new(Vec::new())
}

#[test]
fn transfer_services_host_multiple_resource_types_wsrf_services_one() {
    // §2.3: WSRF encourages one resource type per service; WS-Transfer
    // allows many. The unified allocation service in Grid-in-a-Box holds
    // sites AND reservations; WSRF needed two services.
    use ogsa_grid::gridbox::{TransferGrid, WsrfGrid};

    let tb = Testbed::free();
    let tg = TransferGrid::deploy(
        &tb,
        SecurityPolicy::None,
        &["site-a"],
        &["blast"],
        &["CN=alice,O=VO"],
    );
    // One address serves both resource kinds.
    assert!(tg.allocation_epr.address.contains("ResourceAllocation"));

    let tb = Testbed::free();
    let wg = WsrfGrid::deploy(
        &tb,
        SecurityPolicy::None,
        &["site-a"],
        &["blast"],
        &["CN=alice,O=VO"],
    );
    // Two separate services on the WSRF side.
    assert_ne!(wg.allocation_epr.address, wg.reservation_epr.address);
}

#[test]
fn switching_direction_matters() {
    // §5: "Switching from WS-Transfer/WS-Eventing to WSRF/WS-Notification
    // is likely easier, as applications built using the additional
    // functionality in WSRF would have to re-invent these extras."
    // Concretely: the transfer stack has no scheduled termination, so a
    // WSRF app relying on it cannot port without re-implementing it.
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (factory, _) = TransferService::deploy(
        &container,
        "/services/Plain",
        Arc::new(DefaultTransferLogic),
    );
    let client = tb.client("host-b", "CN=a", SecurityPolicy::None);
    let (resource, _) = TransferProxy::new(&client)
        .create(&factory, Element::text_element("doc", "x"))
        .unwrap();
    // SetTerminationTime is simply not part of the interface.
    let err = WsrfProxy::new(&client)
        .set_termination_time(&resource, ogsa_grid::wsrf::TerminationTime::Never)
        .unwrap_err();
    assert!(matches!(err, InvokeError::Fault(_)));
}

#[test]
fn five_operations_equivalent_across_stacks_and_policies() {
    // The headline: "overwhelmingly equivalent in their functionality."
    for policy in SecurityPolicy::all() {
        let tb = Testbed::free();
        let container = tb.container("host-a", policy);
        let apis: Vec<Box<dyn CounterApi>> = vec![
            Box::new(WsrfCounter::deploy(&container).client(tb.client("host-b", "CN=a", policy))),
            Box::new(
                TransferCounter::deploy(&container).client(tb.client("host-b", "CN=a", policy)),
            ),
        ];
        let results: Vec<i64> = apis
            .iter()
            .map(|api| {
                let c = api.create().unwrap();
                api.set(&c, 7).unwrap();
                let v = api.get(&c).unwrap();
                api.destroy(&c).unwrap();
                v
            })
            .collect();
        assert_eq!(results, [7, 7], "policy {policy:?}");
    }
}
