//! Coalesced fan-out under the drain/quiesce contract and under chaos.
//!
//! Three claims about the batching delivery plan:
//!
//! 1. Parked batches are in-flight work: `Network::quiesce`/`drain` cannot
//!    return while any notification sits in an outbox — even from another
//!    thread racing the producer.
//! 2. Batching does not break determinism: the same seed replays the same
//!    span dump byte-for-byte with a quiescing thread running concurrently.
//! 3. Batching does not break the paper's functional-equivalence claim:
//!    under a seeded fault schedule both stacks still deliver every value
//!    to every subscriber, reproducibly.
//!
//! Plus the scrape contract: the fan-out gauges and counters are on
//! `/metrics` and survive a strict exposition parse.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ogsa_grid::container::{Container, Operation, OperationContext, Testbed, WebService};
use ogsa_grid::eventing::messages::actions as ev_actions;
use ogsa_grid::eventing::messages::SubscribeRequest as EvSubscribeRequest;
use ogsa_grid::eventing::{EventConsumer, EventSourceService};
use ogsa_grid::fanout::{DelivererConfig, DeliveryPlan, LedgerEntry};
use ogsa_grid::security::SecurityPolicy;
use ogsa_grid::serve::{AdminPlane, ObsConfig};
use ogsa_grid::sim::SimDuration;
use ogsa_grid::soap::Fault;
use ogsa_grid::telemetry::export::spans_to_jsonl;
use ogsa_grid::telemetry::prometheus::parse_exposition;
use ogsa_grid::transport::{FaultPlan, NetStatsSnapshot, RetryPolicy};
use ogsa_grid::wsn::base::{actions, SubscribeRequest};
use ogsa_grid::wsn::consumer::Delivery;
use ogsa_grid::wsn::manager::SubscriptionManagerService;
use ogsa_grid::wsn::{NotificationConsumer, NotificationProducer, TopicExpression, TopicPath};
use ogsa_grid::xml::Element;

const DRAIN: Duration = Duration::from_secs(10);
const EVENTS: i64 = 12;

fn coalesce(batch_max: usize, outbox_capacity: usize) -> DelivererConfig {
    DelivererConfig {
        plan: DeliveryPlan::Coalesce { batch_max },
        outbox_capacity,
    }
}

fn event(v: i64) -> Element {
    Element::new("CounterValueChanged").with_child(Element::text_element("newValue", v.to_string()))
}

/// Minimal WSN publisher service: `Subscribe` goes to the producer's store.
struct Publisher {
    producer: NotificationProducer,
}

impl WebService for Publisher {
    fn handle(&self, op: &Operation, ctx: &OperationContext) -> Result<Element, Fault> {
        match op.action_name() {
            "Subscribe" => {
                let req = SubscribeRequest::from_element(&op.body)
                    .ok_or_else(|| Fault::client("bad subscribe"))?;
                let epr = self.producer.store().subscribe(ctx, &req)?;
                Ok(SubscribeRequest::response(&epr))
            }
            _ => Err(Fault::client("unknown")),
        }
    }
}

/// Deploy a WSN publisher whose producer already carries `config` (and an
/// optional redelivery policy — set before the service clones the producer).
fn deploy_wsn(
    container: &Container,
    config: DelivererConfig,
    redelivery: Option<RetryPolicy>,
) -> (
    ogsa_grid::addressing::EndpointReference,
    NotificationProducer,
) {
    let (_m, store) = SubscriptionManagerService::deploy(container, "/services/Pub/manager");
    let mut producer = NotificationProducer::new(store, container.service_agent());
    if let Some(policy) = redelivery {
        producer = producer.with_redelivery(policy);
    }
    let producer = producer.with_delivery(config);
    let epr = container.deploy(
        "/services/Pub",
        Arc::new(Publisher {
            producer: producer.clone(),
        }),
    );
    (epr, producer)
}

fn wsn_subscribe(
    tb: &Testbed,
    publisher: &ogsa_grid::addressing::EndpointReference,
    path: &str,
) -> NotificationConsumer {
    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let consumer = NotificationConsumer::listen(&client, path);
    client
        .invoke(
            publisher,
            actions::SUBSCRIBE,
            SubscribeRequest::new(consumer.epr().clone(), TopicExpression::simple("t"))
                .to_element(),
        )
        .expect("subscribe");
    consumer
}

#[test]
fn quiesce_cannot_return_while_batches_are_parked() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (publisher, producer) = deploy_wsn(&container, coalesce(100, 100), None);
    let consumer = wsn_subscribe(&tb, &publisher, "/c");

    let topic = TopicPath::parse("t/x").unwrap();
    assert_eq!(producer.notify(&topic, event(1)), 1);
    assert_eq!(producer.notify(&topic, event(2)), 1);
    assert_eq!(producer.deliverer().pending(), 2);
    assert_eq!(
        tb.network().pending_oneways(),
        2,
        "parked notifications count as in-flight work"
    );
    assert!(
        !tb.network().quiesce(Duration::from_millis(50)),
        "quiesce must time out while batches are parked"
    );

    assert_eq!(producer.deliverer().flush(), 2);
    assert!(tb.network().quiesce(DRAIN), "flushed network drains");
    // One coalesced envelope carrying both notifications.
    let got = consumer.drain();
    assert_eq!(got.len(), 2);
    assert!(matches!(got[0], Delivery::Wrapped(_)));
}

#[test]
fn concurrent_drain_blocks_until_the_flush() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (publisher, producer) = deploy_wsn(&container, coalesce(100, 100), None);
    let _consumer = wsn_subscribe(&tb, &publisher, "/c");

    let topic = TopicPath::parse("t/x").unwrap();
    producer.notify(&topic, event(1));

    let flushed = Arc::new(AtomicBool::new(false));
    let net = tb.network().clone();
    let saw_flush = flushed.clone();
    let waiter = std::thread::spawn(move || {
        net.drain();
        saw_flush.load(Ordering::SeqCst)
    });
    // Give the waiter time to actually block on the parked batch.
    std::thread::sleep(Duration::from_millis(100));
    flushed.store(true, Ordering::SeqCst);
    producer.deliverer().flush();
    assert!(
        waiter.join().expect("drain thread"),
        "drain returned before the parked batch was flushed"
    );
}

/// A chaotic batched WSN run with a quiescing thread racing the producer:
/// the span dump must still be a pure function of the seed.
fn batched_span_dump(seed: u64) -> String {
    let tb = Testbed::calibrated();
    tb.network().set_synchronous_oneways(true);
    tb.network().set_fault_plan(
        FaultPlan::seeded(seed)
            .with_drops(0.15)
            .with_delays(0.2, SimDuration::from_millis(5.0))
            .with_duplicates(0.1),
    );
    let container = tb.container("host-a", SecurityPolicy::None);
    let (publisher, producer) = deploy_wsn(
        &container,
        coalesce(3, 64),
        Some(RetryPolicy::default_redelivery(seed).with_max_attempts(6)),
    );
    let consumer = wsn_subscribe(&tb, &publisher, "/c");

    let net = tb.network().clone();
    let quiescer = std::thread::spawn(move || net.drain());

    let topic = TopicPath::parse("t/x").unwrap();
    for v in 1..=6 {
        producer.notify(&topic, event(v));
    }
    producer.deliverer().flush();
    quiescer.join().expect("quiescer");
    assert!(tb.network().quiesce(DRAIN));
    let _ = consumer.drain();
    spans_to_jsonl(&tb.telemetry().take_spans())
}

#[test]
fn same_seed_batched_runs_replay_byte_identically() {
    let a = batched_span_dump(17);
    let b = batched_span_dump(17);
    assert!(!a.is_empty());
    assert_eq!(a, b, "batching must not break seed determinism");
    assert_ne!(
        a,
        batched_span_dump(18),
        "different fault schedules must leave different traces"
    );
}

/// Everything observable a batched fan-out run produces. Two runs under the
/// same (stack, seed) must compare equal on all of it.
#[derive(Debug, PartialEq, Eq)]
struct FanoutOutcome {
    /// Distinct values each consumer received (duplicates collapse — the
    /// "modulo duplicates" equivalence of at-least-once delivery).
    delivered: Vec<BTreeSet<i64>>,
    stats: NetStatsSnapshot,
    dead_letters: usize,
    ledger: BTreeMap<String, LedgerEntry>,
}

/// Hotter than the request/response chaos plan: coalescing folds WSN's
/// wire traffic down to a few envelopes, so per-message fault odds must be
/// high for the schedule to demonstrably fire on every seed.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_drops(0.25)
        .with_delays(0.3, SimDuration::from_millis(5.0))
        .with_duplicates(0.2)
}

fn values(elements: impl IntoIterator<Item = Element>) -> BTreeSet<i64> {
    elements
        .into_iter()
        .filter_map(|e| e.child_text("newValue").and_then(|v| v.parse().ok()))
        .collect()
}

fn run_wsn_batched(seed: u64) -> FanoutOutcome {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (publisher, producer) = deploy_wsn(
        &container,
        coalesce(3, 64),
        Some(RetryPolicy::default_redelivery(seed).with_max_attempts(6)),
    );
    let consumers = [
        wsn_subscribe(&tb, &publisher, "/c0"),
        wsn_subscribe(&tb, &publisher, "/c1"),
    ];

    // Arm after subscribe: the chaos hits deliveries, not the bootstrap.
    tb.network().set_fault_plan(chaos_plan(seed));
    let topic = TopicPath::parse("t/x").unwrap();
    for v in 1..=EVENTS {
        assert_eq!(producer.notify(&topic, event(v)), 2);
    }
    producer.deliverer().flush();
    assert!(tb.network().quiesce(DRAIN));

    let delivered = consumers
        .iter()
        .map(|c| {
            values(c.drain().into_iter().filter_map(|d| match d {
                Delivery::Wrapped(nm) => Some(nm.message),
                Delivery::Raw(_) => None,
            }))
        })
        .collect();
    FanoutOutcome {
        delivered,
        stats: tb.network().stats().snapshot(),
        dead_letters: tb.network().dead_letters().len(),
        ledger: producer.deliverer().ledger().snapshot(),
    }
}

fn run_eventing_batched(seed: u64) -> FanoutOutcome {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    let (source, notifier) = EventSourceService::deploy(&container, "/services/Events");
    let notifier = notifier
        .with_redelivery(RetryPolicy::default_redelivery(seed).with_max_attempts(6))
        .with_delivery(coalesce(3, 64));

    let client = tb.client("host-b", "CN=alice", SecurityPolicy::None);
    let consumers = [
        EventConsumer::listen(&client, "/e0"),
        EventConsumer::listen(&client, "/e1"),
    ];
    for consumer in &consumers {
        client
            .invoke(
                &source,
                ev_actions::SUBSCRIBE,
                EvSubscribeRequest::new(consumer.epr().clone()).to_element(),
            )
            .expect("subscribe");
    }

    tb.network().set_fault_plan(chaos_plan(seed));
    for v in 1..=EVENTS {
        assert_eq!(notifier.trigger(event(v)), 2);
    }
    notifier.deliverer().flush();
    assert!(tb.network().quiesce(DRAIN));

    let delivered = consumers.iter().map(|c| values(c.drain())).collect();
    FanoutOutcome {
        delivered,
        stats: tb.network().stats().snapshot(),
        dead_letters: tb.network().dead_letters().len(),
        ledger: notifier.deliverer().ledger().snapshot(),
    }
}

#[test]
fn chaos_batched_delivery_is_reproducible_and_stacks_agree() {
    for seed in [11, 23] {
        let mut per_stack = Vec::new();
        for (name, run) in [
            ("wsn", run_wsn_batched as fn(u64) -> FanoutOutcome),
            ("eventing", run_eventing_batched),
        ] {
            let first = run(seed);
            let second = run(seed);
            assert_eq!(
                first, second,
                "{name}/seed {seed}: same seed must replay the same run"
            );
            assert!(
                first.stats.faults_injected() > 0,
                "{name}/seed {seed}: the chaos plan actually fired"
            );
            assert_eq!(first.dead_letters, 0, "{name}/seed {seed}: budgets held");
            for (id, entry) in &first.ledger {
                assert_eq!(
                    entry.delivered, entry.enqueued,
                    "{name}/seed {seed}/{id}: every accepted notification reached the wire"
                );
                assert_eq!(entry.dropped, 0, "{name}/seed {seed}/{id}: no backpressure");
                assert!(
                    entry.envelopes < entry.delivered || name == "eventing",
                    "{name}/seed {seed}/{id}: WSN coalescing must fold envelopes"
                );
            }
            per_stack.push(first);
        }
        // Functional equivalence across stacks: with batching on, every
        // consumer on both stacks still receives every value.
        let expected: BTreeSet<i64> = (1..=EVENTS).collect();
        for outcome in &per_stack {
            for (i, got) in outcome.delivered.iter().enumerate() {
                assert_eq!(got, &expected, "seed {seed}, consumer {i}");
            }
        }
        assert_eq!(
            per_stack[0].delivered, per_stack[1].delivered,
            "seed {seed}: stacks deliver the same value sets"
        );
    }
}

#[test]
fn metrics_exposition_exposes_the_fanout_series() {
    let tb = Testbed::free();
    let container = tb.container("host-a", SecurityPolicy::None);
    // Tight outbox so the scrape sees live depth AND backpressure drops.
    let (publisher, producer) = deploy_wsn(&container, coalesce(100, 2), None);
    let _c0 = wsn_subscribe(&tb, &publisher, "/c0");
    let _c1 = wsn_subscribe(&tb, &publisher, "/c1");

    let topic = TopicPath::parse("t/x").unwrap();
    for v in 1..=4 {
        producer.notify(&topic, event(v));
    }
    // Per subscriber: capacity 2, so 2 parked + 2 dropped-oldest.
    assert_eq!(producer.deliverer().pending(), 4);

    let plane = AdminPlane::new(1, &ObsConfig::default(), tb.telemetry().clone());
    let text = plane.render_metrics();
    let exp = parse_exposition(&text).expect("strict exposition parse");
    exp.check_histograms().expect("consistent histograms");

    let sum = |name: &str| -> f64 {
        exp.samples
            .iter()
            .filter(|s| s.name == name && s.label("stack") == Some("wsn"))
            .map(|s| s.value)
            .sum()
    };
    assert_eq!(sum("wsn_subscribers"), 2.0, "got:\n{text}");
    assert_eq!(sum("wsn_outbox_depth"), 4.0, "got:\n{text}");
    assert_eq!(sum("wsn_backpressure_drops"), 4.0, "got:\n{text}");
    assert_eq!(
        exp.types.get("wsn_subscribers").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        exp.types.get("wsn_outbox_depth").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        exp.types.get("wsn_backpressure_drops").map(String::as_str),
        Some("counter")
    );

    producer.deliverer().flush();
    assert!(tb.network().quiesce(DRAIN));
}
